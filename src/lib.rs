//! Workspace-root crate.
//!
//! This package exists so the repo-root `tests/` (integration tests) and
//! `examples/` directories are first-class Cargo targets; production
//! functionality lives in the crates under `crates/`. The one thing it
//! does export is [`digital`], the shared digital-evaluation test
//! utilities that the equivalence/mutation/headline integration tests
//! build on (they were previously duplicated ad hoc per test file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digital {
    //! Shared digital-evaluation helpers for integration tests.
    //!
    //! Two replay paths are provided on purpose: [`eval_outputs`] goes
    //! through [`Circuit::eval`] (pure boolean recursion), while
    //! [`settle_outputs`] drives `digilog`'s event-driven simulator with
    //! constant stimuli and reads the settled levels. Witness validation
    //! in the SAT-equivalence tests replays counterexamples through
    //! *both*, so a solver bug cannot hide behind a matching bug in a
    //! single evaluator.

    use std::collections::HashMap;

    use digilog::{simulate, DigitalSimError, GateChannels, PureDelay};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use sigcircuit::{Circuit, CircuitBuilder, GateKind, NetId};
    use sigwave::{DigitalTrace, Level};

    /// A fresh deterministic RNG for a test (thin wrapper so test files
    /// don't each re-import the seeding traits).
    #[must_use]
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// A random input assignment for `circuit`.
    #[must_use]
    pub fn random_bits(circuit: &Circuit, rng: &mut StdRng) -> Vec<bool> {
        (0..circuit.inputs().len()).map(|_| rng.gen()).collect()
    }

    /// Boolean outputs of `circuit` on `bits` (in [`Circuit::inputs`]
    /// order) via pure boolean evaluation.
    #[must_use]
    pub fn eval_outputs(circuit: &Circuit, bits: &[bool]) -> Vec<bool> {
        circuit.eval(bits)
    }

    /// Reorders an input assignment given in `from`'s input order into
    /// `to`'s input order, matching inputs by net name.
    ///
    /// # Panics
    ///
    /// Panics if an input name of `from` is missing in `to`.
    #[must_use]
    pub fn permute_inputs(from: &Circuit, to: &Circuit, bits: &[bool]) -> Vec<bool> {
        let mut out = vec![false; to.inputs().len()];
        for (&net, &bit) in from.inputs().iter().zip(bits) {
            let name = from.net_name(net);
            let pos = to
                .inputs()
                .iter()
                .position(|&t| to.net_name(t) == name)
                .unwrap_or_else(|| panic!("input `{name}` missing in target circuit"));
            out[pos] = bit;
        }
        out
    }

    /// Settled output levels of `circuit` on constant input stimuli,
    /// obtained through the event-driven digital simulator (zero-delay
    /// channels; combinational circuits settle immediately).
    ///
    /// # Errors
    ///
    /// Propagates any [`DigitalSimError`] from the simulator.
    pub fn settle_outputs(circuit: &Circuit, bits: &[bool]) -> Result<Vec<bool>, DigitalSimError> {
        let stimuli: HashMap<NetId, DigitalTrace> = circuit
            .inputs()
            .iter()
            .zip(bits)
            .map(|(&net, &bit)| (net, DigitalTrace::constant(Level::from_bool(bit))))
            .collect();
        let channels = GateChannels::uniform(circuit, PureDelay::symmetric(0.0));
        let result = simulate(circuit, &stimuli, &channels)?;
        Ok(circuit
            .outputs()
            .iter()
            .map(|&o| result.trace(o).final_level().is_high())
            .collect())
    }

    /// Asserts that two circuits (inputs matched by name, outputs
    /// positionally) agree on `samples` random input vectors — the
    /// sampled-parity check that predates SAT proofs, kept as a fast
    /// smoke layer.
    ///
    /// # Panics
    ///
    /// Panics with the first disagreeing assignment.
    pub fn assert_agree_on_random(a: &Circuit, b: &Circuit, samples: usize, seed: u64) {
        let mut r = rng(seed);
        for _ in 0..samples {
            let bits = random_bits(a, &mut r);
            let va = eval_outputs(a, &bits);
            let vb = eval_outputs(b, &permute_inputs(a, b, &bits));
            assert_eq!(va, vb, "circuits disagree on sampled inputs {bits:?}");
        }
    }

    /// Builds a random multi-kind DAG (the `sigsim` parity-proptest
    /// generator, generalized): up to `max_inputs` primary inputs and
    /// `max_gates` gates drawn from every [`GateKind`], each reading
    /// random earlier nets. The single output is always gate-driven.
    #[must_use]
    pub fn random_dag(seed: u64, max_inputs: usize, max_gates: usize) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new();
        let n_inputs = rng.gen_range(1..max_inputs.max(2));
        let mut nets: Vec<NetId> = (0..n_inputs)
            .map(|i| b.add_input(&format!("i{i}")))
            .collect();
        let n_gates = rng.gen_range(1..max_gates.max(2));
        for g in 0..n_gates {
            let kind = match rng.gen_range(0..8u32) {
                0 => GateKind::Inv,
                1 => GateKind::Buf,
                2 => GateKind::And,
                3 => GateKind::Nand,
                4 => GateKind::Or,
                5 => GateKind::Nor,
                6 => GateKind::Xor,
                _ => GateKind::Xnor,
            };
            let arity = match kind {
                GateKind::Inv | GateKind::Buf => 1,
                GateKind::Xor | GateKind::Xnor => 2,
                GateKind::Nor => rng.gen_range(1..4usize),
                _ => rng.gen_range(2..4usize),
            };
            let mut ins: Vec<NetId> = Vec::new();
            while ins.len() < arity {
                let pick = nets[rng.gen_range(0..nets.len())];
                if !ins.contains(&pick) {
                    ins.push(pick);
                } else if nets.len() <= ins.len() {
                    break; // not enough distinct nets for this arity
                }
            }
            if ins.len() < arity {
                continue;
            }
            let out = b.add_gate(kind, &ins, &format!("g{g}"));
            nets.push(out);
        }
        if nets.len() == n_inputs {
            // Every roll skipped: force a gate-driven output.
            nets.push(b.add_gate(GateKind::Inv, &[nets[0]], "g_fallback"));
        }
        b.mark_output(*nets.last().expect("at least one net"));
        b.build().expect("random DAG is valid")
    }

    /// A structural copy of `circuit` with output `j` routed through an
    /// extra inverter — the canonical *inequivalent* partner for oracle
    /// tests (every input assignment flips that output).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn with_inverted_output(circuit: &Circuit, j: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut map: Vec<Option<NetId>> = vec![None; circuit.net_count()];
        for &i in circuit.inputs() {
            map[i.0] = Some(b.add_input(circuit.net_name(i)));
        }
        for &gi in circuit.topological_gates() {
            let g = &circuit.gates()[gi];
            let ins: Vec<NetId> = g
                .inputs
                .iter()
                .map(|i| map[i.0].expect("topological order"))
                .collect();
            map[g.output.0] = Some(b.add_gate(g.kind, &ins, circuit.net_name(g.output)));
        }
        for (k, &o) in circuit.outputs().iter().enumerate() {
            let mapped = map[o.0].expect("outputs are driven");
            if k == j {
                let inv = b.add_gate(GateKind::Inv, &[mapped], "__oracle_inv");
                b.mark_output(inv);
            } else {
                b.mark_output(mapped);
            }
        }
        b.build().expect("inverted copy is valid")
    }

    /// Outcome of replaying a distinguishing witness on two circuits.
    #[derive(Debug, Clone)]
    pub struct WitnessReplay {
        /// Outputs of the first circuit (boolean evaluation).
        pub original_outputs: Vec<bool>,
        /// Outputs of the second circuit (boolean evaluation).
        pub mapped_outputs: Vec<bool>,
        /// Output indices where the circuits differ.
        pub differing: Vec<usize>,
    }

    /// Replays a counterexample input assignment (in `original`'s input
    /// order) through **both** evaluation paths of both circuits: pure
    /// boolean evaluation and the event-driven digital simulator. The
    /// two paths must agree with each other on each circuit — a witness
    /// is only as trustworthy as the evaluators that confirm it.
    ///
    /// # Panics
    ///
    /// Panics if the digital simulator fails or disagrees with boolean
    /// evaluation on either circuit.
    #[must_use]
    pub fn replay_witness(original: &Circuit, mapped: &Circuit, bits: &[bool]) -> WitnessReplay {
        let mapped_bits = permute_inputs(original, mapped, bits);
        let va = eval_outputs(original, bits);
        let vb = eval_outputs(mapped, &mapped_bits);
        let sa = settle_outputs(original, bits).expect("digital sim of original");
        let sb = settle_outputs(mapped, &mapped_bits).expect("digital sim of mapped");
        assert_eq!(va, sa, "boolean eval vs digital sim split on original");
        assert_eq!(vb, sb, "boolean eval vs digital sim split on mapped");
        let differing = va
            .iter()
            .zip(&vb)
            .enumerate()
            .filter_map(|(i, (x, y))| (x != y).then_some(i))
            .collect();
        WitnessReplay {
            original_outputs: va,
            mapped_outputs: vb,
            differing,
        }
    }
}
