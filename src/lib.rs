//! Workspace-root crate.
//!
//! This package exists solely so the repo-root `tests/` (integration
//! tests) and `examples/` directories are first-class Cargo targets; all
//! functionality lives in the crates under `crates/`.
