//! Offline stand-in for [`proptest`](https://docs.rs/proptest) covering
//! the subset of the API this workspace's property tests use: the
//! [`proptest!`] macro, range and [`collection::vec`] /
//! [`array::uniform3`] strategies, [`any`]`::<bool>()`, and the
//! `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure
//! database: each test runs a fixed number of cases (default 64, override
//! with `PROPTEST_CASES`) from a deterministic seed, so failures
//! reproduce exactly. `prop_assert!` panics immediately with the failing
//! message; the panic output plus the deterministic seed replace the
//! shrink report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub use rand;

use rand::rngs::StdRng;

/// Number of random cases per property test.
#[must_use]
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rand::RngCore::next_u64(rng) % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                let r = (rand::RngCore::next_u64(rng) as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_signed_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Strategy for any value of a type with a canonical full-range
/// distribution (only `bool` is needed in this workspace).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Mirrors `proptest::arbitrary::any`.
#[must_use]
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rand::Rng::gen(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::ops::Range;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Clone, Copy)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly between `.0` (inclusive) and `.1` (exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    lo + (rand::RngCore::next_u64(rng) % (hi - lo) as u64) as usize
                }
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy producing `[S::Value; 3]` from one element strategy.
    pub struct Uniform3<S> {
        elem: S,
    }

    /// Mirrors `proptest::array::uniform3`.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        Uniform3 { elem }
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            [
                self.elem.generate(rng),
                self.elem.generate(rng),
                self.elem.generate(rng),
            ]
        }
    }
}

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            // Seed differs per test (by name) but is stable across runs.
            let seed: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
                });
            let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..$crate::cases() {
                let case_fn = |rng: &mut $crate::rand::rngs::StdRng| {
                    $(let $pat = $crate::Strategy::generate(&$strat, rng);)+
                    $body
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || case_fn(&mut rng),
                ));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {seed:#x})",
                        case + 1,
                        $crate::cases(),
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )+};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0..2.0f64, n in 1usize..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in crate::collection::vec(0.0..1.0f64, 3),
            ranged in crate::collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(ranged.len() < 8);
        }

        #[test]
        fn uniform3_fills_arrays(a in crate::array::uniform3(-1.0..1.0f64)) {
            prop_assert_eq!(a.len(), 3);
            prop_assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }
}
