//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8) providing
//! exactly the subset of the API this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors this minimal implementation instead (see
//! `DESIGN.md`). The generator is xoshiro256++ seeded via SplitMix64 —
//! high-quality and fast, though the streams differ from upstream
//! `StdRng` (ChaCha12); all in-repo uses are seeded, so results are
//! reproducible within this repo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed (the only constructor the
    /// workspace uses; every call site passes an explicit seed for
    /// reproducibility).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`bool`, `f64`,
    /// integer types).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types sampleable by [`Rng::gen_range`] over a half-open range.
pub trait UniformSampled: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSampled for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range requires start < end");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range requires start < end");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here
                // (span << 2^64), and acceptable for a test/bench stub.
                let r = (rng.next_u64() as u128) % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (the only `SliceRandom` method used here).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_f64_stays_in_range_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < -0.95 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_int_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
