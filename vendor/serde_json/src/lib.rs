//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json),
//! rendering and parsing the vendored `serde` stub's [`Value`] tree as
//! JSON text.
//!
//! Deviations from upstream, chosen so workspace artifacts always
//! round-trip (see `DESIGN.md`):
//!
//! * Numbers are always `f64`; Rust's shortest round-trip float
//!   formatting guarantees `parse(format(x)) == x`.
//! * Non-finite floats serialize as the bare tokens `NaN`, `Infinity`,
//!   and `-Infinity` (upstream writes `null` and fails to round-trip);
//!   the parser accepts them back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self { msg: e.to_string() }
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value model of the vendored stub; the `Result`
/// mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to an indented JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if n.is_nan() {
        out.push_str("NaN");
    } else if n.is_infinite() {
        out.push_str(if n > 0.0 { "Infinity" } else { "-Infinity" });
    } else {
        // Rust's `{}` for f64 is shortest-round-trip.
        write!(out, "{n}").expect("writing to String cannot fail");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Num(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Num(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') if self.bytes[self.pos + 1..].starts_with(b"Infinity") => {
                self.pos += 1 + "Infinity".len();
                Ok(Value::Num(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_round_trip() {
        for x in [0.0f64, -1.5, 1e-300, 6.02214076e23, f64::MIN_POSITIVE] {
            let s = to_string(&x).expect("serialize");
            let back: f64 = from_str(&s).expect("parse");
            assert_eq!(back, x, "round-trip of {x} via {s}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = to_string(&x).expect("serialize");
            let back: f64 = from_str(&s).expect("parse");
            assert!(back == x || (back.is_nan() && x.is_nan()));
        }
    }

    #[test]
    fn containers_round_trip() {
        let mut m: HashMap<String, Vec<f64>> = HashMap::new();
        m.insert("a\"quote".to_string(), vec![1.0, 2.5]);
        m.insert("newline\n".to_string(), vec![]);
        let s = to_string(&m).expect("serialize");
        let back: HashMap<String, Vec<f64>> = from_str(&s).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn options_and_tuples_round_trip() {
        let v: Vec<Option<(f64, String)>> = vec![None, Some((2.0, "hi".to_string()))];
        let s = to_string(&v).expect("serialize");
        let back: Vec<Option<(f64, String)>> = from_str(&s).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1.0, 2.0], vec![3.0]];
        let s = to_string_pretty(&v).expect("serialize");
        assert!(s.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&s).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.2.3x",
        ] {
            assert!(from_str::<serde::Value>(bad).is_err(), "accepted {bad:?}");
        }
    }
}
