//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stub.
//!
//! The offline build container has neither `syn` nor `quote`, so this
//! crate parses the item's token stream by hand and emits the impl as a
//! formatted string. It supports exactly the shapes this workspace
//! derives on: structs with named fields, tuple structs, and enums with
//! unit variants (serialized as the variant-name string, matching
//! serde_json's externally-tagged format). Anything else produces a
//! `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a type we can derive for.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `enum E { X, Y }` — variant names.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! literal"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]` / `#![...]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // Optional `!` then the bracket group.
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    tokens.next();
                }
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` etc.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}`"
        ));
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => {
            return Err(format!(
                "expected body of `{name}` (unit structs unsupported), found {other:?}"
            ))
        }
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => {
            Shape::TupleStruct(split_top_level_commas(body.stream()).len())
        }
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(body.stream())?),
        _ => return Err(format!("unsupported item shape for `{name}`")),
    };
    Ok(Item { name, shape })
}

/// Splits a token stream on top-level commas, dropping empty chunks (e.g.
/// from a trailing comma). Commas inside `<...>` generic arguments are not
/// split points (angle brackets are plain puncts, not delimiter groups).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth: usize = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks is never empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading `#[...]` attributes and a `pub` / `pub(...)` visibility
/// from a field or variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk {
                [TokenTree::Ident(id)] => Ok(id.to_string()),
                [TokenTree::Ident(id), rest @ ..] if !rest.is_empty() => Err(format!(
                    "serde stub derive supports only unit enum variants; `{id}` has data or a discriminant"
                )),
                other => Err(format!("expected enum variant, found {other:?}")),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?}"))
                .collect();
            format!(
                "::serde::Value::Str(match self {{ {} }}.to_string())",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.get_field({f:?})?)?"))
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 \t::serde::Value::Arr(items) if items.len() == {n} => Ok(Self({elems})),\n\
                 \tother => Err(::serde::Error::new(format!(\n\
                 \t\t\"expected array of length {n} for `{name}`, found {{}}\", other.kind()))),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok(Self::{v})"))
                .collect();
            format!(
                "match value {{\n\
                 \t::serde::Value::Str(s) => match s.as_str() {{\n\
                 \t\t{arms},\n\
                 \t\tother => Err(::serde::Error::new(format!(\n\
                 \t\t\t\"unknown `{name}` variant `{{other}}`\"))),\n\
                 \t}},\n\
                 \tother => Err(::serde::Error::new(format!(\n\
                 \t\t\"expected string for enum `{name}`, found {{}}\", other.kind()))),\n\
                 }}",
                arms = arms.join(",\n\t\t")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         \t\t{body}\n\
         \t}}\n\
         }}"
    )
}
