//! Offline stand-in for [`criterion`](https://docs.rs/criterion): the
//! build container has no crates.io access, so the workspace vendors a
//! minimal wall-clock harness with the same surface the benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`]).
//!
//! Measurement model: each benchmark is warmed up for a fixed wall-clock
//! budget, then timed over `sample_size` samples; the mean, median, and
//! min per-iteration times are printed in criterion's familiar
//! `time: [low mid high]` shape (here: min / median / mean rather than a
//! bootstrapped confidence interval).
//!
//! Supported CLI flags (unknown flags are ignored so cargo's pass-through
//! arguments never crash a bench): `--test` (type-check mode upstream
//! uses under `cargo test`: run every body exactly once), `--json <path>`
//! (append every measured benchmark's median to a JSON object mapping
//! benchmark name → median nanoseconds per iteration, rewritten after
//! each benchmark so partial runs still leave a valid artifact),
//! `--json-stat min` (export per-sample minima instead of medians —
//! the statistic of choice for CI threshold guards on noisy runners),
//! and a positional `<filter>` substring applied to benchmark names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured medians accumulated across every group of the process, so a
/// `--json` export contains the whole bench binary's results no matter
/// how many `criterion_group!` functions ran.
static JSON_RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Entry point handed to each benchmark function.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
    warm_up: Duration,
    json: Option<std::path::PathBuf>,
    json_min: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            test_mode: false,
            sample_size: 60,
            warm_up: Duration::from_millis(300),
            json: None,
            json_min: false,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--test`, a name filter);
    /// unknown flags are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                "--json" => self.json = args.next().map(std::path::PathBuf::from),
                // `--json-stat min` exports per-sample minima instead of
                // medians: the right statistic for threshold guards on
                // shared/noisy runners (the minimum is the least
                // contaminated by scheduling interference).
                "--json-stat" => {
                    self.json_min = args.next().as_deref() == Some("min");
                }
                // Flags cargo/criterion users commonly pass; all take no
                // value in our model.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with('-') => {
                    // Ignore any other flag, consuming a value if present.
                    if let Some(next) = args.peek() {
                        if !next.starts_with('-') {
                            args.next();
                        }
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }

    /// Starts a named group of benchmarks; ids inside the group are
    /// reported as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: None,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: Option<usize>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        run_one(self.criterion, &full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run per sample in measurement mode; 1 in test mode.
    iters: u64,
    /// Total elapsed time across `iter` calls in this sample.
    elapsed: Duration,
}

impl Bencher {
    /// Runs the benchmark body `iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(c: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }

    // Warm-up: also estimates the per-iteration cost to size batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < c.warm_up {
        f(&mut b);
        warm_iters += b.iters.max(1);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    // Aim for ~5 ms per sample so fast bodies are batched.
    let iters_per_sample = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
        iters_per_sample,
    );
    if let Some(path) = &c.json {
        let stat = if c.json_min { min } else { median };
        export_json(path, name, stat * 1e9);
    }
}

/// Records one measured statistic (median, or min under `--json-stat
/// min`) and rewrites the `--json` artifact: a JSON object mapping
/// benchmark name → nanoseconds per iteration.
/// Rewritten whole after every benchmark, so an interrupted run still
/// leaves valid JSON covering everything measured so far.
fn export_json(path: &std::path::Path, name: &str, median_ns: f64) {
    let mut results = JSON_RESULTS.lock().expect("json results poisoned");
    results.push((name.to_string(), median_ns));
    let mut out = String::from("{\n");
    for (i, (n, ns)) in results.iter().enumerate() {
        let escaped = n.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("  \"{escaped}\": {ns:.1}"));
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("criterion: cannot write {}: {e}", path.display());
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut calls = 0u64;
        let mut c = Criterion {
            filter: Some("nope".to_string()),
            test_mode: true,
            ..Criterion::default()
        };
        c.bench_function("other", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn json_export_accumulates_and_escapes() {
        let path = std::env::temp_dir().join("criterion_json_export_test.json");
        export_json(&path, "grp/plain", 123.45);
        export_json(&path, "grp/\"quoted\"", 6789.0);
        let text = std::fs::read_to_string(&path).expect("artifact written");
        assert!(text.contains("\"grp/plain\": 123.5"), "{text}");
        assert!(text.contains("\"grp/\\\"quoted\\\"\": 6789.0"), "{text}");
        assert!(text.starts_with("{\n") && text.ends_with("}\n"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn groups_prefix_names_and_run() {
        let mut calls = 0u64;
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .bench_function("x", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }
}
