//! Offline stand-in for [`serde`](https://docs.rs/serde): the build
//! container has no crates.io access, so the workspace vendors a minimal
//! value-tree serialization framework with the same surface syntax
//! (`#[derive(Serialize, Deserialize)]`, `serde_json::to_string`,
//! `serde_json::from_str` — see `DESIGN.md`).
//!
//! Instead of upstream's visitor architecture, [`Serialize`] converts a
//! value into a [`Value`] tree and [`Deserialize`] reads it back; the
//! companion `serde_json` stub renders/parses that tree as JSON. Maps with
//! string keys become JSON objects; everything upstream serde_json would
//! produce for the types in this workspace round-trips identically, with
//! one deviation: non-finite floats are kept (as `NaN`/`Infinity` tokens)
//! rather than collapsed to `null`, so model artifacts always round-trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialized value (the stub's data model, mirroring
/// JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any number (always carried as `f64`; exact for |n| ≤ 2^53, far
    /// beyond every counter and size in this workspace).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, order-preserving.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Obj`], with a descriptive error.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// A short description of the value's type, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as f64;
                debug_assert!(
                    n.abs() <= 9_007_199_254_740_992.0,
                    "integer too large for exact f64 round-trip"
                );
                Value::Num(n)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    Value::Num(_) => Err(Error::new("expected integer, found fraction")),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hasher states.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Arr(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Arr(items) => Err(Error::new(format!(
                        "expected array of length {}, found {}", LEN, items.len()
                    ))),
                    other => Err(Error::new(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));
