//! Glitch propagation: the scenario motivating the paper's introduction.
//!
//! A narrow pulse travelling through a NOR chain degrades a little at
//! every stage until it vanishes. Pure/inertial digital models either pass
//! the pulse unchanged or kill it immediately; the sigmoid TOM tracks the
//! gradual degradation because slope information survives between gates.
//!
//! This example sends pulses of several widths through a 6-stage NOR chain
//! and reports, per model, after how many stages the pulse disappears,
//! against the analog reference. For the 8 ps pulse — the interesting
//! regime where models disagree — every per-stage trace is also dumped
//! as `target/glitch_propagation.vcd` for waveform viewers (GTKWave,
//! Surfer).
//!
//! Run with: `cargo run --release --example glitch_propagation`

use std::collections::HashMap;
use std::path::PathBuf;

use digilog::{apply_channel, PureDelay};
use nanospice::{Engine, EngineConfig, Pwl, Stimulus};
use sigchar::{build_analog, AnalogOptions, ChainGate, CharChain, DelayTable};
use sigfit::{fit_waveform, FitOptions};
use sigsim::{train_models_cached, PipelineConfig};
use sigtom::{predict_single_input, TomOptions};
use sigwave::{write_vcd, DigitalTrace, Level, VcdSignal};

const STAGES: usize = 6;

/// The pulse width whose per-stage traces are dumped as VCD.
const VCD_WIDTH_PS: f64 = 8.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = PathBuf::from("target/sigmodels/quickstart.json");
    let trained = train_models_cached(&cache, &PipelineConfig::fast())?;
    let models = trained.gate_models();
    let delays = DelayTable::measure([1], &AnalogOptions::default(), &EngineConfig::default())?;
    let inertial = delays.lookup(1).to_inertial();
    let pure = PureDelay {
        rise: inertial.rise,
        fall: inertial.fall,
    };

    println!("pulse width -> stages survived (out of {STAGES})");
    println!(
        "{:>10} {:>8} {:>8} {:>9} {:>9}",
        "width", "analog", "sigmoid", "inertial", "pure"
    );

    let mut vcd_signals: Vec<VcdSignal> = Vec::new();
    for width_ps in [3.0, 5.0, 8.0, 12.0, 20.0, 40.0] {
        let width = width_ps * 1e-12;
        let dump_vcd = (width_ps - VCD_WIDTH_PS).abs() < f64::EPSILON;
        let stim = DigitalTrace::new(Level::Low, vec![80e-12, 80e-12 + width])?;

        // --- analog reference ------------------------------------------------
        let chain = CharChain::new(ChainGate::Nor, STAGES, 1);
        let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
        stimuli.insert(
            chain.input,
            Box::new(Pwl::heaviside_train(&stim, 0.8, 1e-12)),
        );
        stimuli.insert(chain.tie.expect("nor chain"), Box::new(nanospice::Dc(0.0)));
        let mut init = HashMap::new();
        init.insert(chain.input, Level::Low);
        init.insert(chain.tie.expect("nor chain"), Level::Low);
        let analog = build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())?;
        let probe_names: Vec<String> = chain
            .stage_nets
            .iter()
            .map(|n| analog.probe_name(*n).to_string())
            .collect();
        let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
        let res = Engine::default().run(&analog.network, 0.0, 350e-12, &probes)?;
        let analog_survived = (1..=STAGES)
            .take_while(|&i| {
                res.waveform(&probe_names[i])
                    .map(|w| w.crossings(0.4).len() >= 2)
                    .unwrap_or(false)
            })
            .count();

        if dump_vcd {
            for (i, name) in probe_names.iter().enumerate() {
                let wave = res.waveform(name).expect("probed");
                vcd_signals.push(VcdSignal::digital(
                    format!("analog.stage{i}"),
                    &wave.digitize(0.4),
                ));
            }
        }

        // --- sigmoid TOM ------------------------------------------------------
        let input_wave = res.waveform(&probe_names[0]).expect("probed");
        let mut trace = fit_waveform(input_wave, &FitOptions::default())?.trace;
        if dump_vcd {
            vcd_signals.push(VcdSignal::sigmoid("sigmoid.stage0", &trace, 0.4));
        }
        let mut sigmoid_survived = 0;
        for stage in 1..=STAGES {
            let initial = trace.initial().inverted();
            trace = predict_single_input(&models.nor_fo1, &trace, initial, TomOptions::default());
            if dump_vcd {
                vcd_signals.push(VcdSignal::sigmoid(
                    format!("sigmoid.stage{stage}"),
                    &trace,
                    0.4,
                ));
            }
            if trace.len() >= 2 {
                sigmoid_survived += 1;
            } else {
                break;
            }
        }

        // --- digital channels -------------------------------------------------
        let digital_input = input_wave.digitize(0.4);
        let count_stages = |ch: &dyn digilog::DelayChannel| {
            let mut t = digital_input.clone();
            let mut survived = 0;
            for _ in 0..STAGES {
                t = apply_channel(&t.inverted(), ch);
                if t.len() >= 2 {
                    survived += 1;
                } else {
                    break;
                }
            }
            survived
        };
        let inertial_survived = count_stages(&inertial);
        let pure_survived = count_stages(&pure);
        if dump_vcd {
            let mut t = digital_input.clone();
            vcd_signals.push(VcdSignal::digital("inertial.stage0", &t));
            for stage in 1..=STAGES {
                t = apply_channel(&t.inverted(), &inertial);
                vcd_signals.push(VcdSignal::digital(format!("inertial.stage{stage}"), &t));
            }
        }

        println!(
            "{width_ps:>8.1}ps {analog_survived:>8} {sigmoid_survived:>8} {inertial_survived:>9} {pure_survived:>9}"
        );
    }
    let vcd_path = std::path::Path::new("target").join("glitch_propagation.vcd");
    std::fs::create_dir_all("target")?;
    let mut vcd_file = std::fs::File::create(&vcd_path)?;
    write_vcd(&mut vcd_file, &vcd_signals)?;
    println!(
        "\nThe sigmoid column should track the analog column much more closely\n\
         than the single-delay digital channels, which only know a hard cutoff.\n\
         Per-stage traces of the {VCD_WIDTH_PS} ps pulse: {}",
        vcd_path.display()
    );
    Ok(())
}
