//! Sigmoidal approximation as lossy waveform compression (Sec. II: the
//! parameter list "can be interpreted as some sort of lossy compression").
//!
//! An analog waveform with several transitions is simulated, fitted with
//! sigmoids, and the storage/accuracy trade-off is reported: thousands of
//! samples collapse into two floats per transition at millivolt-level RMS
//! error.
//!
//! Run with: `cargo run --release --example waveform_compression`

use std::collections::HashMap;

use nanospice::{Engine, Pwl, Stimulus};
use sigchar::{build_analog, AnalogOptions, ChainGate, CharChain, PulseSpec};
use sigfit::{fit_waveform, FitOptions};
use sigwave::Level;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a 3-stage NOR chain driven by the Fig. 4 double pulse.
    let chain = CharChain::new(ChainGate::Nor, 3, 1);
    let spec = PulseSpec {
        t0: 60e-12,
        ta: 15e-12,
        tb: 10e-12,
        tc: 18e-12,
    };
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&spec.to_trace(), 0.8, 1e-12)),
    );
    stimuli.insert(chain.tie.expect("nor chain"), Box::new(nanospice::Dc(0.0)));
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    init.insert(chain.tie.expect("nor chain"), Level::Low);
    let analog = build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())?;

    let probe_names: Vec<String> = chain
        .stage_nets
        .iter()
        .map(|n| analog.probe_name(*n).to_string())
        .collect();
    let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let result = Engine::default().run(&analog.network, 0.0, 250e-12, &probes)?;

    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>10} {:>8}",
        "stage", "samples", "raw bytes", "fit params", "fit bytes", "rms(mV)"
    );
    for (i, name) in probe_names.iter().enumerate() {
        let wave = result.waveform(name).expect("probed");
        let fit = fit_waveform(wave, &FitOptions::default())?;
        let raw_bytes = wave.len() * 16; // (t, v) per sample
        let params = fit.trace.len() * 2; // (a, b) per transition
        println!(
            "{:>10} {:>9} {:>12} {:>12} {:>10} {:>8.2}",
            if i == 0 {
                "input".to_string()
            } else {
                format!("G{i}")
            },
            wave.len(),
            raw_bytes,
            params,
            params * 8,
            fit.rms_error * 1e3,
        );
    }
    println!(
        "\nEach transition costs exactly two parameters (a, b) — Eq. 1 —\n\
         yet reconstructs the waveform to a few millivolts RMS."
    );
    Ok(())
}
