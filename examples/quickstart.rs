//! Quickstart: the full paper pipeline on ISCAS-85 c17.
//!
//! 1. Characterize NOR/inverter gates against the analog substrate and
//!    train the TOM transfer-function ANNs (cached under `target/`).
//! 2. Extract classic rise/fall delays for the digital baseline.
//! 3. Stimulate the NOR-mapped c17 with randomized transitions and compare
//!    all three simulators.
//!
//! Run with: `cargo run --release --example quickstart`

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nanospice::EngineConfig;
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::Benchmark;
use sigsim::{
    compare_circuit, random_stimuli, train_models_cached, HarnessConfig, PipelineConfig,
    StimulusSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Train (or load) the gate models --------------------------------
    let cache = PathBuf::from("target/sigmodels/quickstart.json");
    println!(
        "training/loading TOM gate models (cache: {})",
        cache.display()
    );
    let trained = train_models_cached(&cache, &PipelineConfig::fast())?;
    let models = trained.gate_models();
    for tag in ["INV", "NOR/FO1", "NOR/FO2"] {
        if let Some(d) = trained.datasets.get(tag) {
            println!("  {tag}: {} training samples", d.len());
        }
    }

    // --- 2. Digital baseline delays ----------------------------------------
    let delays = DelayTable::measure(1..=4, &AnalogOptions::default(), &EngineConfig::default())?;
    println!(
        "extracted digital delays for {} fan-out classes",
        delays.len()
    );

    // --- 3. Compare on c17 ---------------------------------------------------
    let bench = Benchmark::by_name("c17").map_err(|n| format!("unknown benchmark {n}"))?;
    println!(
        "c17: {} NOR gates after mapping (paper: 24)",
        bench.nor_gate_count()
    );
    let mut rng = StdRng::seed_from_u64(2025);
    let stimuli = random_stimuli(&bench.nor_mapped, &StimulusSpec::fast(), &mut rng);
    let outcome = compare_circuit(
        &bench.nor_mapped,
        &stimuli,
        &models,
        &delays,
        &HarnessConfig::default(),
    )?;

    println!("\n=== c17, (µt, σt) = (20 ps, 10 ps), 20 transitions ===");
    println!(
        "t_err digital (ModelSim-style): {:8.2} ps",
        outcome.t_err_digital * 1e12
    );
    println!(
        "t_err sigmoid  (this paper):    {:8.2} ps",
        outcome.t_err_sigmoid * 1e12
    );
    println!("error ratio: {:.2}", outcome.error_ratio());
    println!(
        "wall times: analog {:.1?} | digital {:.1?} | sigmoid {:.1?}",
        outcome.wall_analog, outcome.wall_digital, outcome.wall_sigmoid
    );
    Ok(())
}
