//! Multi-input switching on a NOR2 gate and the TOM decision procedure.
//!
//! The NOR output only rises once *both* inputs are low; which input is
//! "relevant" changes over time. This example sweeps the skew between two
//! falling input transitions and compares the analog output's rise time
//! against the TOM prediction with the per-input decision procedure of
//! Sec. III, and shows the masked-input case.
//!
//! Run with: `cargo run --release --example multi_input_switching`

use std::path::PathBuf;

use nanospice::{Engine, GateParams, NetworkBuilder, Pwl};
use sigsim::{digital_to_sigmoid, train_models_cached, PipelineConfig};
use sigtom::{predict_nor, TomOptions};
use sigwave::{DigitalTrace, Level};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = PathBuf::from("target/sigmodels/quickstart.json");
    let trained = train_models_cached(&cache, &PipelineConfig::fast())?;
    let models = trained.gate_models();

    println!("NOR2 with falling input A at 100 ps, falling input B skewed:");
    println!(
        "{:>9} {:>14} {:>14} {:>9}",
        "skew(ps)", "analog rise", "sigmoid rise", "diff(ps)"
    );
    for skew_ps in [0.0, 5.0, 15.0, 30.0, 60.0] {
        let skew = skew_ps * 1e-12;
        let ta = DigitalTrace::new(Level::High, vec![100e-12])?;
        let tb = DigitalTrace::new(Level::High, vec![100e-12 + skew])?;

        // --- analog -----------------------------------------------------------
        let mut b = NetworkBuilder::new(0.8);
        let a = b.add_source("a", Pwl::heaviside_train(&ta, 0.8, 2e-12));
        let bb = b.add_source("b", Pwl::heaviside_train(&tb, 0.8, 2e-12));
        let out = b.add_state("out", 0.0);
        b.add_nor2(a, bb, out, &GateParams::default_15nm());
        b.add_cap(out, 0.2e-15);
        let net = b.build();
        let res = Engine::default().run(&net, 0.0, 300e-12, &["out"])?;
        let analog_rise = res
            .waveform("out")
            .and_then(|w| w.crossings(0.4).first().map(|c| c.0))
            .ok_or("output did not rise")?;

        // --- sigmoid TOM -------------------------------------------------------
        let sa = digital_to_sigmoid(&ta, 0.8);
        let sb = digital_to_sigmoid(&tb, 0.8);
        let prediction = predict_nor(&models.nor_fo1, &[&sa, &sb], TomOptions::default());
        let sigmoid_rise = prediction
            .transitions()
            .first()
            .map(sigwave::Sigmoid::crossing_seconds)
            .ok_or("TOM predicted no output transition")?;

        println!(
            "{skew_ps:>9.1} {:>12.2}ps {:>12.2}ps {:>9.2}",
            analog_rise * 1e12,
            sigmoid_rise * 1e12,
            (analog_rise - sigmoid_rise).abs() * 1e12
        );
    }

    // Masked input: B stays high, transitions on A must be ignored.
    let ta = DigitalTrace::new(Level::Low, vec![100e-12, 140e-12])?;
    let sa = digital_to_sigmoid(&ta, 0.8);
    let sb = sigwave::SigmoidTrace::constant(Level::High, 0.8);
    let masked = predict_nor(&models.nor_fo1, &[&sa, &sb], TomOptions::default());
    println!(
        "\nwith input B held high, the decision procedure ignores A: {} output transitions",
        masked.len()
    );
    assert!(masked.is_empty());

    Ok(())
}
