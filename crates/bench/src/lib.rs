//! Shared utilities for the benchmark harness: every table and figure of
//! the paper has a matching binary in `src/bin/` (see `DESIGN.md` for the
//! experiment index), plus Criterion micro-benchmarks in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use sigsim::{train_models_cached, PipelineConfig, TrainedModels};

/// Minimal `--key value` / `--flag` argument parser for the experiment
/// binaries (keeps the dependency set to the approved list).
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments (a value-flag at the end of the line).
    #[must_use]
    pub fn parse() -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = argv[i].trim_start_matches("--").to_string();
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                values.insert(a, argv[i + 1].clone());
                i += 2;
            } else {
                flags.push(a);
                i += 1;
            }
        }
        Self { values, flags }
    }

    /// String option with default.
    #[must_use]
    pub fn get(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Numeric option with default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    #[must_use]
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values
            .get(key)
            .map(|v| v.parse().expect("malformed numeric argument"))
            .unwrap_or(default)
    }

    /// Boolean flag presence.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// Where experiment CSV outputs are written by default (`results/`).
/// Prefer [`results_dir_from`] in binaries so `--out` can redirect.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// The experiment output directory, honoring `--out <path>` (default
/// `results/`). Lets CI smoke jobs and concurrent local runs write to
/// disjoint directories instead of colliding in the checkout.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir_from(args: &Args) -> PathBuf {
    let dir = PathBuf::from(args.get("out", "results"));
    std::fs::create_dir_all(&dir).expect("cannot create output directory");
    dir
}

/// The pipeline config and model-cache path selected by the standard
/// flags (`--paper-scale`, `--fast-models`, `--models PATH`,
/// `--parallelism N`).
#[must_use]
pub fn pipeline_from_args(args: &Args) -> (PipelineConfig, PathBuf) {
    let (config, cache) = if args.has("paper-scale") {
        (
            PipelineConfig {
                characterization: sigchar::CharacterizationConfig::paper(),
                ..PipelineConfig::default()
            },
            PathBuf::from("target/sigmodels/paper.json"),
        )
    } else if args.has("fast-models") {
        (
            PipelineConfig::fast(),
            PathBuf::from("target/sigmodels/quickstart.json"),
        )
    } else {
        (
            PipelineConfig::default(),
            PathBuf::from("target/sigmodels/default.json"),
        )
    };
    let cache = args
        .values
        .get("models")
        .map(PathBuf::from)
        .unwrap_or(cache);
    // `--parallelism N` gates every worker pool in the pipeline (0 = auto).
    (
        config.with_parallelism(args.get_num("parallelism", 0)),
        cache,
    )
}

/// Loads (or trains) the standard gate models: `--paper-scale` switches to
/// the full-granularity characterization sweep and long training.
///
/// # Panics
///
/// Panics if the pipeline fails — the experiment binaries have no way to
/// proceed without models.
#[must_use]
pub fn load_models(args: &Args) -> TrainedModels {
    let (config, cache) = pipeline_from_args(args);
    train_models_cached(&cache, &config).expect("training pipeline failed")
}

/// Loads (or trains) the runtime cell models of a mapping policy at the
/// scale the standard flags select: the paper's four-variant bundle for
/// [`sigcircuit::MappingPolicy::NorOnly`], the full native
/// [`sigsim::CellLibrary`] (cached beside the legacy artifact with a
/// `.native.json` suffix) for [`sigcircuit::MappingPolicy::Native`].
///
/// # Panics
///
/// Panics if the pipeline fails.
#[must_use]
pub fn load_cell_models(args: &Args, policy: sigcircuit::MappingPolicy) -> sigsim::CellModels {
    match policy {
        sigcircuit::MappingPolicy::NorOnly => {
            sigsim::CellModels::nor_only(&load_models(args).gate_models())
        }
        sigcircuit::MappingPolicy::Native => {
            let (config, cache) = pipeline_from_args(args);
            let path = sigsim::native_cache_path(&cache);
            sigsim::train_cell_library_cached(&path, &sigsim::LibrarySpec::native(), &config)
                .expect("library training pipeline failed")
                .cell_models()
        }
    }
}

/// Writes rows of `f64` columns as CSV with a header.
///
/// # Panics
///
/// Panics on I/O errors (experiment outputs are not recoverable).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) {
    let mut f = std::fs::File::create(path).expect("cannot create CSV");
    writeln!(f, "{}", header.join(",")).expect("write");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        writeln!(f, "{}", line.join(",")).expect("write");
    }
    println!("wrote {}", path.display());
}

/// Writes rows of already-formatted cells as CSV with a header — for
/// result files mixing text columns (library, mapping policy) with
/// numbers, so every row is self-describing.
///
/// # Panics
///
/// Panics on I/O errors (experiment outputs are not recoverable).
pub fn write_csv_text(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    let mut f = std::fs::File::create(path).expect("cannot create CSV");
    writeln!(f, "{}", header.join(",")).expect("write");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write");
    }
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults() {
        let a = Args {
            values: HashMap::new(),
            flags: vec!["fast".into()],
        };
        assert_eq!(a.get("circuits", "c17"), "c17");
        assert_eq!(a.get_num("runs", 3usize), 3);
        assert!(a.has("fast"));
        assert!(!a.has("slow"));
    }
}
