//! Regenerates **Fig. 5**: an example output trace comparing the digital
//! prediction, the sigmoid prediction, and the analog reference, under the
//! same-stimulus condition of the detailed c1355 comparison.
//!
//! The binary picks the output with the most analog transitions (the most
//! informative plot), writes `results/fig5.csv` with columns
//! `t_s, v_analog, v_sigmoid, v_digital` and prints the per-output errors.
//!
//! Usage:
//! `cargo run --release -p sigbench --bin fig5 -- [--circuit c1355] [--seed 3] [--paper-scale]`

use rand::rngs::StdRng;
use rand::SeedableRng;

use nanospice::EngineConfig;
use sigbench::{load_models, results_dir_from, write_csv, Args};
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::Benchmark;
use sigsim::{compare_circuit, random_stimuli, HarnessConfig, SigmoidInputMode, StimulusSpec};
use sigwave::metrics::t_err_digital;

fn main() {
    let args = Args::parse();
    let name = args.get("circuit", "c1355");
    let seed: u64 = args.get_num("seed", 3);

    let trained = load_models(&args);
    let models = trained.gate_models();
    let delays = DelayTable::measure(1..=6, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delay extraction");

    let bench = Benchmark::by_name(&name).expect("unknown circuit");
    let circuit = &bench.nor_mapped;
    let mut rng = StdRng::seed_from_u64(seed);
    let stimuli = random_stimuli(circuit, &StimulusSpec::fast(), &mut rng);
    let config = HarnessConfig {
        sigmoid_inputs: SigmoidInputMode::SameAsDigital,
        ..HarnessConfig::default()
    };
    let outcome =
        compare_circuit(circuit, &stimuli, &models, &delays, &config).expect("comparison failed");

    // Pick the busiest output.
    let bundle = outcome
        .bundles
        .iter()
        .max_by_key(|b| b.analog.crossings(0.4).len())
        .expect("at least one output");
    let reference = bundle.analog.digitize(0.4);
    let window = outcome.window;
    println!(
        "{}: output {:?} — analog transitions: {}",
        bench.name,
        bundle.net,
        reference.len()
    );
    println!(
        "  t_err digital  = {:8.2} ps",
        t_err_digital(&reference, &bundle.digital, window) * 1e12
    );
    println!(
        "  t_err sigmoid  = {:8.2} ps",
        t_err_digital(&reference, &bundle.sigmoid.digitize(0.4), window) * 1e12
    );
    println!(
        "  totals over {} outputs: digital {:.2} ps, sigmoid {:.2} ps (ratio {:.2})",
        outcome.outputs,
        outcome.t_err_digital * 1e12,
        outcome.t_err_sigmoid * 1e12,
        outcome.error_ratio()
    );

    let n = 3000;
    let (t0, t1) = (window.t0, window.t1);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
            let dig = if bundle.digital.level_at(t).is_high() {
                0.8
            } else {
                0.0
            };
            vec![
                t,
                bundle.analog.value_at(t),
                bundle.sigmoid.value_at(t),
                dig,
            ]
        })
        .collect();
    write_csv(
        &results_dir_from(&args).join("fig5.csv"),
        &["t_s", "v_analog", "v_sigmoid", "v_digital"],
        &rows,
    );
}
