//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * transfer backend — ANN (paper) vs LUT vs interpolation polynomial,
//! * valid-region containment — on (paper) vs off,
//! * sub-threshold pulse cancellation — on (paper) vs off.
//!
//! Each variant runs the same randomized c17 comparison; `t_err` against
//! the analog reference is reported per variant.
//!
//! Usage: `cargo run --release -p sigbench --bin ablation -- [--runs 5] [--circuit c17]`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nanospice::EngineConfig;
use sigbench::{load_models, results_dir_from, write_csv, Args};
use sigchar::{AnalogOptions, DelayTable, GateTag};
use sigcircuit::Benchmark;
use sigsim::{
    compare_circuit, random_stimuli, GateModels, HarnessConfig, StimulusSpec, TrainedModels,
};
use sigtom::{GateModel, LutTransfer, PolyTransfer, TomOptions, ValidRegion};

fn backend_models(trained: &TrainedModels, backend: &str) -> GateModels {
    let base = trained.gate_models();
    if backend == "ann" {
        return base;
    }
    let build = |tag: GateTag, template: &GateModel| -> GateModel {
        let data = trained.dataset(tag).expect("dataset stored");
        let transfer: Arc<dyn sigtom::TransferFunction + Send + Sync> = match backend {
            "lut" => Arc::new(LutTransfer::build(data, 4).expect("lut build")),
            "poly" => Arc::new(PolyTransfer::fit(data).expect("poly fit")),
            other => panic!("unknown backend {other}"),
        };
        let mut m = GateModel::new(transfer);
        if let Some(r) = &template.region {
            m = m.with_region(r.clone());
        }
        m
    };
    GateModels {
        inverter: build(GateTag::Inverter, &base.inverter),
        inverter_fo2: build(GateTag::InverterFo2, &base.inverter_fo2),
        nor_fo1: build(GateTag::NorFo1, &base.nor_fo1),
        nor_fo2: build(GateTag::NorFo2, &base.nor_fo2),
    }
}

fn strip_region(models: &GateModels) -> GateModels {
    let strip = |m: &GateModel| GateModel::new(m.transfer.clone());
    GateModels {
        inverter: strip(&models.inverter),
        inverter_fo2: strip(&models.inverter_fo2),
        nor_fo1: strip(&models.nor_fo1),
        nor_fo2: strip(&models.nor_fo2),
    }
}

fn tighten_region(trained: &TrainedModels, models: &GateModels, margin: f64) -> GateModels {
    let rebuild = |tag: GateTag, m: &GateModel| {
        let data = trained.dataset(tag).expect("dataset stored");
        let pts: Vec<[f64; 3]> = data
            .rising
            .iter()
            .chain(&data.falling)
            .map(|s| s.features())
            .collect();
        GateModel::new(m.transfer.clone()).with_region(Arc::new(ValidRegion::build(&pts, margin)))
    };
    GateModels {
        inverter: rebuild(GateTag::Inverter, &models.inverter),
        inverter_fo2: rebuild(GateTag::InverterFo2, &models.inverter_fo2),
        nor_fo1: rebuild(GateTag::NorFo1, &models.nor_fo1),
        nor_fo2: rebuild(GateTag::NorFo2, &models.nor_fo2),
    }
}

fn main() {
    let args = Args::parse();
    let runs: usize = args.get_num("runs", 5);
    let circuit_name = args.get("circuit", "c17");
    let trained = load_models(&args);
    let delays = DelayTable::measure(1..=6, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delay extraction");
    let bench = Benchmark::by_name(&circuit_name).expect("unknown circuit");
    let circuit = &bench.nor_mapped;

    let ann = trained.gate_models();
    let variants: Vec<(String, GateModels, TomOptions)> = vec![
        ("ann(paper)".into(), ann.clone(), TomOptions::default()),
        (
            "lut".into(),
            backend_models(&trained, "lut"),
            TomOptions::default(),
        ),
        (
            "poly".into(),
            backend_models(&trained, "poly"),
            TomOptions::default(),
        ),
        (
            "ann,no-region".into(),
            strip_region(&ann),
            TomOptions::default(),
        ),
        (
            "ann,tight-region".into(),
            tighten_region(&trained, &ann, 1.5),
            TomOptions::default(),
        ),
        (
            "ann,no-cancel".into(),
            ann.clone(),
            TomOptions {
                cancel_subthreshold: false,
                ..TomOptions::default()
            },
        ),
    ];

    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "variant", "t_err_sig", "t_err_dig", "ratio"
    );
    let mut rows = Vec::new();
    for (i, (name, models, tom)) in variants.iter().enumerate() {
        let config = HarnessConfig {
            tom: *tom,
            ..HarnessConfig::default()
        };
        let mut sum_sig = 0.0;
        let mut sum_dig = 0.0;
        for r in 0..runs {
            let mut rng = StdRng::seed_from_u64(77 + r as u64);
            let stimuli = random_stimuli(circuit, &StimulusSpec::fast(), &mut rng);
            let outcome = compare_circuit(circuit, &stimuli, models, &delays, &config)
                .expect("comparison failed");
            sum_sig += outcome.t_err_sigmoid;
            sum_dig += outcome.t_err_digital;
        }
        println!(
            "{:<18} {:>10.2}ps {:>10.2}ps {:>8.2}",
            name,
            sum_sig / runs as f64 * 1e12,
            sum_dig / runs as f64 * 1e12,
            sum_sig / sum_dig
        );
        rows.push(vec![
            i as f64,
            sum_sig / runs as f64 * 1e12,
            sum_dig / runs as f64 * 1e12,
            sum_sig / sum_dig,
        ]);
    }
    write_csv(
        &results_dir_from(&args).join("ablation.csv"),
        &[
            "variant_index",
            "t_err_sigmoid_ps",
            "t_err_digital_ps",
            "ratio",
        ],
        &rows,
    );
}
