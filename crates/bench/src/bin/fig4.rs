//! Regenerates **Fig. 4**: the raw Heaviside input pulse train (four
//! transitions governed by `TA`, `TB`, `TC`) and the pulse-shaped waveform
//! arriving at the first target gate `G1`.
//!
//! Output: `results/fig4.csv` with columns `t_s, v_heaviside, v_shaped`.
//!
//! Usage: `cargo run --release -p sigbench --bin fig4 -- [--ta 10] [--tb 8] [--tc 14]` (ps)

use std::collections::HashMap;

use nanospice::{Engine, Pwl, Stimulus};
use sigbench::{results_dir_from, write_csv, Args};
use sigchar::{build_analog, AnalogOptions, ChainGate, CharChain, PulseSpec};
use sigwave::Level;

fn main() {
    let args = Args::parse();
    let spec = PulseSpec {
        t0: 60e-12,
        ta: args.get_num("ta", 10.0) * 1e-12,
        tb: args.get_num("tb", 8.0) * 1e-12,
        tc: args.get_num("tc", 14.0) * 1e-12,
    };
    println!(
        "TA = {:.0} ps, TB = {:.0} ps, TC = {:.0} ps",
        spec.ta * 1e12,
        spec.tb * 1e12,
        spec.tc * 1e12
    );

    let raw = Pwl::heaviside_train(&spec.to_trace(), 0.8, 1e-12);
    let chain = CharChain::new(ChainGate::Nor, 1, 1);
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(chain.input, Box::new(raw.clone()));
    stimuli.insert(chain.tie.expect("nor"), Box::new(nanospice::Dc(0.0)));
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    init.insert(chain.tie.expect("nor"), Level::Low);
    let analog = build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())
        .expect("analog build");
    let shaped = analog.probe_name(chain.stage_nets[0]).to_string();
    let res = Engine::default()
        .run(&analog.network, 0.0, 180e-12, &[&shaped])
        .expect("analog run");
    let wave = res.waveform(&shaped).expect("probed");

    let n = 1000;
    let (t0, t1) = (40e-12, 160e-12);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
            vec![t, nanospice::Stimulus::voltage(&raw, t), wave.value_at(t)]
        })
        .collect();
    write_csv(
        &results_dir_from(&args).join("fig4.csv"),
        &["t_s", "v_heaviside", "v_shaped"],
        &rows,
    );
}
