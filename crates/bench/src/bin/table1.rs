//! Regenerates **Table I**: `t_err` of the digital baseline and the sigmoid
//! prototype against the analog reference, error ratios, and simulation
//! wall times, for c17/c499/c1355 under the three stimulus setups, plus the
//! c1355 same-stimulus row.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sigbench --bin table1 -- \
//!     [--circuits c17,c499,c1355] [--runs 5] [--seed 1] [--paper-scale] \
//!     [--library nor-only|native] [--parallelism 0] [--mc-parallelism 1] \
//!     [--out results]
//! ```
//!
//! The paper uses 50 runs per cell; `--runs 50` reproduces that scale.
//! `--library native` simulates the native-cell mapped circuits with the
//! full cell library instead of NOR-expanding them (the gate-count and
//! `t_sim` advantage row); every CSV row carries its library and mapping
//! policy so results files are self-describing. `--parallelism` gates the
//! model-training pipeline (0 = all cores, the default).
//! `--mc-parallelism 0` additionally fans the Monte-Carlo comparison runs
//! out across all cores (`t_err` columns are bit-identical at any
//! setting), but it defaults to sequential because the reported `t_sim`
//! wall-clock columns are per-run timings — measuring them under parallel
//! contention would inflate them.

use std::time::Duration;

use nanospice::EngineConfig;
use sigbench::{load_cell_models, results_dir_from, write_csv_text, Args};
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::{Benchmark, MappingPolicy};
use sigsim::{
    compare_circuit_monte_carlo_cells, CellModels, HarnessConfig, McSummary, MonteCarloConfig,
    SigmoidInputMode, StimulusSpec,
};

struct Cell {
    circuit: String,
    library: String,
    mapping: String,
    gates: usize,
    mu_ps: f64,
    sigma_ps: f64,
    err_ratio: f64,
    t_err_digital_ps: f64,
    t_err_sigmoid_ps: f64,
    wall_sigmoid: Duration,
    wall_analog: Duration,
    same_stimulus: bool,
}

fn main() {
    let args = Args::parse();
    let circuits = args.get("circuits", "c17,c499,c1355");
    let library = args.get("library", "nor-only");
    let policy = MappingPolicy::from_name(&library).unwrap_or_else(|| {
        eprintln!("table1: unknown library {library:?} (nor-only/native)");
        std::process::exit(2);
    });
    let mc = MonteCarloConfig {
        runs: args.get_num("runs", 5),
        seed: args.get_num("seed", 1),
        // Sequential by default: the t_sim columns are per-run wall-clock
        // timings and must not include parallel contention (see module
        // docs); pass `--mc-parallelism 0` to use every core when only
        // the t_err columns matter. Distinct from `--parallelism`, which
        // gates model training (where timing fidelity is irrelevant).
        parallelism: args.get_num("mc-parallelism", 1),
        // `--fleet 1` runs every seed's sigmoid simulation in lockstep
        // through one CircuitProgram::execute_fleet (t_err columns are
        // bit-identical; t_sim_sig becomes the amortized share).
        fleet: args.get_num::<u32>("fleet", 0) != 0,
    };

    // Benchmark circuits carry per-instance interconnect variation; the
    // digital baseline's extraction grid covers it (fan-out x load), the
    // sigmoid prototype keeps only its nominal FO1/FO2 ANNs (Sec. V-C's
    // "much more accurate gate characterization used for ModelSim").
    let variation: f64 = args.get_num("wire-variation", 0.35);
    let analog = AnalogOptions {
        wire_cap_variation: variation,
        ..AnalogOptions::default()
    };
    let cells = load_cell_models(&args, policy);
    // Extraction covers the classes the mapped circuits actually
    // instantiate: NOR/INV for the prototype mapping, every native cell
    // for --library native (NAND2/AND2/OR2 get their own chain delays
    // instead of the historical NOR-class reuse).
    let delay_cells: &[sigchar::ChainGate] = match policy {
        MappingPolicy::NorOnly => &sigchar::LEGACY_DELAY_CELLS,
        MappingPolicy::Native => &sigchar::NATIVE_DELAY_CELLS,
    };
    let delays = DelayTable::measure_cells(
        delay_cells,
        1..=6,
        &[
            1.0 - variation,
            1.0 - variation / 2.0,
            1.0,
            1.0 + variation / 2.0,
            1.0 + variation,
        ],
        &AnalogOptions::default(),
        &EngineConfig::default(),
    )
    .expect("delay extraction failed");

    let mut rows: Vec<Cell> = Vec::new();
    for name in circuits.split(',') {
        let bench = Benchmark::by_name(name.trim()).expect("unknown circuit");
        for spec in StimulusSpec::table1() {
            let cell = run_cell(
                &bench,
                policy,
                &spec,
                &mc,
                &cells,
                &delays,
                &analog,
                SigmoidInputMode::Fitted,
            );
            print_cell(&cell);
            rows.push(cell);
        }
    }

    // The detailed same-stimulus comparison (last row of Table I) on the
    // largest circuit requested.
    if let Some(last) = circuits.split(',').next_back() {
        let bench = Benchmark::by_name(last.trim()).expect("unknown circuit");
        let spec = StimulusSpec::fast();
        let cell = run_cell(
            &bench,
            policy,
            &spec,
            &mc,
            &cells,
            &delays,
            &analog,
            SigmoidInputMode::SameAsDigital,
        );
        print_cell(&cell);
        rows.push(cell);
    }

    // CSV artifact: text columns make every row self-describing.
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|c| {
            vec![
                c.circuit.clone(),
                c.library.clone(),
                c.mapping.clone(),
                c.gates.to_string(),
                format!("{:.6e}", c.mu_ps),
                format!("{:.6e}", c.sigma_ps),
                format!("{:.6e}", c.err_ratio),
                format!("{:.6e}", c.t_err_digital_ps),
                format!("{:.6e}", c.t_err_sigmoid_ps),
                format!("{:.6e}", c.wall_sigmoid.as_secs_f64()),
                format!("{:.6e}", c.wall_analog.as_secs_f64()),
                u8::from(c.same_stimulus).to_string(),
            ]
        })
        .collect();
    write_csv_text(
        &results_dir_from(&args).join("table1.csv"),
        &[
            "circuit",
            "library",
            "mapping",
            "gates",
            "mu_ps",
            "sigma_ps",
            "error_ratio",
            "t_err_digital_ps",
            "t_err_sigmoid_ps",
            "t_sim_sigmoid_s",
            "t_sim_analog_s",
            "same_stimulus",
        ],
        &csv_rows,
    );
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    bench: &Benchmark,
    policy: MappingPolicy,
    spec: &StimulusSpec,
    mc: &MonteCarloConfig,
    cells: &CellModels,
    delays: &DelayTable,
    analog: &AnalogOptions,
    mode: SigmoidInputMode,
) -> Cell {
    let circuit = bench.circuit_for(policy);
    let config = HarnessConfig {
        sigmoid_inputs: mode,
        analog: *analog,
        ..HarnessConfig::default()
    };
    let outcomes = compare_circuit_monte_carlo_cells(circuit, spec, cells, delays, &config, mc)
        .expect("comparison failed");
    let summary = McSummary::from_outcomes(&outcomes, circuit.gates().len());
    Cell {
        circuit: bench.name.to_string(),
        library: cells.name().to_string(),
        mapping: policy.as_str().to_string(),
        gates: bench.gate_count(policy),
        mu_ps: spec.mu * 1e12,
        sigma_ps: spec.sigma * 1e12,
        err_ratio: if summary.digital.mean > 0.0 {
            summary.error_ratio()
        } else {
            f64::NAN
        },
        t_err_digital_ps: summary.digital.mean * 1e12,
        t_err_sigmoid_ps: summary.sigmoid.mean * 1e12,
        wall_sigmoid: summary.wall_sigmoid / summary.runs as u32,
        wall_analog: summary.wall_analog / summary.runs as u32,
        same_stimulus: mode == SigmoidInputMode::SameAsDigital,
    }
}

fn print_cell(c: &Cell) {
    println!(
        "{:>6}{} [{}/{}] #gates={:<5} ({:>5.0},{:>5.0})ps  ratio={:<5.2} t_err_dig={:>9.2}ps t_err_sig={:>9.2}ps  t_sim_sig={:>9.3?} t_sim_spice={:>9.3?}",
        c.circuit,
        if c.same_stimulus { "*" } else { " " },
        c.library,
        c.mapping,
        c.gates,
        c.mu_ps,
        c.sigma_ps,
        c.err_ratio,
        c.t_err_digital_ps,
        c.t_err_sigmoid_ps,
        c.wall_sigmoid,
        c.wall_analog,
    );
}
