//! Regenerates the content of **Fig. 3**: the NOR characterization chain —
//! pulse shaping, identical target gates `G1 … GN`, termination — printed
//! as a `.bench` netlist plus the analog node inventory, and one example
//! stage waveform summary.
//!
//! Usage: `cargo run --release -p sigbench --bin fig3 -- [--targets 4] [--fanout 1]`

use std::collections::HashMap;

use nanospice::{Engine, Pwl, Stimulus};
use sigbench::Args;
use sigchar::{build_analog, AnalogOptions, ChainGate, CharChain, PulseSpec};
use sigcircuit::to_bench;
use sigwave::Level;

fn main() {
    let args = Args::parse();
    let targets: usize = args.get_num("targets", 4);
    let fanout: usize = args.get_num("fanout", 1);
    let chain = CharChain::new(ChainGate::Nor, targets, fanout);

    println!("=== gate-level chain (.bench), fan-out {fanout} ===");
    print!("{}", to_bench(&chain.circuit));

    let spec = PulseSpec {
        t0: 60e-12,
        ta: 12e-12,
        tb: 10e-12,
        tc: 15e-12,
    };
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&spec.to_trace(), 0.8, 1e-12)),
    );
    stimuli.insert(chain.tie.expect("nor"), Box::new(nanospice::Dc(0.0)));
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    init.insert(chain.tie.expect("nor"), Level::Low);
    let analog = build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())
        .expect("analog build");

    println!("\n=== analog realization ===");
    println!(
        "{} transistors, {} dynamic nodes (incl. pulse shaping & termination)",
        analog.network.transistor_count(),
        analog.network.state_count()
    );

    let probe_names: Vec<String> = chain
        .stage_nets
        .iter()
        .map(|n| analog.probe_name(*n).to_string())
        .collect();
    let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let res = Engine::default()
        .run(&analog.network, 0.0, 220e-12, &probes)
        .expect("analog run");
    println!("\n=== stage activity (threshold crossings at VDD/2) ===");
    for (i, p) in probe_names.iter().enumerate() {
        let c = res.waveform(p).expect("probed").crossings(0.4);
        let label = if i == 0 {
            "input".into()
        } else {
            format!("G{i}")
        };
        let times: Vec<String> = c.iter().map(|x| format!("{:.1}ps", x.0 * 1e12)).collect();
        println!(
            "  {label:>6}: {} crossings  [{}]",
            c.len(),
            times.join(", ")
        );
    }
}
