//! Regenerates the content of **Fig. 2**: the architecture of the four
//! MLPs implementing one gate's TOM transfer function (SPICE operates on
//! continuous waveforms; the TOM maps sigmoid parameter lists to sigmoid
//! parameter lists).
//!
//! Usage: `cargo run --release -p sigbench --bin fig2`

use signn::Mlp;

fn main() {
    let mlp = Mlp::paper_architecture(3, 0);
    println!("TOM transfer-function implementation (per gate input):");
    println!("  4 MLPs: {{F-up, F-down}} x {{output slope, output delay}}");
    println!(
        "  architecture: {:?} (ReLU hidden, linear output)",
        mlp.layer_sizes()
    );
    println!("  parameters per network: {}", mlp.parameter_count());
    println!("  inputs:  (T = b_in - b_prev_out,  a_in,  a_prev_out)");
    println!("  outputs: a_out  or  (b_out - b_in)");
    println!();
    println!("SPICE:  Vin(t) --[solve ODEs]--> Vout(t)");
    println!("TOM:    (..., (a_in_n, b_in_n)) --[4 ANNs]--> (..., (a_out_n, b_out_n))");
}
