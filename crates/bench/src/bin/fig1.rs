//! Regenerates **Fig. 1**: the analog waveform of two input and two output
//! transitions of an inverter together with their sigmoidal fits, including
//! the TOM parameter annotations `(a, b)` per transition.
//!
//! Output: `results/fig1.csv` with columns
//! `t_s, vin_analog, vin_fit, vout_analog, vout_fit` and the fitted
//! parameters on stdout.
//!
//! Usage: `cargo run --release -p sigbench --bin fig1 -- [--out results]`

use std::collections::HashMap;

use nanospice::{Engine, Pwl, Stimulus};
use sigbench::{results_dir_from, write_csv, Args};
use sigchar::{build_analog, AnalogOptions, ChainGate, CharChain, PulseSpec};
use sigfit::{fit_waveform, FitOptions};
use sigwave::Level;

fn main() {
    let args = Args::parse();
    // An inverter driven by a realistic (pulse-shaped) double transition —
    // the Fig. 1 setup: input rise/fall, output fall/rise.
    let chain = CharChain::new(ChainGate::Inverter, 1, 1);
    let spec = PulseSpec {
        t0: 60e-12,
        ta: 18e-12,
        tb: 12e-12,
        tc: 15e-12,
    };
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&spec.to_trace(), 0.8, 1e-12)),
    );
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    let analog = build_analog(&chain.circuit, stimuli, &init, &AnalogOptions::default())
        .expect("analog build");
    let p_in = analog.probe_name(chain.stage_nets[0]).to_string();
    let p_out = analog.probe_name(chain.stage_nets[1]).to_string();
    let res = Engine::default()
        .run(&analog.network, 0.0, 200e-12, &[&p_in, &p_out])
        .expect("analog run");
    let win = res.waveform(&p_in).expect("probed");
    let wout = res.waveform(&p_out).expect("probed");

    let fit_in = fit_waveform(win, &FitOptions::default()).expect("fit input");
    let fit_out = fit_waveform(wout, &FitOptions::default()).expect("fit output");

    println!("TOM parameters (scaled units, cf. Fig. 1 annotations):");
    for (tag, trace) in [("in", &fit_in.trace), ("out", &fit_out.trace)] {
        for (n, s) in trace.transitions().iter().enumerate() {
            println!("  (a{tag}_{n}, b{tag}_{n}) = ({:+8.3}, {:8.4})", s.a, s.b);
        }
    }
    println!(
        "fit RMS: input {:.2} mV, output {:.2} mV",
        fit_in.rms_error * 1e3,
        fit_out.rms_error * 1e3
    );

    let n = 1200;
    let (t0, t1) = (40e-12, 180e-12);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
            vec![
                t,
                win.value_at(t),
                fit_in.trace.value_at(t),
                wout.value_at(t),
                fit_out.trace.value_at(t),
            ]
        })
        .collect();
    write_csv(
        &results_dir_from(&args).join("fig1.csv"),
        &["t_s", "vin_analog", "vin_fit", "vout_analog", "vout_fit"],
        &rows,
    );
}
