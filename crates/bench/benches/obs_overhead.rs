//! Observability overhead guard: the same warm compile-once request
//! (`warm_program_active` on c1355, the serving hot path) under each
//! `SIG_OBS` mode, plus microbenchmarks of the disabled primitives.
//!
//! The contract the rows enforce (see `docs/observability.md`):
//!
//! * `off` vs `counters` on the warm request must stay within noise —
//!   the acceptance threshold is 2%. Every instrumented point in the
//!   engine and service collapses to one relaxed atomic load when the
//!   mode says no, so the gap is a handful of loads per request.
//! * the `off` microbenchmark rows (`hist_record`, `stopwatch`, `span`)
//!   document that a disabled observation point costs nanoseconds —
//!   cheap enough to instrument hot loops unconditionally.
//!
//! Modes are switched with [`sigobs::set_mode`] around each row (the
//! mode is process-global; Criterion runs rows sequentially, so each
//! row owns the process while it runs).

use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sigserve::protocol::{CircuitSource, SimRequest};
use sigserve::{ModelSet, Service, ServiceConfig};
use sigtom::{GateModel, TomOptions, TransferFunction, TransferPrediction, TransferQuery};

struct Fixed;
impl TransferFunction for Fixed {
    fn predict(&self, q: TransferQuery) -> TransferPrediction {
        TransferPrediction {
            a_out: -q.a_in.signum() * 14.0,
            delay: 0.05,
        }
    }
    fn backend_name(&self) -> &'static str {
        "fixed"
    }
}

fn bench_service() -> Arc<Service> {
    let service = Service::new(ServiceConfig::default());
    service.registry().insert(ModelSet {
        name: "bench".to_string(),
        library: "nor-only".to_string(),
        policy: sigcircuit::MappingPolicy::NorOnly,
        trained: None,
        cells: Arc::new(sigsim::CellModels::nor_only(&sigsim::GateModels::uniform(
            GateModel::new(Arc::new(Fixed)),
        ))),
        delays: sigserve::registry::DelaySource::none(),
        options: TomOptions::default(),
    });
    service
}

fn warm_request() -> SimRequest {
    let text = sigcircuit::to_bench(
        &sigcircuit::Benchmark::by_name("c1355")
            .expect("benchmark")
            .original,
    );
    SimRequest {
        circuit: CircuitSource::Inline(text),
        models: "bench".to_string(),
        library: "nor-only".to_string(),
        seed: 7,
        mu: 60e-12,
        sigma: 25e-12,
        transitions: 1,
        compare: false,
        timing: false,
        timings: false,
    }
}

/// The guard rows: `warm_program_active/{off,counters,trace}`. CI
/// compares `off` against `counters` and fails the job if counters cost
/// more than the 2% acceptance threshold.
fn bench_modes(c: &mut Criterion) {
    let service = bench_service();
    let request = warm_request();
    service.execute_sim(&request).expect("prime program");
    let mut group = c.benchmark_group("obs_overhead/warm_program_active");
    group.sample_size(20);
    for mode in [
        sigobs::ObsMode::Off,
        sigobs::ObsMode::Counters,
        sigobs::ObsMode::Trace,
    ] {
        sigobs::set_mode(mode);
        group.bench_function(mode.as_str(), |b| {
            b.iter(|| {
                let result = service
                    .execute_sim(black_box(&request))
                    .expect("warm request");
                black_box(result.outputs.len())
            });
        });
    }
    sigobs::set_mode(sigobs::ObsMode::Off);
    group.finish();
}

/// The primitives a disabled observation point actually executes.
fn bench_primitives(c: &mut Criterion) {
    static HIST: sigobs::Hist = sigobs::Hist::new("bench.overhead");
    let mut group = c.benchmark_group("obs_overhead/primitive");
    for mode in [sigobs::ObsMode::Off, sigobs::ObsMode::Counters] {
        sigobs::set_mode(mode);
        group.bench_function(format!("hist_record_{}", mode.as_str()), |b| {
            b.iter(|| HIST.record_duration(black_box(Duration::from_nanos(1234))));
        });
        group.bench_function(format!("stopwatch_{}", mode.as_str()), |b| {
            b.iter(|| {
                let sw = sigobs::stopwatch();
                sw.observe(black_box(&HIST));
            });
        });
    }
    sigobs::set_mode(sigobs::ObsMode::Trace);
    group.bench_function("span_trace", |b| {
        b.iter(|| {
            let mut span = sigobs::span(black_box("bench.span"));
            span.set_arg("rows", black_box(64));
        });
    });
    // Keep the journal bounded: a drain empties what the row above wrote.
    let (events, _) = sigobs::drain_chrome_trace();
    black_box(events.len());
    sigobs::set_mode(sigobs::ObsMode::Off);
    group.finish();
}

criterion_group!(benches, bench_modes, bench_primitives);
criterion_main!(benches);
