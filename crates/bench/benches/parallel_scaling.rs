//! Wall-clock scaling of the worker-pool layer: the single-thread path
//! (`parallelism = 1`) vs the full pool (`parallelism = 0` → one worker
//! per core) on the three fanned-out hot paths — characterization sweeps,
//! four-network ANN training, and multi-seed Monte-Carlo comparison.
//!
//! On a host with ≥ 4 cores the `pool` rows should run ≥ 2× faster than
//! their `serial` counterparts (the work items are coarse and
//! independent); on a single-core host both paths collapse to the same
//! sequential loop.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nanospice::EngineConfig;
use sigchar::{
    characterize, AnalogOptions, CharacterizationConfig, DelayTable, GateTag, PulseSweep,
};
use sigsim::{
    compare_circuit_monte_carlo, GateModels, HarnessConfig, MonteCarloConfig, StimulusSpec,
};
use sigtom::{
    AnnTrainConfig, AnnTransfer, GateModel, TransferFunction, TransferPrediction, TransferQuery,
};

fn sweep_config(parallelism: usize) -> CharacterizationConfig {
    CharacterizationConfig {
        sweep: PulseSweep {
            min: 8e-12,
            max: 20e-12,
            step: 4e-12, // 4 values -> 64 runs
            t0: 60e-12,
        },
        chain_targets: 3,
        parallelism,
        ..CharacterizationConfig::default()
    }
}

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize_sweep");
    group.sample_size(10);
    for (label, parallelism) in [("serial", 1), ("pool", 0)] {
        let config = sweep_config(parallelism);
        group.bench_function(label, |b| {
            b.iter(|| characterize(black_box(GateTag::NorFo1), &config).expect("characterize"))
        });
    }
    group.finish();
}

fn bench_ann_training(c: &mut Criterion) {
    // One dataset, reused; only the four-network fan-out varies.
    let dataset = characterize(GateTag::NorFo1, &sweep_config(0))
        .expect("characterize")
        .dataset;
    let mut group = c.benchmark_group("ann_training_4_networks");
    group.sample_size(10);
    for (label, parallelism) in [("serial", 1), ("pool", 0)] {
        let config = AnnTrainConfig {
            epochs: 200,
            patience: 0,
            parallelism,
            ..AnnTrainConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| AnnTransfer::train(black_box(&dataset), &config).expect("train"))
        });
    }
    group.finish();
}

/// A cheap analytic transfer so the Monte-Carlo bench isolates harness
/// fan-out from ANN inference cost.
struct Analytic;

impl TransferFunction for Analytic {
    fn predict(&self, q: TransferQuery) -> TransferPrediction {
        let degradation = 1.0 - (-q.t / 0.2).exp();
        TransferPrediction {
            a_out: -q.a_in.signum() * 14.0 * degradation.max(0.05),
            delay: 0.055,
        }
    }
    fn backend_name(&self) -> &'static str {
        "analytic"
    }
}

fn bench_monte_carlo(c: &mut Criterion) {
    let bench = sigcircuit::Benchmark::by_name("c17").expect("benchmark");
    let circuit = &bench.nor_mapped;
    let models = GateModels::uniform(GateModel::new(Arc::new(Analytic)));
    let delays = DelayTable::measure(1..=3, &AnalogOptions::default(), &EngineConfig::default())
        .expect("delays");
    let spec = StimulusSpec::fast();
    let config = HarnessConfig::default();

    let mut group = c.benchmark_group("monte_carlo_c17_8_seeds");
    group.sample_size(10);
    for (label, parallelism) in [("serial", 1), ("pool", 0)] {
        let mc = MonteCarloConfig {
            runs: 8,
            seed: 1,
            parallelism,
            fleet: false,
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let outcomes = compare_circuit_monte_carlo(
                    black_box(circuit),
                    &spec,
                    &models,
                    &delays,
                    &config,
                    &mc,
                )
                .expect("compare");
                let _: HashMap<usize, f64> = outcomes
                    .iter()
                    .enumerate()
                    .map(|(i, o)| (i, o.t_err_sigmoid))
                    .collect();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_characterization,
    bench_ann_training,
    bench_monte_carlo
);
criterion_main!(benches);
