//! Service throughput: N concurrent clients × M requests against one
//! resident [`sigserve::Service`], cold vs warm circuit cache.
//!
//! The service runs synthetic (fixed-transfer) models registered
//! directly in the registry, so the numbers isolate the service layer:
//! request decode, cache lookup (content hash vs `.bench` parse +
//! validation + NOR mapping + fan-out limiting + levelization),
//! scheduling, and the levelized sigmoid engine itself.
//!
//! Requests send the **original** (multi-kind) c1355 netlist inline, so
//! a cache miss pays the full build pipeline — exactly what a fleet
//! client replaying the same netlist would otherwise pay per request.
//! Two stimulus regimes bracket the win:
//!
//! * `settle` (0 transitions, a boolean settle/structure query): request
//!   cost is almost entirely circuit building, so `warm_cache` must run
//!   ≥ 5× faster than `cold_cache` — the repeated-circuit headline.
//! * `active` (1 transition per input): simulation work grows with
//!   stimulus activity and the cache win shrinks toward ~2×; both rows
//!   together show where the cache matters and where the engine does.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sigserve::protocol::{CircuitSource, Request, Response, SessionEdit, SimRequest};
use sigserve::{ModelSet, Service, ServiceConfig, SessionTable};
use sigtom::{GateModel, TomOptions, TransferFunction, TransferPrediction, TransferQuery};

struct Fixed;
impl TransferFunction for Fixed {
    fn predict(&self, q: TransferQuery) -> TransferPrediction {
        TransferPrediction {
            a_out: -q.a_in.signum() * 14.0,
            delay: 0.05,
        }
    }
    fn backend_name(&self) -> &'static str {
        "fixed"
    }
}

/// A synthetic native cell set: every native cell kind bound to the same
/// fixed transfer, so native rows isolate the gate-count effect.
fn native_cells() -> sigsim::CellModels {
    sigsim::CellModels::uniform("native", GateModel::new(Arc::new(Fixed)))
}

fn bench_service(workers: usize) -> Arc<Service> {
    let service = Service::new(ServiceConfig {
        workers,
        queue_capacity: 512,
        cache_capacity: 8,
        ..ServiceConfig::default()
    });
    service.registry().insert(ModelSet {
        name: "bench".to_string(),
        library: "nor-only".to_string(),
        policy: sigcircuit::MappingPolicy::NorOnly,
        trained: None,
        cells: Arc::new(sigsim::CellModels::nor_only(&sigsim::GateModels::uniform(
            GateModel::new(Arc::new(Fixed)),
        ))),
        delays: sigserve::registry::DelaySource::none(),
        options: TomOptions::default(),
    });
    service.registry().insert(ModelSet {
        name: "bench".to_string(),
        library: "native".to_string(),
        policy: sigcircuit::MappingPolicy::Native,
        trained: None,
        cells: Arc::new(native_cells()),
        delays: sigserve::registry::DelaySource::none(),
        options: TomOptions::default(),
    });
    service
}

/// The original (multi-kind) netlist text: the realistic client payload,
/// NOR-mapped and fan-out-limited by the service on a cache miss.
fn bench_text(name: &str) -> String {
    sigcircuit::to_bench(
        &sigcircuit::Benchmark::by_name(name)
            .expect("benchmark")
            .original,
    )
}

fn request(text: String, seed: u64, transitions: usize) -> SimRequest {
    request_lib(text, "nor-only", seed, transitions)
}

fn request_lib(text: String, library: &str, seed: u64, transitions: usize) -> SimRequest {
    SimRequest {
        circuit: CircuitSource::Inline(text),
        models: "bench".to_string(),
        library: library.to_string(),
        seed,
        mu: 60e-12,
        sigma: 25e-12,
        transitions,
        compare: false,
        timing: false,
        timings: false,
    }
}

/// Cold vs warm: the same c1355 request, but the cold variant prepends a
/// unique comment line per call so every content hash misses and the
/// full build pipeline runs again.
fn bench_cache_temperature(c: &mut Criterion) {
    let service = bench_service(1);
    let text = bench_text("c1355");
    let mut group = c.benchmark_group("service_throughput/c1355");
    group.sample_size(10);

    for (label, transitions) in [("settle", 0usize), ("active", 1)] {
        let unique = Cell::new(0u64);
        group.bench_function(format!("cold_cache_{label}"), |b| {
            b.iter(|| {
                unique.set(unique.get() + 1);
                let tagged = format!("# cold {}\n{}", unique.get(), text);
                let result = service
                    .execute_sim(&request(tagged, 7, transitions))
                    .expect("cold request");
                black_box(result.outputs.len())
            });
        });

        // One priming call, then every iteration hits.
        service
            .execute_sim(&request(text.clone(), 7, transitions))
            .expect("prime");
        group.bench_function(format!("warm_cache_{label}"), |b| {
            b.iter(|| {
                let result = service
                    .execute_sim(&request(text.clone(), 7, transitions))
                    .expect("warm request");
                black_box(result.outputs.len())
            });
        });
    }

    // Native vs NOR-mapped rows: the same inline c1355 netlist, warm
    // cache, active stimuli — the only difference is the cell library,
    // so the native library's gate-count reduction (c1355 maps to ~4×
    // fewer native cells than NOR gates) shows up directly as
    // per-request wall clock.
    for library in ["nor-only", "native"] {
        service
            .execute_sim(&request_lib(text.clone(), library, 7, 1))
            .expect("prime");
        group.bench_function(format!("warm_active_{library}"), |b| {
            b.iter(|| {
                let result = service
                    .execute_sim(&request_lib(text.clone(), library, 7, 1))
                    .expect("library request");
                black_box(result.outputs.len())
            });
        });
    }

    // Warm-circuit vs warm-program: both rows skip parsing/mapping (the
    // circuit is resolved once), but the `fused` row re-runs validation,
    // slot resolution, planning and buffer allocation per request (what
    // every warm request paid before the program cache), while the
    // `program` row binds stimuli to the cached compiled program with a
    // pooled scratch — the compile-once/execute-many headline.
    let set = service
        .registry()
        .get_or_load("bench", "nor-only")
        .expect("registered set");
    let parsed =
        sigcircuit::parse_circuit(&text, sigcircuit::sniff_format(&text)).expect("bench text");
    let circuit = sigserve::service::map_for_simulation(parsed, set.policy);
    for (label, transitions) in [("settle", 0usize), ("active", 1)] {
        let warm_request = request(text.clone(), 7, transitions);
        group.bench_function(format!("warm_circuit_fused_{label}"), |b| {
            b.iter(|| {
                let result = sigserve::run_sim(
                    black_box(&circuit),
                    &set,
                    &warm_request,
                    sigserve::CacheOutcome::Hit,
                )
                .expect("fused request");
                black_box(result.outputs.len())
            });
        });
        service.execute_sim(&warm_request).expect("prime program");
        group.bench_function(format!("warm_program_{label}"), |b| {
            b.iter(|| {
                let result = service
                    .execute_sim(black_box(&warm_request))
                    .expect("program request");
                black_box(result.outputs.len())
            });
        });
    }

    // Session row next to `warm_program_settle`: one resident session
    // opened over the same inline netlist, then a single-input delta per
    // iteration through the connection-scoped scheduling path. The edit
    // alternates the input's constant level so its cone genuinely
    // re-evaluates; even paying queue + wakeup per request, the delta
    // undercuts the synchronous warm full execute because only the
    // edited cone runs.
    let table = SessionTable::new(Arc::clone(&service));
    let input_name = circuit.net_name(circuit.inputs()[0]).to_string();
    session_exchange(
        &service,
        &table,
        Request::SessionOpen {
            id: 900,
            session: 1,
            sim: request(text.clone(), 7, 0),
        },
    );
    let flip = Cell::new(false);
    group.bench_function("warm_session_delta", |b| {
        b.iter(|| {
            flip.set(!flip.get());
            session_exchange(
                &service,
                &table,
                Request::SessionDelta {
                    id: 901,
                    session: 1,
                    edits: vec![SessionEdit {
                        net: input_name.clone(),
                        initial_high: flip.get(),
                        toggles: vec![],
                    }],
                },
            );
        });
    });
    group.finish();
}

/// Sends one session request through the connection-scoped path and
/// blocks until its response arrives (the pool answers asynchronously).
fn session_exchange(service: &Arc<Service>, table: &Arc<SessionTable>, request: Request) {
    let done = Arc::new((Mutex::new(false), Condvar::new()));
    let signal = Arc::clone(&done);
    service.handle_connection_request(request, Some(table), move |response| {
        assert!(
            !matches!(response, Response::Error { .. }),
            "session request failed: {response:?}"
        );
        let (flag, cv) = &*signal;
        *flag.lock().expect("flag") = true;
        cv.notify_all();
    });
    let (flag, cv) = &*done;
    let mut flag = flag.lock().expect("flag");
    while !*flag {
        flag = cv.wait(flag).expect("flag");
    }
}

/// Full scheduling path: N clients push M requests each through
/// `handle_request` (bounded queue + worker pool) and wait for all
/// responses — the daemon's hot loop without the socket.
fn bench_concurrent_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput/clients");
    group.sample_size(10);
    for clients in [1usize, 4] {
        let service = bench_service(0);
        // Warm the cache with the three benchmark circuits.
        let texts: Vec<String> = ["c17", "c499", "c1355"]
            .map(bench_text)
            .into_iter()
            .collect();
        for t in &texts {
            service
                .execute_sim(&request(t.clone(), 1, 1))
                .expect("warm");
        }
        group.bench_function(format!("{clients}x6_requests_warm"), |b| {
            b.iter(|| {
                let pending = Arc::new((Mutex::new(0usize), Condvar::new()));
                let completed = Arc::new(AtomicU64::new(0));
                std::thread::scope(|scope| {
                    for client in 0..clients {
                        let service = Arc::clone(&service);
                        let texts = texts.clone();
                        let pending = Arc::clone(&pending);
                        let completed = Arc::clone(&completed);
                        scope.spawn(move || {
                            for (i, text) in texts.iter().cycle().take(6).enumerate() {
                                {
                                    let (count, _) = &*pending;
                                    *count.lock().expect("count") += 1;
                                }
                                let pending = Arc::clone(&pending);
                                let completed = Arc::clone(&completed);
                                service.handle_request(
                                    Request::Sim {
                                        id: (client * 100 + i) as u64,
                                        sim: request(text.clone(), i as u64, 1),
                                    },
                                    move |_response| {
                                        completed.fetch_add(1, Ordering::Relaxed);
                                        let (count, cv) = &*pending;
                                        *count.lock().expect("count") -= 1;
                                        cv.notify_all();
                                    },
                                );
                            }
                        });
                    }
                });
                let (count, cv) = &*pending;
                let mut count = count.lock().expect("count");
                while *count > 0 {
                    count = cv.wait(count).expect("count");
                }
                black_box(completed.load(Ordering::Relaxed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_temperature, bench_concurrent_clients);
criterion_main!(benches);
