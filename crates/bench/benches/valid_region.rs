//! Valid-region cost (Sec. IV-B): membership tests and projections on a
//! characterization-sized kd-tree — paid once per gate transition when
//! region containment is enabled.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sigtom::{TransferQuery, ValidRegion};

fn grid(n: usize) -> Vec<[f64; 3]> {
    let mut pts = Vec::with_capacity(n * n * 4);
    for i in 0..n {
        for j in 0..n {
            for k in 0..4 {
                pts.push([
                    i as f64 * 3.0 / n as f64,
                    5.0 + 25.0 * j as f64 / n as f64,
                    -(5.0 + 6.0 * k as f64),
                ]);
            }
        }
    }
    pts
}

fn bench_region(c: &mut Criterion) {
    let region = ValidRegion::build(&grid(30), 3.0); // 3600 points
    let inside = TransferQuery {
        t: 1.5,
        a_in: 15.0,
        a_prev_out: -11.0,
    };
    let outside = TransferQuery {
        t: 40.0,
        a_in: 300.0,
        a_prev_out: 50.0,
    };
    let mut group = c.benchmark_group("valid_region");
    group.bench_function("contains_inside", |b| {
        b.iter(|| region.contains(black_box(&inside)))
    });
    group.bench_function("contains_outside", |b| {
        b.iter(|| region.contains(black_box(&outside)))
    });
    group.bench_function("project_outside", |b| {
        b.iter(|| region.project(black_box(outside)))
    });
    group.finish();

    // Build cost (once per training run).
    let pts = grid(20);
    c.bench_function("region_build_1600pts", |b| {
        b.iter(|| ValidRegion::build(black_box(&pts), 3.0))
    });
}

criterion_group!(benches, bench_region);
criterion_main!(benches);
