//! Analog-engine costs: one derivative evaluation of benchmark-scale
//! networks (the inner loop of transient analysis) and a complete inverter
//! transient.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use nanospice::{Dc, Engine, GateParams, NetworkBuilder, Pwl, Stimulus};
use sigchar::{build_analog, AnalogOptions};
use sigcircuit::Benchmark;
use sigwave::{DigitalTrace, Level};

fn bench_derivatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("derivatives_eval");
    for name in ["c17", "c499"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let circuit = &bench.nor_mapped;
        let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
        let mut init = HashMap::new();
        for &i in circuit.inputs() {
            stimuli.insert(i, Box::new(Dc(0.0)));
            init.insert(i, Level::Low);
        }
        let analog =
            build_analog(circuit, stimuli, &init, &AnalogOptions::default()).expect("build");
        let state = analog.network.initial_state();
        let mut dstate = vec![0.0; state.len()];
        group.bench_function(name, |b| {
            b.iter(|| {
                analog
                    .network
                    .derivatives(black_box(1e-10), black_box(&state), &mut dstate)
            })
        });
    }
    group.finish();
}

fn bench_inverter_transient(c: &mut Criterion) {
    let step = DigitalTrace::new(Level::Low, vec![50e-12]).expect("trace");
    c.bench_function("inverter_transient_200ps", |b| {
        b.iter(|| {
            let mut nb = NetworkBuilder::new(0.8);
            let a = nb.add_source("a", Pwl::heaviside_train(&step, 0.8, 2e-12));
            let out = nb.add_state("out", 0.8);
            nb.add_inverter(a, out, &GateParams::default_15nm());
            nb.add_cap(out, 0.2e-15);
            let net = nb.build();
            Engine::default()
                .run(&net, 0.0, 2e-10, &["out"])
                .expect("run")
        })
    });
}

criterion_group!(benches, bench_derivatives, bench_inverter_transient);
criterion_main!(benches);
