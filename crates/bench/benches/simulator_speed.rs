//! The speed comparison behind Table I's `t_sim` columns: sigmoid
//! prototype vs digital baseline on the same circuit and stimuli (the
//! analog reference's cost is covered by `spice_engine.rs`).
//!
//! The sigmoid rows compare the levelized engine's scheduling modes —
//! `scalar` (per-gate one-shot predictions, the pre-levelization
//! behavior), `batched` (one `predict_batch` per model and level round on
//! one thread), and `parallel` (batched + the worker pool) — first with a
//! cheap analytic transfer isolating scheduling overhead, then with
//! untrained paper-architecture MLPs where batched inference is the win.
//! All modes produce bit-identical traces; only wall-clock differs (the
//! parallel rows only separate from `batched` on multi-core hosts).

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use digilog::{simulate as simulate_digital, GateChannels, InertialDelay};
use sigcircuit::Benchmark;
use signn::simd::{set_policy, SimdPolicy};
use signn::{Mlp, ScaledModel, Standardizer};
use sigsim::{
    digital_to_sigmoid, simulate_cells_with, simulate_sigmoid_with, CellModels, CircuitProgram,
    FleetScratch, GateModels, SigmoidSimConfig, SimScratch, StimulusEdit, StimulusSpec,
};
use sigtom::{
    AnnTransfer, GateModel, TomOptions, TransferFunction, TransferPrediction, TransferQuery,
};
use sigwave::SigmoidTrace;

type NetTraces = HashMap<sigcircuit::NetId, Arc<SigmoidTrace>>;

/// A cheap analytic transfer so the scheduling rows isolate simulator
/// overhead from inference cost (which the `ann_*` rows and
/// `transfer_backends.rs` measure).
struct Analytic;

impl TransferFunction for Analytic {
    fn predict(&self, q: TransferQuery) -> TransferPrediction {
        let degradation = 1.0 - (-q.t / 0.2).exp();
        TransferPrediction {
            a_out: -q.a_in.signum() * 14.0 * degradation.max(0.05),
            delay: 0.055,
        }
    }
    fn backend_name(&self) -> &'static str {
        "analytic"
    }
}

/// Untrained paper-architecture networks: real `3 → 10 → 10 → 5 → 1`
/// inference cost without a training campaign in the bench.
fn synthetic_ann_models() -> GateModels {
    let net = |seed: u64| {
        ScaledModel::new(
            Mlp::paper_architecture(3, seed),
            Standardizer::identity(3),
            Standardizer::identity(1),
        )
    };
    let ann = AnnTransfer::from_parts(net(1), net(2), net(3), net(4));
    GateModels::uniform(GateModel::new(Arc::new(ann)))
}

fn bench_simulators(c: &mut Criterion) {
    let scheduling_modes = [
        ("scalar", SigmoidSimConfig::scalar()),
        (
            "batched",
            SigmoidSimConfig {
                parallelism: 1,
                batch: true,
            },
        ),
        (
            "parallel",
            SigmoidSimConfig {
                parallelism: 0,
                batch: true,
            },
        ),
    ];
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let circuit = bench.nor_mapped.clone();
        let mut rng = StdRng::seed_from_u64(4);
        let spec = StimulusSpec::fast();
        let digital_stimuli: HashMap<_, _> = circuit
            .inputs()
            .iter()
            .map(|&i| (i, spec.sample(&mut rng)))
            .collect();
        let sigmoid_stimuli: NetTraces = digital_stimuli
            .iter()
            .map(|(&i, t)| (i, Arc::new(digital_to_sigmoid(t, 0.8))))
            .collect();
        let analytic = GateModels::uniform(GateModel::new(Arc::new(Analytic)));
        let ann = synthetic_ann_models();
        let channels = GateChannels::uniform(&circuit, InertialDelay::symmetric(5.5e-12));

        let mut group = c.benchmark_group(format!("simulate_{name}"));
        group.sample_size(20);
        for (label, config) in scheduling_modes {
            group.bench_function(label, |b| {
                b.iter(|| {
                    simulate_sigmoid_with(
                        black_box(&circuit),
                        &sigmoid_stimuli,
                        &analytic,
                        TomOptions::default(),
                        &config,
                    )
                    .expect("sim")
                })
            });
        }
        for (label, config) in scheduling_modes {
            group.bench_function(format!("ann_{label}"), |b| {
                b.iter(|| {
                    simulate_sigmoid_with(
                        black_box(&circuit),
                        &sigmoid_stimuli,
                        &ann,
                        TomOptions::default(),
                        &config,
                    )
                    .expect("sim")
                })
            });
        }
        group.bench_function("digital", |b| {
            b.iter(|| {
                simulate_digital(black_box(&circuit), &digital_stimuli, &channels).expect("sim")
            })
        });
        group.finish();
    }
}

/// One uniform cell set over every native kind.
fn uniform_native_cells(model: GateModel) -> CellModels {
    CellModels::uniform("native", model)
}

/// Native-library vs NOR-mapped rows: the same original netlist and
/// stimuli driven through both mapped forms with the same (analytic or
/// ANN) transfer cost per query — so the row difference is the mapping
/// blow-up itself (c1355 carries ~4× fewer native cells than NOR gates),
/// the tentpole's wall-clock claim.
fn bench_mapping_policies(c: &mut Criterion) {
    for name in ["c17", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let mut rng = StdRng::seed_from_u64(4);
        let spec = StimulusSpec::fast();
        let digital_stimuli: HashMap<_, _> = bench
            .original
            .inputs()
            .iter()
            .map(|&i| (i, spec.sample(&mut rng)))
            .collect();
        let analytic_nor = GateModels::uniform(GateModel::new(Arc::new(Analytic)));
        let analytic_native = uniform_native_cells(GateModel::new(Arc::new(Analytic)));
        let ann_native = {
            let net = |seed: u64| {
                ScaledModel::new(
                    Mlp::paper_architecture(3, seed),
                    Standardizer::identity(3),
                    Standardizer::identity(1),
                )
            };
            let ann = AnnTransfer::from_parts(net(1), net(2), net(3), net(4));
            uniform_native_cells(GateModel::new(Arc::new(ann)))
        };
        let ann_nor = synthetic_ann_models();

        let mut group = c.benchmark_group(format!("mapping_{name}"));
        group.sample_size(20);
        let config = SigmoidSimConfig::default();
        // The two mapped forms share input names in position order.
        let stimuli_for = |circuit: &sigcircuit::Circuit| -> NetTraces {
            circuit
                .inputs()
                .iter()
                .zip(bench.original.inputs())
                .map(|(&i, orig)| (i, Arc::new(digital_to_sigmoid(&digital_stimuli[orig], 0.8))))
                .collect()
        };
        let nor_stimuli = stimuli_for(&bench.nor_mapped);
        let native_stimuli = stimuli_for(&bench.native);
        group.bench_function(
            format!("nor_only_{}_gates", bench.nor_mapped.gates().len()),
            |b| {
                b.iter(|| {
                    simulate_sigmoid_with(
                        black_box(&bench.nor_mapped),
                        &nor_stimuli,
                        &analytic_nor,
                        TomOptions::default(),
                        &config,
                    )
                    .expect("sim")
                })
            },
        );
        group.bench_function(
            format!("native_{}_gates", bench.native.gates().len()),
            |b| {
                b.iter(|| {
                    simulate_cells_with(
                        black_box(&bench.native),
                        &native_stimuli,
                        &analytic_native,
                        TomOptions::default(),
                        &config,
                    )
                    .expect("sim")
                })
            },
        );
        group.bench_function("ann_nor_only", |b| {
            b.iter(|| {
                simulate_sigmoid_with(
                    black_box(&bench.nor_mapped),
                    &nor_stimuli,
                    &ann_nor,
                    TomOptions::default(),
                    &config,
                )
                .expect("sim")
            })
        });
        group.bench_function("ann_native", |b| {
            b.iter(|| {
                simulate_cells_with(
                    black_box(&bench.native),
                    &native_stimuli,
                    &ann_native,
                    TomOptions::default(),
                    &config,
                )
                .expect("sim")
            })
        });
        group.finish();
    }
}

/// Compile-once / execute-many rows: per circuit and library,
/// `compile` prices the one-off circuit-dependent work
/// ([`CircuitProgram::compile`]: validation, slot resolution, plan
/// templates), `execute` the steady-state per-request work against the
/// resident program with a reused [`SimScratch`], and `legacy` the fused
/// entry point paying both per call — the service's warm-path win is
/// `legacy − execute`.
fn bench_program(c: &mut Criterion) {
    for name in ["c17", "c499", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let mut rng = StdRng::seed_from_u64(4);
        let spec = StimulusSpec::fast();
        let digital_stimuli: HashMap<_, _> = bench
            .original
            .inputs()
            .iter()
            .map(|&i| (i, spec.sample(&mut rng)))
            .collect();
        let stimuli_for = |circuit: &sigcircuit::Circuit| -> NetTraces {
            circuit
                .inputs()
                .iter()
                .zip(bench.original.inputs())
                .map(|(&i, orig)| (i, Arc::new(digital_to_sigmoid(&digital_stimuli[orig], 0.8))))
                .collect()
        };
        let libraries: [(&str, Arc<sigcircuit::Circuit>, Arc<CellModels>); 2] = [
            (
                "nor_only",
                Arc::new(bench.nor_mapped.clone()),
                Arc::new(CellModels::nor_only(&GateModels::uniform(GateModel::new(
                    Arc::new(Analytic),
                )))),
            ),
            (
                "native",
                Arc::new(bench.native.clone()),
                Arc::new(uniform_native_cells(GateModel::new(Arc::new(Analytic)))),
            ),
        ];
        let mut group = c.benchmark_group(format!("program_{name}"));
        group.sample_size(20);
        let config = SigmoidSimConfig::default();
        for (library, circuit, cells) in libraries {
            let stimuli = stimuli_for(&circuit);
            group.bench_function(format!("{library}_compile"), |b| {
                b.iter(|| {
                    CircuitProgram::compile(
                        Arc::clone(black_box(&circuit)),
                        Arc::clone(&cells),
                        TomOptions::default(),
                    )
                    .expect("compiles")
                })
            });
            let program = CircuitProgram::compile(
                Arc::clone(&circuit),
                Arc::clone(&cells),
                TomOptions::default(),
            )
            .expect("compiles");
            let mut scratch = SimScratch::new();
            group.bench_function(format!("{library}_execute"), |b| {
                b.iter(|| {
                    program
                        .execute_with(black_box(&stimuli), &config, &mut scratch)
                        .expect("sim")
                })
            });
            group.bench_function(format!("{library}_legacy"), |b| {
                b.iter(|| {
                    simulate_cells_with(
                        black_box(&circuit),
                        &stimuli,
                        &cells,
                        TomOptions::default(),
                        &config,
                    )
                    .expect("sim")
                })
            });
        }
        group.finish();
    }
}

/// Incremental-engine rows (the event-driven tentpole): a resident
/// session absorbs stimulus edits against its committed state. `1edit`
/// re-evaluates a single input cone, `10pct_edits` a tenth of the
/// inputs, and `full` is the warm full execute of the same compiled
/// program with a reused scratch — the reference a delta must beat
/// (≥ 5× on c1355's single-edit row). Every iteration alternates the
/// edited inputs between two distinct traces: re-submitting the
/// committed trace converges after zero gate evaluations under the
/// cutoff and would measure nothing.
fn bench_delta(c: &mut Criterion) {
    for name in ["c17", "c1355"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let circuit = Arc::new(bench.nor_mapped.clone());
        let cells = Arc::new(CellModels::nor_only(&GateModels::uniform(GateModel::new(
            Arc::new(Analytic),
        ))));
        let program = CircuitProgram::compile(Arc::clone(&circuit), cells, TomOptions::default())
            .expect("compiles");
        let mut rng = StdRng::seed_from_u64(4);
        let spec = StimulusSpec::fast();
        let baseline: NetTraces = circuit
            .inputs()
            .iter()
            .map(|&i| (i, Arc::new(digital_to_sigmoid(&spec.sample(&mut rng), 0.8))))
            .collect();
        let alternate: NetTraces = circuit
            .inputs()
            .iter()
            .map(|&i| (i, Arc::new(digital_to_sigmoid(&spec.sample(&mut rng), 0.8))))
            .collect();
        let inputs = circuit.inputs().to_vec();
        let edits_from = |count: usize, source: &NetTraces| -> Vec<StimulusEdit> {
            inputs[..count]
                .iter()
                .map(|&net| StimulusEdit {
                    net,
                    trace: Arc::clone(&source[&net]),
                })
                .collect()
        };
        let mut scratch = SimScratch::new();
        let mut group = c.benchmark_group(format!("delta_{name}"));
        group.sample_size(20);
        for (label, count) in [("1edit", 1), ("10pct_edits", inputs.len().div_ceil(10))] {
            let to_alternate = edits_from(count, &alternate);
            let to_baseline = edits_from(count, &baseline);
            let mut state = program
                .open_session(&baseline, &mut scratch)
                .expect("opens");
            let mut flip = false;
            group.bench_function(label, |b| {
                b.iter(|| {
                    flip = !flip;
                    let edits = if flip { &to_alternate } else { &to_baseline };
                    program
                        .execute_delta(black_box(&mut state), edits)
                        .expect("delta")
                })
            });
        }
        group.bench_function("full", |b| {
            b.iter(|| {
                program
                    .execute_with(
                        black_box(&baseline),
                        &SigmoidSimConfig::default(),
                        &mut scratch,
                    )
                    .expect("sim")
            })
        });
        group.finish();
    }
}

/// Fleet rows (this tentpole's wall-clock claim): a 16-run c1355
/// Monte-Carlo-style campaign with real ANN inference, executed three
/// ways. `per_run_scalar` is the reference per-run path — 16 sequential
/// solo executions of [`SigmoidSimConfig::scalar`] (per-gate one-shot
/// predictions, the configuration documented as the baseline every other
/// setting must match bit for bit) with the SIMD kernels forced off.
/// `per_run_batched` adds level batching and duplicate-gate elimination,
/// still per run and still SIMD-off. `fleet` is one
/// [`CircuitProgram::execute_fleet`] lockstep execution under the
/// runtime-detected kernels — the full optimization stack. Traces are
/// bit-identical at every setting (the fleet and SIMD proptests enforce
/// it); only wall-clock differs, and every row covers the same 16 runs
/// per iteration, so the medians compare directly. Acceptance for the
/// perf work is `per_run_scalar / fleet >= 4`.
fn bench_fleet(c: &mut Criterion) {
    let runs = 16u64;
    let bench = Benchmark::by_name("c1355").expect("benchmark");
    let circuit = Arc::new(bench.nor_mapped.clone());
    let cells = Arc::new(CellModels::nor_only(&synthetic_ann_models()));
    let program = CircuitProgram::compile(Arc::clone(&circuit), cells, TomOptions::default())
        .expect("compiles");
    let spec = StimulusSpec::fast();
    let sets: Vec<NetTraces> = (0..runs)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(4 ^ (r << 16));
            circuit
                .inputs()
                .iter()
                .map(|&i| (i, Arc::new(digital_to_sigmoid(&spec.sample(&mut rng), 0.8))))
                .collect()
        })
        .collect();
    let batched = SigmoidSimConfig {
        parallelism: 1,
        batch: true,
    };
    let mut group = c.benchmark_group("fleet_c1355");
    group.sample_size(10);
    let mut scratch = SimScratch::new();
    for (label, config) in [
        ("per_run_scalar", SigmoidSimConfig::scalar()),
        ("per_run_batched", batched),
    ] {
        group.bench_function(format!("{label}_{runs}_runs"), |b| {
            set_policy(SimdPolicy::Off);
            b.iter(|| {
                for stimuli in &sets {
                    program
                        .execute_with(black_box(stimuli), &config, &mut scratch)
                        .expect("sim");
                }
            });
            set_policy(SimdPolicy::Auto);
        });
    }
    let mut fleet_scratch = FleetScratch::new();
    group.bench_function(format!("fleet_{runs}_runs"), |b| {
        set_policy(SimdPolicy::Auto);
        b.iter(|| {
            program
                .execute_fleet_with(black_box(&sets), &batched, &mut fleet_scratch)
                .expect("fleet")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulators,
    bench_mapping_policies,
    bench_program,
    bench_delta,
    bench_fleet
);
criterion_main!(benches);
