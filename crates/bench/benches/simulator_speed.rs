//! The speed comparison behind Table I's `t_sim` columns: sigmoid
//! prototype vs digital baseline on the same circuit and stimuli (the
//! analog reference's cost is covered by `spice_engine.rs`).

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use digilog::{simulate as simulate_digital, GateChannels, InertialDelay};
use sigcircuit::Benchmark;
use sigsim::{digital_to_sigmoid, simulate_sigmoid, GateModels, StimulusSpec};
use sigtom::{GateModel, TomOptions, TransferFunction, TransferPrediction, TransferQuery};
use sigwave::SigmoidTrace;

/// A cheap analytic transfer so the bench isolates simulator overhead from
/// ANN inference (which `transfer_backends.rs` measures separately).
struct Analytic;

impl TransferFunction for Analytic {
    fn predict(&self, q: TransferQuery) -> TransferPrediction {
        let degradation = 1.0 - (-q.t / 0.2).exp();
        TransferPrediction {
            a_out: -q.a_in.signum() * 14.0 * degradation.max(0.05),
            delay: 0.055,
        }
    }
    fn backend_name(&self) -> &'static str {
        "analytic"
    }
}

fn bench_simulators(c: &mut Criterion) {
    for name in ["c17", "c499"] {
        let bench = Benchmark::by_name(name).expect("benchmark");
        let circuit = bench.nor_mapped.clone();
        let mut rng = StdRng::seed_from_u64(4);
        let spec = StimulusSpec::fast();
        let digital_stimuli: HashMap<_, _> = circuit
            .inputs()
            .iter()
            .map(|&i| (i, spec.sample(&mut rng)))
            .collect();
        let sigmoid_stimuli: HashMap<_, SigmoidTrace> = digital_stimuli
            .iter()
            .map(|(&i, t)| (i, digital_to_sigmoid(t, 0.8)))
            .collect();
        let models = GateModels::uniform(GateModel::new(Arc::new(Analytic)));
        let channels = GateChannels::uniform(&circuit, InertialDelay::symmetric(5.5e-12));

        let mut group = c.benchmark_group(format!("simulate_{name}"));
        group.sample_size(20);
        group.bench_function("sigmoid", |b| {
            b.iter(|| {
                simulate_sigmoid(
                    black_box(&circuit),
                    &sigmoid_stimuli,
                    &models,
                    TomOptions::default(),
                )
                .expect("sim")
            })
        });
        group.bench_function("digital", |b| {
            b.iter(|| {
                simulate_digital(black_box(&circuit), &digital_stimuli, &channels).expect("sim")
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
