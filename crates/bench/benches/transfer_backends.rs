//! Per-query cost of the three transfer-function backends (ANN vs LUT vs
//! polynomial) — the inner loop of the sigmoid simulator, evaluated once
//! per gate transition.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sigchar::{Dataset, GateTag, TransferSample, T_FAR};
use sigtom::{
    AnnTrainConfig, AnnTransfer, LutTransfer, PolyTransfer, TransferFunction, TransferQuery,
};

fn synthetic_dataset(n: usize) -> Dataset {
    let mut d = Dataset::new(GateTag::NorFo1);
    for i in 0..n {
        let t = 0.05 + (i as f64 / n as f64) * (T_FAR - 0.05);
        for j in 0..6 {
            let mag = 6.0 + 3.0 * j as f64;
            for &a_in in &[mag, -mag] {
                let a_prev = -a_in;
                d.push(TransferSample {
                    t,
                    a_in,
                    a_prev_out: a_prev,
                    a_out: -a_in * 0.9,
                    delay: 0.05 + 0.2 / a_in.abs(),
                });
            }
        }
    }
    d
}

fn bench_backends(c: &mut Criterion) {
    let data = synthetic_dataset(40);
    let ann = AnnTransfer::train(
        &data,
        &AnnTrainConfig {
            epochs: 50,
            ..AnnTrainConfig::default()
        },
    )
    .expect("train");
    let lut = LutTransfer::build(&data, 4).expect("lut");
    let poly = PolyTransfer::fit(&data).expect("poly");
    let q = TransferQuery {
        t: 1.1,
        a_in: 13.0,
        a_prev_out: -12.0,
    };

    let mut group = c.benchmark_group("transfer_predict");
    group.bench_function("ann", |b| b.iter(|| ann.predict(black_box(q))));
    group.bench_function("lut_knn", |b| b.iter(|| lut.predict(black_box(q))));
    group.bench_function("poly", |b| b.iter(|| poly.predict(black_box(q))));
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
