//! Cost of the Levenberg–Marquardt sigmoidal waveform fit (Sec. II) — the
//! per-waveform cost of characterization and of input preparation in the
//! comparison harness.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sigfit::{fit_waveform, FitOptions};
use sigwave::{Level, Sigmoid, SigmoidTrace, VDD_DEFAULT};

fn bench_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("waveform_fit");
    for transitions in [1usize, 2, 4, 8] {
        let trs: Vec<Sigmoid> = (0..transitions)
            .map(|i| {
                let b = 1.0 + i as f64 * 0.8;
                if i % 2 == 0 {
                    Sigmoid::rising(10.0 + i as f64, b)
                } else {
                    Sigmoid::falling(12.0 + i as f64, b)
                }
            })
            .collect();
        let truth = SigmoidTrace::from_transitions(Level::Low, trs, VDD_DEFAULT).expect("trace");
        let span = 1e-10 * (transitions as f64 * 0.8 + 2.0);
        let wave = truth.to_waveform(0.0, span, 600);
        group.bench_function(format!("{transitions}_transitions"), |b| {
            b.iter(|| fit_waveform(black_box(&wave), &FitOptions::default()).expect("fit"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
