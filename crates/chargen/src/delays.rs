//! Per-gate digital delay extraction from analog step responses — the
//! reproduction's stand-in for the paper's Genus/Innovus delay extraction
//! feeding ModelSim.

use std::collections::HashMap;

use digilog::InertialDelay;
use nanospice::{Dc, Engine, EngineConfig, Pwl, Stimulus};
use sigwave::{DigitalTrace, Level};

use crate::analog::{build_analog, AnalogOptions};
use crate::chain::{ChainGate, CharChain};
use crate::extract::CharError;

/// Extracted 50 %→50 % propagation delays of one gate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelays {
    /// Input-to-output delay for a rising *output* transition (seconds).
    pub rise: f64,
    /// Delay for a falling output transition (seconds).
    pub fall: f64,
}

impl GateDelays {
    /// As an inertial channel (the classic digital-simulator model).
    #[must_use]
    pub fn to_inertial(self) -> InertialDelay {
        InertialDelay {
            rise: self.rise,
            fall: self.fall,
        }
    }
}

/// Measures the rise/fall delay of a NOR gate driving `fanout` loads by
/// simulating a two-target chain and timing the second target (the first
/// shapes the edge realistically).
///
/// # Errors
///
/// Returns [`CharError`] if the analog run fails or the expected crossings
/// are missing.
pub fn measure_nor_delays(
    fanout: usize,
    analog_options: &AnalogOptions,
    engine_config: &EngineConfig,
) -> Result<GateDelays, CharError> {
    measure_nor_delays_loaded(fanout, 1.0, analog_options, engine_config)
}

/// Like [`measure_nor_delays`] with the wire capacitance scaled by
/// `load_multiplier` — the per-instance extraction a signoff flow performs
/// for every gate's actual interconnect.
///
/// # Errors
///
/// Returns [`CharError`] if the analog run fails or the expected crossings
/// are missing.
pub fn measure_nor_delays_loaded(
    fanout: usize,
    load_multiplier: f64,
    analog_options: &AnalogOptions,
    engine_config: &EngineConfig,
) -> Result<GateDelays, CharError> {
    measure_gate_delays(
        ChainGate::Nor,
        fanout,
        load_multiplier,
        analog_options,
        engine_config,
    )
}

/// Measures the delays of any characterizable cell kind (inverter, NOR,
/// NAND, AND, OR chains) at a given fan-out and interconnect load.
///
/// # Errors
///
/// Returns [`CharError`] if the analog run fails or the expected crossings
/// are missing.
pub fn measure_gate_delays(
    gate: ChainGate,
    fanout: usize,
    load_multiplier: f64,
    analog_options: &AnalogOptions,
    engine_config: &EngineConfig,
) -> Result<GateDelays, CharError> {
    let analog_options = &AnalogOptions {
        wire_cap: analog_options.wire_cap * load_multiplier,
        wire_cap_variation: 0.0,
        ..*analog_options
    };
    let chain = CharChain::new(gate, 2, fanout);
    // A single slow pulse: edges are far apart, so delays are "fresh".
    let stim = DigitalTrace::new(Level::Low, vec![60e-12, 160e-12]).expect("static toggle times");
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&stim, 0.8, 1e-12)),
    );
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    if let Some(tie) = chain.tie {
        let v = if chain.tie_level.is_high() { 0.8 } else { 0.0 };
        stimuli.insert(tie, Box::new(Dc(v)));
        init.insert(tie, chain.tie_level);
    }
    let analog = build_analog(&chain.circuit, stimuli, &init, analog_options)?;
    let p_in = analog.probe_name(chain.stage_nets[1]).to_string();
    let p_out = analog.probe_name(chain.stage_nets[2]).to_string();
    let res = Engine::new(*engine_config).run(&analog.network, 0.0, 3.2e-10, &[&p_in, &p_out])?;
    let win = res.waveform(&p_in).expect("probed");
    let wout = res.waveform(&p_out).expect("probed");
    let cin = win.crossings(0.4);
    let cout = wout.crossings(0.4);
    if cin.len() != 2 || cout.len() != 2 {
        return Err(CharError::Simulation(
            nanospice::SimulationError::UnknownProbe(format!(
                "expected 2 crossings on measurement stage, got {}/{}",
                cin.len(),
                cout.len()
            )),
        ));
    }
    // Second target inverts: input falling edge -> output rising edge.
    let d1 = cout[0].0 - cin[0].0;
    let d2 = cout[1].0 - cin[1].0;
    let (rise, fall) = match cout[0].1 {
        sigwave::CrossingDirection::Rising => (d1, d2),
        sigwave::CrossingDirection::Falling => (d2, d1),
    };
    Ok(GateDelays { rise, fall })
}

/// The two cell classes every table measures ([`DelayTable::measure`] /
/// [`DelayTable::measure_grid`]): the paper's NOR-only prototype world.
pub const LEGACY_DELAY_CELLS: [ChainGate; 2] = [ChainGate::Nor, ChainGate::Inverter];

/// All characterizable cell classes — what a native-library table
/// measures so NAND2/AND2/OR2 stop borrowing NOR-class delays.
pub const NATIVE_DELAY_CELLS: [ChainGate; 5] = [
    ChainGate::Nor,
    ChainGate::Inverter,
    ChainGate::Nand,
    ChainGate::And,
    ChainGate::Or,
];

/// A delay table indexed by **cell class** ([`ChainGate`]), fan-out and
/// interconnect load multiplier — the reproduction's equivalent of a
/// signoff extraction database: one delay entry per gate configuration
/// *including its actual interconnect*.
///
/// Historical note: the table used to key only `(inverter?, fan-out)`,
/// so NAND/AND/OR gates in compare mode reused NOR-class delays. It is
/// now keyed by cell class; [`DelayTable::lookup_cell`] falls back to
/// the NOR class for unmeasured classes, which reproduces the old
/// behaviour exactly when only the legacy classes were measured. Tables
/// are measured in-memory per process (never serialized), so the format
/// change cannot leave stale artifacts behind.
#[derive(Debug, Clone, Default)]
pub struct DelayTable {
    /// Per (cell class, fan-out): `(load multiplier, delays)` sorted by
    /// multiplier.
    by_cell: HashMap<(ChainGate, usize), Vec<(f64, GateDelays)>>,
}

impl DelayTable {
    /// Builds the legacy-class table ([`LEGACY_DELAY_CELLS`]) for every
    /// fan-out in `fanouts` at nominal load.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors.
    pub fn measure(
        fanouts: impl IntoIterator<Item = usize>,
        analog_options: &AnalogOptions,
        engine_config: &EngineConfig,
    ) -> Result<Self, CharError> {
        Self::measure_grid(fanouts, &[1.0], analog_options, engine_config)
    }

    /// Builds the full (legacy cell class × fan-out × load multiplier)
    /// grid.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers` is empty.
    pub fn measure_grid(
        fanouts: impl IntoIterator<Item = usize>,
        multipliers: &[f64],
        analog_options: &AnalogOptions,
        engine_config: &EngineConfig,
    ) -> Result<Self, CharError> {
        Self::measure_cells(
            &LEGACY_DELAY_CELLS,
            fanouts,
            multipliers,
            analog_options,
            engine_config,
        )
    }

    /// Builds the full (cell class × fan-out × load multiplier) grid for
    /// an arbitrary class set — [`NATIVE_DELAY_CELLS`] gives every native
    /// cell its own measured chain delays.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers` is empty.
    pub fn measure_cells(
        cells: &[ChainGate],
        fanouts: impl IntoIterator<Item = usize>,
        multipliers: &[f64],
        analog_options: &AnalogOptions,
        engine_config: &EngineConfig,
    ) -> Result<Self, CharError> {
        assert!(!multipliers.is_empty(), "need at least one load multiplier");
        let mut by_cell: HashMap<(ChainGate, usize), Vec<(f64, GateDelays)>> = HashMap::new();
        for f in fanouts {
            let f = f.max(1);
            for &gate in cells {
                let key = (gate, f);
                if by_cell.contains_key(&key) {
                    continue;
                }
                let mut entries = Vec::with_capacity(multipliers.len());
                for &m in multipliers {
                    entries.push((
                        m,
                        measure_gate_delays(gate, f, m, analog_options, engine_config)?,
                    ));
                }
                entries.sort_by(|a, b| a.0.total_cmp(&b.0));
                by_cell.insert(key, entries);
            }
        }
        Ok(Self { by_cell })
    }

    /// Delays for a NOR gate driving `fanout` loads at nominal
    /// interconnect.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn lookup(&self, fanout: usize) -> GateDelays {
        self.lookup_loaded(fanout, 1.0)
    }

    /// Nominal-load delays of an inverter (1-input NOR) at `fanout`.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn lookup_inverter(&self, fanout: usize) -> GateDelays {
        self.lookup_cell(ChainGate::Inverter, fanout, 1.0)
    }

    /// Delays for a NOR gate driving `fanout` loads with its wire
    /// capacitance scaled by `multiplier`; linearly interpolated (clamped)
    /// between the measured multipliers. Unmeasured fan-outs fall back to
    /// the largest measured one.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn lookup_loaded(&self, fanout: usize, multiplier: f64) -> GateDelays {
        self.lookup_cell(ChainGate::Nor, fanout, multiplier)
    }

    /// The historical two-class lookup (`inverter` = 1-input NOR) — a
    /// compatibility wrapper over [`DelayTable::lookup_cell`].
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn lookup_gate(&self, inverter: bool, fanout: usize, multiplier: f64) -> GateDelays {
        let cell = if inverter {
            ChainGate::Inverter
        } else {
            ChainGate::Nor
        };
        self.lookup_cell(cell, fanout, multiplier)
    }

    /// Full lookup: cell class, fan-out and load multiplier, with
    /// interpolation and graceful fallback. Fallback order for a missing
    /// `(cell, fanout)` entry: the same class at its largest measured
    /// fan-out, then the NOR class (the legacy approximation for cells a
    /// table never measured), then the inverter class, then any entry.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn lookup_cell(&self, cell: ChainGate, fanout: usize, multiplier: f64) -> GateDelays {
        let key = (cell, fanout.max(1));
        let entries = self.by_cell.get(&key).unwrap_or_else(|| {
            let largest_of = |class: ChainGate| {
                self.by_cell
                    .keys()
                    .filter(|(c, _)| *c == class)
                    .max_by_key(|(_, f)| *f)
            };
            let fallback = largest_of(cell)
                .or_else(|| largest_of(ChainGate::Nor))
                .or_else(|| largest_of(ChainGate::Inverter))
                .or_else(|| self.by_cell.keys().max_by_key(|(_, f)| *f))
                .expect("delay table must not be empty");
            &self.by_cell[fallback]
        });
        if entries.len() == 1 {
            return entries[0].1;
        }
        // Clamp outside the measured range.
        if multiplier <= entries[0].0 {
            return entries[0].1;
        }
        if multiplier >= entries[entries.len() - 1].0 {
            return entries[entries.len() - 1].1;
        }
        let i = entries.partition_point(|(m, _)| *m <= multiplier);
        let (m0, d0) = entries[i - 1];
        let (m1, d1) = entries[i];
        let w = (multiplier - m0) / (m1 - m0);
        GateDelays {
            rise: d0.rise + w * (d1.rise - d0.rise),
            fall: d0.fall + w * (d1.fall - d0.fall),
        }
    }

    /// Whether a `(cell, fan-out)` configuration was actually measured
    /// (no fallback involved).
    #[must_use]
    pub fn has_cell(&self, cell: ChainGate, fanout: usize) -> bool {
        self.by_cell.contains_key(&(cell, fanout.max(1)))
    }

    /// Number of measured (cell class, fan-out) configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_cell.len()
    }

    /// `true` if nothing was measured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_cell.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nor_delays_in_calibrated_range() {
        let d = measure_nor_delays(1, &AnalogOptions::default(), &EngineConfig::default()).unwrap();
        assert!(d.rise > 0.5e-12 && d.rise < 40e-12, "rise {:.2e}", d.rise);
        assert!(d.fall > 0.5e-12 && d.fall < 40e-12, "fall {:.2e}", d.fall);
        // With the widened (pre-charged) pull-up stack the edges are
        // roughly balanced; they must at least be within 2x of each other.
        let ratio = d.rise / d.fall;
        assert!(
            (0.5..2.0).contains(&ratio),
            "unbalanced edges, ratio {ratio}"
        );
    }

    #[test]
    fn higher_fanout_is_slower() {
        let cfg = EngineConfig::default();
        let opts = AnalogOptions::default();
        let fo1 = measure_nor_delays(1, &opts, &cfg).unwrap();
        let fo3 = measure_nor_delays(3, &opts, &cfg).unwrap();
        assert!(fo3.rise > fo1.rise, "{} vs {}", fo3.rise, fo1.rise);
        assert!(fo3.fall > fo1.fall);
    }

    #[test]
    fn table_lookup_and_fallback() {
        let cfg = EngineConfig::default();
        let opts = AnalogOptions::default();
        let table = DelayTable::measure([1, 2], &opts, &cfg).unwrap();
        // Two fan-outs x two gate kinds (NOR + inverter).
        assert_eq!(table.len(), 4);
        // Inverters are characterized separately from NOR gates.
        let inv = table.lookup_inverter(1);
        assert!(inv.rise > 0.5e-12 && inv.rise < 40e-12);
        let d1 = table.lookup(1);
        let d9 = table.lookup(9); // falls back to fan-out 2
        let d2 = table.lookup(2);
        assert_eq!(d9, d2);
        assert!(d2.rise > d1.rise);
    }

    #[test]
    fn cell_classes_have_distinct_measured_delays() {
        // A native-class table must serve NAND from its own measurement,
        // not the NOR approximation — and a legacy table must fall back
        // to the NOR class for NAND exactly as the old keying did.
        let cfg = EngineConfig::default();
        let opts = AnalogOptions::default();
        let native =
            DelayTable::measure_cells(&[ChainGate::Nor, ChainGate::Nand], [1], &[1.0], &opts, &cfg)
                .unwrap();
        assert!(native.has_cell(ChainGate::Nand, 1));
        let nand = native.lookup_cell(ChainGate::Nand, 1, 1.0);
        let nor = native.lookup_cell(ChainGate::Nor, 1, 1.0);
        assert!(nand.rise > 0.5e-12 && nand.rise < 40e-12, "{:?}", nand);
        assert_ne!(nand, nor, "NAND must not reuse the NOR measurement");

        let legacy = DelayTable::measure([1], &opts, &cfg).unwrap();
        assert!(!legacy.has_cell(ChainGate::Nand, 1));
        assert_eq!(
            legacy.lookup_cell(ChainGate::Nand, 1, 1.0),
            legacy.lookup_cell(ChainGate::Nor, 1, 1.0),
            "unmeasured classes fall back to the NOR class"
        );
        assert_eq!(
            legacy.lookup_gate(false, 1, 1.0),
            legacy.lookup_cell(ChainGate::Nor, 1, 1.0),
            "the historical two-class lookup is a wrapper"
        );
    }

    #[test]
    fn loaded_grid_interpolates() {
        let cfg = EngineConfig::default();
        let opts = AnalogOptions::default();
        let table = DelayTable::measure_grid([1], &[0.5, 1.0, 1.5], &opts, &cfg).unwrap();
        let light = table.lookup_loaded(1, 0.5);
        let nominal = table.lookup_loaded(1, 1.0);
        let heavy = table.lookup_loaded(1, 1.5);
        assert!(light.fall < nominal.fall && nominal.fall < heavy.fall);
        // Interpolated point sits between the grid values.
        let mid = table.lookup_loaded(1, 1.25);
        assert!(mid.fall > nominal.fall && mid.fall < heavy.fall);
        // Clamped outside the range.
        assert_eq!(table.lookup_loaded(1, 0.1), light);
        assert_eq!(table.lookup_loaded(1, 9.0), heavy);
    }
}
