//! The paper's characterization stimulus (Fig. 4): four Heaviside
//! transitions governed by the three intervals `TA`, `TB`, `TC`.

use sigwave::{DigitalTrace, Level};

/// The three-interval pulse pair of Fig. 4: transitions at `t0`,
/// `t0 + TA`, `t0 + TA + TB` and `t0 + TA + TB + TC`, starting from low.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseSpec {
    /// Quiet time before the first transition (seconds).
    pub t0: f64,
    /// First pulse width `TA` (seconds).
    pub ta: f64,
    /// Gap `TB` (seconds).
    pub tb: f64,
    /// Second pulse width `TC` (seconds).
    pub tc: f64,
}

impl PulseSpec {
    /// Builds the digital stimulus trace.
    ///
    /// # Panics
    ///
    /// Panics if any interval is not positive.
    #[must_use]
    pub fn to_trace(&self) -> DigitalTrace {
        assert!(
            self.ta > 0.0 && self.tb > 0.0 && self.tc > 0.0,
            "pulse intervals must be positive"
        );
        let t1 = self.t0;
        let t2 = t1 + self.ta;
        let t3 = t2 + self.tb;
        let t4 = t3 + self.tc;
        DigitalTrace::new(Level::Low, vec![t1, t2, t3, t4]).expect("increasing by construction")
    }

    /// Total stimulus duration after `t0`.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.ta + self.tb + self.tc
    }
}

/// The systematic sweep of Sec. IV-A: `TA`, `TB`, `TC` each ranging over
/// `[min, max]` with the given step (the paper: 5 ps to 20 ps in 1 ps steps,
/// "approximately 15³ different SPICE simulation runs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseSweep {
    /// Smallest interval value (seconds).
    pub min: f64,
    /// Largest interval value (seconds).
    pub max: f64,
    /// Sweep step (seconds).
    pub step: f64,
    /// Quiet time before the first transition (seconds).
    pub t0: f64,
}

impl PulseSweep {
    /// The paper's full sweep: 5–20 ps in 1 ps steps.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            min: 5e-12,
            max: 20e-12,
            step: 1e-12,
            t0: 60e-12,
        }
    }

    /// A coarse sweep for CI-scale runs: 5–20 ps in 5 ps steps (4³ runs).
    #[must_use]
    pub fn coarse() -> Self {
        Self {
            step: 5e-12,
            ..Self::paper()
        }
    }

    /// Values one interval takes in this sweep.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        let mut v = Vec::new();
        let mut x = self.min;
        while x <= self.max + 1e-18 {
            v.push(x);
            x += self.step;
        }
        v
    }

    /// Iterates all `(TA, TB, TC)` combinations as pulse specs.
    #[must_use]
    pub fn specs(&self) -> Vec<PulseSpec> {
        let vals = self.values();
        let mut out = Vec::with_capacity(vals.len().pow(3));
        for &ta in &vals {
            for &tb in &vals {
                for &tc in &vals {
                    out.push(PulseSpec {
                        t0: self.t0,
                        ta,
                        tb,
                        tc,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_four_transitions() {
        let spec = PulseSpec {
            t0: 50e-12,
            ta: 10e-12,
            tb: 7e-12,
            tc: 12e-12,
        };
        let t = spec.to_trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.initial(), Level::Low);
        assert!((t.toggles()[3] - 79e-12).abs() < 1e-18);
        assert!((spec.duration() - 29e-12).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval() {
        let _ = PulseSpec {
            t0: 0.0,
            ta: 0.0,
            tb: 1e-12,
            tc: 1e-12,
        }
        .to_trace();
    }

    #[test]
    fn paper_sweep_is_16_cubed() {
        // 5..=20 ps at 1 ps -> 16 values ("approximately 15^3" in the text).
        let sweep = PulseSweep::paper();
        assert_eq!(sweep.values().len(), 16);
        assert_eq!(sweep.specs().len(), 16 * 16 * 16);
    }

    #[test]
    fn coarse_sweep_small() {
        let sweep = PulseSweep::coarse();
        assert_eq!(sweep.values().len(), 4);
        assert_eq!(sweep.specs().len(), 64);
    }
}
