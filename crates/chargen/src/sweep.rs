//! The full characterization sweep: chains × pulse specs → datasets
//! (Sec. IV-A's "systematically varied TA, TB and TC" flow).

use nanospice::EngineConfig;
use sigfit::FitOptions;

use crate::analog::AnalogOptions;
use crate::chain::{ChainGate, CharChain};
use crate::dataset::{Dataset, GateTag};
use crate::extract::{extract_from_pair_cell, run_chain, CharError, ExtractionStats};
use crate::pulses::PulseSweep;

/// Configuration of one characterization campaign.
#[derive(Debug, Clone)]
pub struct CharacterizationConfig {
    /// The TA/TB/TC sweep.
    pub sweep: PulseSweep,
    /// Target gates per chain (each contributes one sample set per run).
    pub chain_targets: usize,
    /// Analog translation options (shaping/termination).
    pub analog: AnalogOptions,
    /// Transient engine settings.
    pub engine: EngineConfig,
    /// Waveform fitting options.
    pub fit: FitOptions,
    /// Worker threads for the sweep (`0` = auto-detect, `1` = sequential).
    /// Each pulse spec's analog run + extraction is an independent work
    /// item, so results are identical at any setting.
    pub parallelism: usize,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            sweep: PulseSweep::coarse(),
            chain_targets: 4,
            analog: AnalogOptions::default(),
            engine: EngineConfig::default(),
            fit: FitOptions::default(),
            parallelism: sigwave::parallel::available_parallelism(),
        }
    }
}

impl CharacterizationConfig {
    /// The paper-scale configuration (16³ runs — minutes of CPU time).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            sweep: PulseSweep::paper(),
            ..Self::default()
        }
    }
}

/// Result of a characterization campaign.
#[derive(Debug, Clone)]
pub struct CharacterizationOutcome {
    /// The collected dataset.
    pub dataset: Dataset,
    /// Extraction statistics (skipped pairs = vanished pulses).
    pub stats: ExtractionStats,
    /// Number of analog runs performed.
    pub runs: usize,
}

/// Characterizes one gate variant by sweeping pulse specs through the
/// matching chain and fitting every stage boundary.
///
/// # Errors
///
/// Returns [`CharError`] if any analog run or fit fails structurally
/// (degenerate runs are skipped, not errors).
pub fn characterize(
    tag: GateTag,
    config: &CharacterizationConfig,
) -> Result<CharacterizationOutcome, CharError> {
    let (gate, fanout) = ChainGate::for_tag(tag);
    let chain = CharChain::new(gate, config.chain_targets, fanout);
    let specs = config.sweep.specs();

    // Each spec is an independent analog run + extraction; fan the sweep
    // out across the worker pool and merge in spec order so the dataset is
    // identical at any parallelism setting. Buffering cells (AND/OR) are
    // matched with same-polarity output transitions.
    let per_spec = sigwave::parallel::try_par_map(config.parallelism, &specs, |_, spec| {
        let run = run_chain(&chain, spec, &config.analog, &config.engine)?;
        let mut stats = ExtractionStats::default();
        let mut collected = Vec::new();
        for pair in run.waveforms.windows(2) {
            let s = extract_from_pair_cell(
                &pair[0],
                &pair[1],
                chain.inverting,
                &config.fit,
                &mut collected,
            )?;
            stats.samples += s.samples;
            stats.cancelled_inputs += s.cancelled_inputs;
            stats.skipped_pairs += s.skipped_pairs;
        }
        Ok::<_, CharError>((collected, stats))
    })?;

    let mut dataset = Dataset::new(tag);
    let mut stats = ExtractionStats::default();
    for (samples, s) in per_spec {
        stats.samples += s.samples;
        stats.cancelled_inputs += s.cancelled_inputs;
        stats.skipped_pairs += s.skipped_pairs;
        for sample in samples {
            dataset.push(sample);
        }
    }
    Ok(CharacterizationOutcome {
        dataset,
        stats,
        runs: specs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulses::PulseSweep;

    fn tiny_config() -> CharacterizationConfig {
        CharacterizationConfig {
            sweep: PulseSweep {
                min: 12e-12,
                max: 18e-12,
                step: 6e-12, // 2 values -> 8 runs
                t0: 60e-12,
            },
            chain_targets: 2,
            ..CharacterizationConfig::default()
        }
    }

    #[test]
    fn characterize_nor_fo1_collects_balanced_data() {
        let out = characterize(GateTag::NorFo1, &tiny_config()).unwrap();
        assert_eq!(out.runs, 8);
        // 8 runs x 2 gates x 4 transitions = up to 64 samples.
        assert!(out.dataset.len() >= 40, "got {}", out.dataset.len());
        // Both polarities must be populated (2 rising + 2 falling per run).
        assert!(!out.dataset.rising.is_empty());
        assert!(!out.dataset.falling.is_empty());
        let diff = (out.dataset.rising.len() as i64 - out.dataset.falling.len() as i64).abs();
        assert!(diff <= out.runs as i64 * 2, "polarities unbalanced");
    }

    #[test]
    fn inverter_characterization_works() {
        let out = characterize(GateTag::Inverter, &tiny_config()).unwrap();
        assert!(out.dataset.len() >= 40, "got {}", out.dataset.len());
        assert_eq!(out.dataset.gate, GateTag::Inverter);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let sequential = CharacterizationConfig {
            parallelism: 1,
            ..tiny_config()
        };
        let parallel = CharacterizationConfig {
            parallelism: 4,
            ..tiny_config()
        };
        let a = characterize(GateTag::Inverter, &sequential).unwrap();
        let b = characterize(GateTag::Inverter, &parallel).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.stats.samples, b.stats.samples);
        assert_eq!(a.dataset.rising, b.dataset.rising);
        assert_eq!(a.dataset.falling, b.dataset.falling);
    }

    #[test]
    fn nand_characterization_is_inverting() {
        let out = characterize(GateTag::NandFo1, &tiny_config()).unwrap();
        assert!(out.dataset.len() >= 40, "got {}", out.dataset.len());
        assert_eq!(out.dataset.gate, GateTag::NandFo1);
        for s in out.dataset.rising.iter().chain(&out.dataset.falling) {
            assert!(s.delay > 0.0, "negative delay {s:?}");
            assert!(s.a_in * s.a_out < 0.0, "NAND must invert: {s:?}");
        }
    }

    #[test]
    fn and_or_characterization_is_buffering() {
        for tag in [GateTag::AndFo1, GateTag::OrFo2] {
            let out = characterize(tag, &tiny_config()).unwrap();
            assert!(out.dataset.len() >= 40, "{tag}: got {}", out.dataset.len());
            for s in out.dataset.rising.iter().chain(&out.dataset.falling) {
                assert!(s.delay > 0.0, "{tag}: negative delay {s:?}");
                assert!(
                    s.a_in * s.a_out > 0.0,
                    "{tag} must preserve polarity: {s:?}"
                );
            }
        }
    }

    #[test]
    fn delays_positive_and_slopes_signed() {
        let out = characterize(GateTag::NorFo1, &tiny_config()).unwrap();
        for s in out.dataset.rising.iter().chain(&out.dataset.falling) {
            assert!(s.delay > 0.0, "negative delay {s:?}");
            // Rising input -> falling output for the relevant-input NOR.
            assert!(
                s.a_in * s.a_out < 0.0,
                "inverting gate polarities violated {s:?}"
            );
        }
    }
}
