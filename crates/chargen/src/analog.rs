//! Translating gate-level circuits into transistor-level analog networks,
//! with the paper's pulse-shaping and termination augmentation (Sec. IV-A,
//! V-B: "the SPICE circuits were augmented by pulse-shaping at the inputs
//! and termination at the outputs").

use std::collections::HashMap;

use nanospice::{GateParams, Network, NetworkBuilder, NodeRef, Stimulus};
use sigcircuit::{Circuit, GateKind, NetId};
use sigwave::Level;

/// Options for [`build_analog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogOptions {
    /// Gate electrical parameters.
    pub gate: GateParams,
    /// Extra wire capacitance added to every gate output net (farads).
    pub wire_cap: f64,
    /// Per-net interconnect variation in `[0, 1)`: each gate output's wire
    /// capacitance is scaled by `1 + variation · h(net)` with a
    /// deterministic hash `h(net) ∈ [-1, 1]`. This models the
    /// instance-specific interconnect the paper's benchmark circuits have
    /// (and the signoff extraction feeds to ModelSim); characterization
    /// chains keep it at 0 (nominal interconnect, Sec. V-B).
    pub wire_cap_variation: f64,
    /// Number of shaping inverter stages inserted between each raw source
    /// and the circuit input net (even, to preserve polarity).
    pub shaping_stages: usize,
    /// Number of termination inverter stages loading each primary output.
    pub termination_stages: usize,
}

impl Default for AnalogOptions {
    fn default() -> Self {
        Self {
            gate: GateParams::default_15nm(),
            wire_cap: 0.05e-15,
            wire_cap_variation: 0.0,
            shaping_stages: 2,
            termination_stages: 2,
        }
    }
}

/// The deterministic per-net wire-capacitance multiplier used by
/// [`build_analog`] (and by the delay extraction of the digital baseline,
/// which — like real signoff extraction — knows the instance parasitics).
#[must_use]
pub fn wire_cap_multiplier(net_name: &str, variation: f64) -> f64 {
    if variation == 0.0 {
        return 1.0;
    }
    // FNV-1a with a murmur-style finalizer (FNV alone mixes its high bits
    // poorly for short strings), folded into [-1, 1].
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in net_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + variation * (2.0 * unit - 1.0)
}

/// Error translating a circuit into an analog network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildAnalogError {
    /// A primary input has no stimulus.
    MissingStimulus {
        /// Input net name.
        net: String,
    },
    /// A gate kind is not realizable at transistor level by this
    /// translator (INV, NOR up to 3 inputs, and the native two-input
    /// NAND/AND/OR cells; XOR/XNOR must be decomposed first).
    UnsupportedGate {
        /// The offending gate kind.
        kind: GateKind,
        /// Its arity.
        arity: usize,
    },
    /// No initial input levels were provided for DC initialization.
    MissingInitialLevel {
        /// Input net name.
        net: String,
    },
}

impl std::fmt::Display for BuildAnalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingStimulus { net } => write!(f, "no stimulus for input {net:?}"),
            Self::UnsupportedGate { kind, arity } => {
                write!(f, "gate {kind} with {arity} inputs has no transistor model")
            }
            Self::MissingInitialLevel { net } => {
                write!(f, "no initial level for input {net:?}")
            }
        }
    }
}

impl std::error::Error for BuildAnalogError {}

/// The analog realization of a gate-level circuit.
#[derive(Debug)]
pub struct AnalogCircuit {
    /// The transistor-level network.
    pub network: Network,
    /// Analog node name of each circuit net (`NetId`-indexed). For primary
    /// inputs with shaping this is the *shaped* net actually entering the
    /// circuit (probe this to know what the gates saw).
    pub net_nodes: Vec<String>,
}

impl AnalogCircuit {
    /// The probe name of a circuit net.
    #[must_use]
    pub fn probe_name(&self, net: NetId) -> &str {
        &self.net_nodes[net.0]
    }
}

/// Builds the transistor-level network of `circuit`.
///
/// `stimuli` provides a voltage source per primary input; `initial_levels`
/// gives the DC starting level of every input so that internal nodes can be
/// initialized consistently (the circuit is assumed settled at `t = 0`).
///
/// # Errors
///
/// Returns [`BuildAnalogError`] for missing stimuli/levels or gates
/// outside the realizable set (INV, NOR1–3, NAND2, AND2, OR2).
pub fn build_analog(
    circuit: &Circuit,
    stimuli: HashMap<NetId, Box<dyn Stimulus>>,
    initial_levels: &HashMap<NetId, Level>,
    options: &AnalogOptions,
) -> Result<AnalogCircuit, BuildAnalogError> {
    let vdd = 0.8; // The characterization point of the whole reproduction.
    let mut b = NetworkBuilder::new(vdd);
    let mut node_of: Vec<Option<NodeRef>> = vec![None; circuit.net_count()];
    let mut net_nodes: Vec<String> = (0..circuit.net_count())
        .map(|i| circuit.net_name(NetId(i)).to_string())
        .collect();

    // Compute settled boolean levels of all nets for initialization.
    let input_bits: Vec<bool> = circuit
        .inputs()
        .iter()
        .map(|i| {
            initial_levels.get(i).map(|l| l.is_high()).ok_or_else(|| {
                BuildAnalogError::MissingInitialLevel {
                    net: circuit.net_name(*i).to_string(),
                }
            })
        })
        .collect::<Result<_, _>>()?;
    let levels = settled_levels(circuit, &input_bits);

    // Sources (+ shaping chains).
    let mut stimuli = stimuli;
    for &input in circuit.inputs() {
        let name = circuit.net_name(input).to_string();
        let stim = stimuli
            .remove(&input)
            .ok_or_else(|| BuildAnalogError::MissingStimulus { net: name.clone() })?;
        let src = b.add_source(&format!("{name}__src"), BoxedStimulus(stim));
        let mut prev = src;
        let high = levels[input.0];
        for s in 0..options.shaping_stages {
            // Polarity at this stage: even stages carry the input value.
            let stage_high = if s % 2 == 0 { !high } else { high };
            let node = b.add_state(
                &format!("{name}__shape{s}"),
                if stage_high { vdd } else { 0.0 },
            );
            b.add_inverter(prev, node, &options.gate);
            b.add_cap(node, options.wire_cap);
            prev = node;
        }
        if options.shaping_stages == 0 {
            node_of[input.0] = Some(src);
        } else {
            node_of[input.0] = Some(prev);
            // The shaped net is the one the circuit (and the comparison
            // harness) observes.
            net_nodes[input.0] = format!("{name}__shape{}", options.shaping_stages - 1);
        }
    }

    // Gates in topological order.
    for &gi in circuit.topological_gates() {
        let gate = &circuit.gates()[gi];
        let out_name = circuit.net_name(gate.output).to_string();
        let v0 = if levels[gate.output.0] { vdd } else { 0.0 };
        let out = b.add_state(&out_name, v0);
        b.add_cap(
            out,
            options.wire_cap * wire_cap_multiplier(&out_name, options.wire_cap_variation),
        );
        let ins: Vec<NodeRef> = gate
            .inputs
            .iter()
            .map(|i| node_of[i.0].expect("topological order"))
            .collect();
        match (gate.kind, ins.len()) {
            (GateKind::Inv, 1) | (GateKind::Nor, 1) => {
                b.add_inverter(ins[0], out, &options.gate);
            }
            (GateKind::Nor, 2) => {
                let mid = b.add_nor2(ins[0], ins[1], out, &options.gate);
                // Initialize the stack node consistently: it sits at VDD
                // unless the top PMOS is off and the path discharged.
                let _ = mid;
            }
            (GateKind::Nor, 3) => {
                let _ = b.add_nor3(ins[0], ins[1], ins[2], out, &options.gate);
            }
            (GateKind::Nand, 2) => {
                let _ = b.add_nand2(ins[0], ins[1], out, &options.gate);
            }
            (GateKind::And, 2) | (GateKind::Or, 2) => {
                // Compound standard cells: NAND/NOR stage plus an output
                // inverter sharing one internal node (no wire capacitance
                // there — it is inside the cell, not interconnect).
                let inner_name = format!("{out_name}__cell_mid");
                let inner_high = !levels[gate.output.0];
                let inner = b.add_state(&inner_name, if inner_high { vdd } else { 0.0 });
                if gate.kind == GateKind::And {
                    let _ = b.add_nand2(ins[0], ins[1], inner, &options.gate);
                } else {
                    let _ = b.add_nor2(ins[0], ins[1], inner, &options.gate);
                }
                b.add_inverter(inner, out, &options.gate);
            }
            (kind, arity) => {
                return Err(BuildAnalogError::UnsupportedGate { kind, arity });
            }
        }
        node_of[gate.output.0] = Some(out);
    }

    // Termination stages on primary outputs.
    for &output in circuit.outputs() {
        let node = node_of[output.0].expect("outputs driven");
        let name = circuit.net_name(output).to_string();
        let mut prev = node;
        let mut high = levels[output.0];
        for s in 0..options.termination_stages {
            high = !high;
            let t = b.add_state(&format!("{name}__term{s}"), if high { vdd } else { 0.0 });
            b.add_inverter(prev, t, &options.gate);
            b.add_cap(t, options.wire_cap);
            prev = t;
        }
    }

    Ok(AnalogCircuit {
        network: b.build(),
        net_nodes,
    })
}

/// Boolean levels of all nets for a settled input assignment.
fn settled_levels(circuit: &Circuit, input_bits: &[bool]) -> Vec<bool> {
    let mut levels = vec![false; circuit.net_count()];
    for (net, &v) in circuit.inputs().iter().zip(input_bits) {
        levels[net.0] = v;
    }
    for &gi in circuit.topological_gates() {
        let g = &circuit.gates()[gi];
        let bits: Vec<bool> = g.inputs.iter().map(|i| levels[i.0]).collect();
        levels[g.output.0] = g.kind.eval(&bits);
    }
    levels
}

/// Newtype making a boxed stimulus usable where `impl Stimulus` is needed.
struct BoxedStimulus(Box<dyn Stimulus>);

impl Stimulus for BoxedStimulus {
    fn voltage(&self, t: f64) -> f64 {
        self.0.voltage(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanospice::{Dc, Engine, Pwl};
    use sigcircuit::CircuitBuilder;
    use sigwave::DigitalTrace;

    fn nor_only_c17() -> Circuit {
        sigcircuit::to_nor_only(&sigcircuit::c17(), sigcircuit::NorMappingOptions::default())
    }

    #[test]
    fn c17_settles_to_boolean_levels() {
        let c = nor_only_c17();
        let mut stimuli: HashMap<NetId, Box<dyn Stimulus>> = HashMap::new();
        let mut init = HashMap::new();
        for &i in c.inputs() {
            stimuli.insert(i, Box::new(Dc(0.0)));
            init.insert(i, Level::Low);
        }
        let analog = build_analog(&c, stimuli, &init, &AnalogOptions::default()).unwrap();
        let probes: Vec<&str> = c.outputs().iter().map(|o| analog.probe_name(*o)).collect();
        let res = Engine::default()
            .run(&analog.network, 0.0, 1.5e-10, &probes)
            .unwrap();
        let expect = c.eval(&vec![false; c.inputs().len()]);
        for (o, e) in c.outputs().iter().zip(expect) {
            let v = res
                .waveform(analog.probe_name(*o))
                .unwrap()
                .value_at(1.5e-10);
            let target = if e { 0.8 } else { 0.0 };
            assert!(
                (v - target).abs() < 0.05,
                "output {} settled to {v}, expected {target}",
                c.net_name(*o)
            );
        }
    }

    #[test]
    fn shaped_input_is_realistic() {
        // A single inverter with shaping: the shaped input must have a
        // finite slope (tens of fs at least), unlike the raw 1 ps ramp.
        let mut cb = CircuitBuilder::new();
        let a = cb.add_input("a");
        let y = cb.add_gate(GateKind::Inv, &[a], "y");
        cb.mark_output(y);
        let c = cb.build().unwrap();

        let step = DigitalTrace::new(Level::Low, vec![60e-12]).unwrap();
        let mut stimuli: HashMap<NetId, Box<dyn Stimulus>> = HashMap::new();
        stimuli.insert(a, Box::new(Pwl::heaviside_train(&step, 0.8, 0.5e-12)));
        let mut init = HashMap::new();
        init.insert(a, Level::Low);
        let analog = build_analog(&c, stimuli, &init, &AnalogOptions::default()).unwrap();
        let shaped = analog.probe_name(a).to_string();
        let res = Engine::default()
            .run(&analog.network, 0.0, 2e-10, &[&shaped])
            .unwrap();
        let w = res.waveform(&shaped).unwrap();
        // 20%..80% duration of the shaped edge.
        let c20 = w.crossings(0.8 * 0.2);
        let c80 = w.crossings(0.8 * 0.8);
        assert_eq!(c20.len(), 1);
        assert_eq!(c80.len(), 1);
        let rise = (c80[0].0 - c20[0].0).abs();
        assert!(
            rise > 1.5e-12,
            "shaped edge too sharp ({rise:.2e}s), shaping ineffective"
        );
    }

    #[test]
    fn wire_cap_multiplier_deterministic_and_bounded() {
        for name in ["n1", "some_net", "__nor2_mid_17", ""] {
            let a = wire_cap_multiplier(name, 0.4);
            let b = wire_cap_multiplier(name, 0.4);
            assert_eq!(a, b, "must be deterministic");
            assert!((0.6..=1.4).contains(&a), "{name}: {a}");
        }
        // Zero variation is exactly 1 for every net.
        assert_eq!(wire_cap_multiplier("anything", 0.0), 1.0);
        // Different nets spread out (not all identical).
        let m1 = wire_cap_multiplier("net_a", 0.5);
        let m2 = wire_cap_multiplier("net_b", 0.5);
        assert!((m1 - m2).abs() > 1e-6);
    }

    #[test]
    fn missing_stimulus_rejected() {
        let c = nor_only_c17();
        let init: HashMap<NetId, Level> = c.inputs().iter().map(|&i| (i, Level::Low)).collect();
        let err = build_analog(&c, HashMap::new(), &init, &AnalogOptions::default()).unwrap_err();
        assert!(matches!(err, BuildAnalogError::MissingStimulus { .. }));
    }

    #[test]
    fn unsupported_gate_rejected() {
        let mut cb = CircuitBuilder::new();
        let a = cb.add_input("a");
        let b2 = cb.add_input("b");
        let y = cb.add_gate(GateKind::Xor, &[a, b2], "y");
        cb.mark_output(y);
        let c = cb.build().unwrap();
        let mut stimuli: HashMap<NetId, Box<dyn Stimulus>> = HashMap::new();
        let mut init = HashMap::new();
        for &i in c.inputs() {
            stimuli.insert(i, Box::new(Dc(0.0)));
            init.insert(i, Level::Low);
        }
        let err = build_analog(&c, stimuli, &init, &AnalogOptions::default()).unwrap_err();
        assert!(matches!(err, BuildAnalogError::UnsupportedGate { .. }));
    }
}
