//! Transfer-function training data: `(T, a_in, a_prev_out) → (a_out, delay)`
//! tuples (Eq. 3 of the paper), grouped by input polarity.

use serde::{Deserialize, Serialize};

/// The clamp applied to the history interval `T = b_in − b_prev_out` in
/// scaled time units (100 ps): a previous output transition further in the
/// past than this has no measurable influence (Sec. III), and the very
/// first transition of a trace uses the dummy predecessor `(s, −∞)`, which
/// is represented by exactly this value.
pub const T_FAR: f64 = 3.0;

/// The fixed slope magnitude `s` of the dummy initial transition in
/// Algorithm 1 (scaled units; the polarity is set from the circuit's
/// initial conditions).
pub const DUMMY_SLOPE: f64 = 25.0;

/// One training sample of the TOM transfer function (Eq. 3): all times in
/// scaled units (`t · 10^10`), slopes in the units of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferSample {
    /// History interval `T = b_in − b_prev_out`, clamped to [`T_FAR`].
    pub t: f64,
    /// Slope of the current input transition (sign = polarity).
    pub a_in: f64,
    /// Slope of the previous output transition.
    pub a_prev_out: f64,
    /// Target: slope of the produced output transition.
    pub a_out: f64,
    /// Target: input-to-output delay `b_out − b_in` (scaled units).
    pub delay: f64,
}

impl TransferSample {
    /// The three-feature input vector of the transfer ANNs.
    #[must_use]
    pub fn features(&self) -> [f64; 3] {
        [self.t, self.a_in, self.a_prev_out]
    }
}

/// Which cell variant a dataset characterizes: one `(cell, fan-out
/// class)` pair per trained transfer function. The paper trains the first
/// four (inverter and NOR at fan-out 1/2); the NAND/AND/OR variants are
/// the native multi-cell extension (the paper's "ANNs for elementary
/// gates" future-work direction), so `.bench` netlists can be simulated
/// without NOR-only technology mapping.
///
/// The legacy four variants keep their serialized names, so model caches
/// written before the native cells existed still deserialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateTag {
    /// Inverter (or single-input NOR) driving one load.
    Inverter,
    /// Inverter driving two or more loads (an extension the paper lists as
    /// future work: "ANNs for elementary gates with arbitrary fan-out").
    InverterFo2,
    /// Two-input NOR driving one load.
    NorFo1,
    /// Two-input NOR driving two or more loads.
    NorFo2,
    /// Two-input NAND driving one load.
    NandFo1,
    /// Two-input NAND driving two or more loads.
    NandFo2,
    /// Two-input AND (NAND + output inverter cell) driving one load.
    AndFo1,
    /// Two-input AND driving two or more loads.
    AndFo2,
    /// Two-input OR (NOR + output inverter cell) driving one load.
    OrFo1,
    /// Two-input OR driving two or more loads.
    OrFo2,
}

impl GateTag {
    /// Every characterizable cell variant, inverter first (the order the
    /// native library trains in).
    pub const ALL: [GateTag; 10] = [
        GateTag::Inverter,
        GateTag::InverterFo2,
        GateTag::NorFo1,
        GateTag::NorFo2,
        GateTag::NandFo1,
        GateTag::NandFo2,
        GateTag::AndFo1,
        GateTag::AndFo2,
        GateTag::OrFo1,
        GateTag::OrFo2,
    ];

    /// The fan-out the characterization chain drives per target (1 or 2;
    /// the FO2 model stands in for every fan-out ≥ 2, like the paper's).
    #[must_use]
    pub fn fanout(self) -> usize {
        match self {
            GateTag::Inverter
            | GateTag::NorFo1
            | GateTag::NandFo1
            | GateTag::AndFo1
            | GateTag::OrFo1 => 1,
            _ => 2,
        }
    }

    /// `true` for cells whose output transition has the opposite polarity
    /// of the relevant input transition (INV, NOR, NAND); `false` for the
    /// buffering compound cells (AND, OR). Characterization samples and
    /// Algorithm 1's dummy predecessor both depend on this.
    #[must_use]
    pub fn inverting(self) -> bool {
        !matches!(
            self,
            GateTag::AndFo1 | GateTag::AndFo2 | GateTag::OrFo1 | GateTag::OrFo2
        )
    }

    /// The same cell at the other fan-out class.
    #[must_use]
    pub fn with_fanout(self, fanout: usize) -> Self {
        let fo2 = fanout >= 2;
        match self {
            GateTag::Inverter | GateTag::InverterFo2 => {
                if fo2 {
                    GateTag::InverterFo2
                } else {
                    GateTag::Inverter
                }
            }
            GateTag::NorFo1 | GateTag::NorFo2 => {
                if fo2 {
                    GateTag::NorFo2
                } else {
                    GateTag::NorFo1
                }
            }
            GateTag::NandFo1 | GateTag::NandFo2 => {
                if fo2 {
                    GateTag::NandFo2
                } else {
                    GateTag::NandFo1
                }
            }
            GateTag::AndFo1 | GateTag::AndFo2 => {
                if fo2 {
                    GateTag::AndFo2
                } else {
                    GateTag::AndFo1
                }
            }
            GateTag::OrFo1 | GateTag::OrFo2 => {
                if fo2 {
                    GateTag::OrFo2
                } else {
                    GateTag::OrFo1
                }
            }
        }
    }
}

impl std::fmt::Display for GateTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateTag::Inverter => write!(f, "INV"),
            GateTag::InverterFo2 => write!(f, "INV/FO2"),
            GateTag::NorFo1 => write!(f, "NOR/FO1"),
            GateTag::NorFo2 => write!(f, "NOR/FO2"),
            GateTag::NandFo1 => write!(f, "NAND/FO1"),
            GateTag::NandFo2 => write!(f, "NAND/FO2"),
            GateTag::AndFo1 => write!(f, "AND/FO1"),
            GateTag::AndFo2 => write!(f, "AND/FO2"),
            GateTag::OrFo1 => write!(f, "OR/FO1"),
            GateTag::OrFo2 => write!(f, "OR/FO2"),
        }
    }
}

/// A characterization dataset for one gate variant, split by current-input
/// polarity exactly as the transfer function is split into `F↑` and `F↓`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The gate variant this data characterizes.
    pub gate: GateTag,
    /// Samples with rising input transitions (`a_in > 0`, used for `F↑`).
    pub rising: Vec<TransferSample>,
    /// Samples with falling input transitions (`a_in < 0`, used for `F↓`).
    pub falling: Vec<TransferSample>,
}

impl Dataset {
    /// An empty dataset for a gate variant.
    #[must_use]
    pub fn new(gate: GateTag) -> Self {
        Self {
            gate,
            rising: Vec::new(),
            falling: Vec::new(),
        }
    }

    /// Adds a sample to the polarity-appropriate half.
    ///
    /// # Panics
    ///
    /// Panics if the sample has a zero input slope or non-finite fields.
    pub fn push(&mut self, sample: TransferSample) {
        assert!(
            sample.a_in != 0.0
                && sample.t.is_finite()
                && sample.a_in.is_finite()
                && sample.a_prev_out.is_finite()
                && sample.a_out.is_finite()
                && sample.delay.is_finite(),
            "invalid sample {sample:?}"
        );
        if sample.a_in > 0.0 {
            self.rising.push(sample);
        } else {
            self.falling.push(sample);
        }
    }

    /// Total sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rising.len() + self.falling.len()
    }

    /// `true` if no samples were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rising.is_empty() && self.falling.is_empty()
    }

    /// Merges another dataset of the same gate variant into this one.
    ///
    /// # Panics
    ///
    /// Panics if the gate tags differ.
    pub fn merge(&mut self, other: Dataset) {
        assert_eq!(self.gate, other.gate, "cannot merge across gate variants");
        self.rising.extend(other.rising);
        self.falling.extend(other.falling);
    }

    /// Deterministic train/validation split (fraction in `(0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = |v: &[TransferSample]| {
            // Interleaved split: every k-th sample goes to validation, so
            // both halves cover the whole sweep range.
            let k = (1.0 / (1.0 - train_fraction)).round().max(2.0) as usize;
            let mut train = Vec::new();
            let mut val = Vec::new();
            for (i, s) in v.iter().enumerate() {
                if i % k == k - 1 {
                    val.push(*s);
                } else {
                    train.push(*s);
                }
            }
            (train, val)
        };
        let (rt, rv) = cut(&self.rising);
        let (ft, fv) = cut(&self.falling);
        (
            Dataset {
                gate: self.gate,
                rising: rt,
                falling: ft,
            },
            Dataset {
                gate: self.gate,
                rising: rv,
                falling: fv,
            },
        )
    }

    /// Serializes to JSON (the on-disk characterization artifact).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(a_in: f64) -> TransferSample {
        TransferSample {
            t: 1.0,
            a_in,
            a_prev_out: -10.0,
            a_out: 12.0,
            delay: 0.05,
        }
    }

    #[test]
    fn push_routes_by_polarity() {
        let mut d = Dataset::new(GateTag::NorFo1);
        d.push(sample(5.0));
        d.push(sample(-5.0));
        d.push(sample(7.0));
        assert_eq!(d.rising.len(), 2);
        assert_eq!(d.falling.len(), 1);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid sample")]
    fn rejects_nan() {
        let mut d = Dataset::new(GateTag::Inverter);
        d.push(TransferSample {
            t: f64::NAN,
            ..sample(1.0)
        });
    }

    #[test]
    fn split_is_disjoint_and_covering() {
        let mut d = Dataset::new(GateTag::NorFo2);
        for i in 0..100 {
            d.push(TransferSample {
                t: i as f64,
                ..sample(if i % 2 == 0 { 3.0 } else { -3.0 })
            });
        }
        let (train, val) = d.split(0.8);
        assert_eq!(train.len() + val.len(), d.len());
        assert!(val.len() >= 15 && val.len() <= 25, "val {}", val.len());
    }

    #[test]
    fn merge_same_tag() {
        let mut a = Dataset::new(GateTag::Inverter);
        a.push(sample(1.0));
        let mut b = Dataset::new(GateTag::Inverter);
        b.push(sample(-1.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "across gate variants")]
    fn merge_rejects_mixed_tags() {
        let mut a = Dataset::new(GateTag::Inverter);
        a.merge(Dataset::new(GateTag::NorFo1));
    }

    #[test]
    fn json_round_trip() {
        let mut d = Dataset::new(GateTag::NorFo1);
        d.push(sample(2.0));
        let j = d.to_json().unwrap();
        let back = Dataset::from_json(&j).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn features_order() {
        let s = sample(4.0);
        assert_eq!(s.features(), [1.0, 4.0, -10.0]);
    }
}
