//! Gate characterization: training-data generation for TOM transfer
//! functions (Sec. IV-A of the paper).
//!
//! The flow mirrors the paper exactly:
//!
//! 1. [`CharChain`] builds the Fig. 3 chains — pulse shaping, identical
//!    target gates `G1 … GN`, termination — for inverters and NOR gates at
//!    fan-out 1 and 2.
//! 2. [`PulseSweep`] enumerates the Fig. 4 stimulus family: four Heaviside
//!    transitions governed by `TA`, `TB`, `TC` (the paper sweeps 5–20 ps in
//!    1 ps steps; [`PulseSweep::coarse`] is a CI-friendly subset).
//! 3. [`run_chain`] simulates the chain in the analog substrate and records
//!    every stage boundary waveform.
//! 4. [`extract_from_pair`] fits sigmoids to each input/output waveform
//!    pair and emits [`TransferSample`]s `(T, a_in, a_prev_out) → (a_out,
//!    delay)` into a [`Dataset`].
//! 5. [`characterize`] drives the whole campaign for one [`GateTag`].
//!
//! [`DelayTable`]/[`measure_nor_delays`] additionally extract classic
//! rise/fall delays per fan-out from the same substrate — the delays the
//! digital ("ModelSim") baseline consumes, standing in for the paper's
//! Genus/Innovus extraction.
//!
//! [`build_analog`] is the shared gate-level → transistor-level translator,
//! also used by the comparison harness for the benchmark circuits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analog;
mod chain;
mod dataset;
mod delays;
mod extract;
mod pulses;
mod sweep;

pub use analog::{
    build_analog, wire_cap_multiplier, AnalogCircuit, AnalogOptions, BuildAnalogError,
};
pub use chain::{ChainGate, CharChain};
pub use dataset::{Dataset, GateTag, TransferSample, DUMMY_SLOPE, T_FAR};
pub use delays::{
    measure_gate_delays, measure_nor_delays, measure_nor_delays_loaded, DelayTable, GateDelays,
    LEGACY_DELAY_CELLS, NATIVE_DELAY_CELLS,
};
pub use extract::{
    extract_from_pair, extract_from_pair_cell, extract_from_traces, extract_from_traces_cell,
    run_chain, ChainRun, CharError, ExtractionStats,
};
pub use pulses::{PulseSpec, PulseSweep};
pub use sweep::{characterize, CharacterizationConfig, CharacterizationOutcome};
