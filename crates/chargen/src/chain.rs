//! Characterization chains (Fig. 3): pulse-shaping stages, identical target
//! gates `G1 … GN`, and termination, with configurable fan-out.

use sigcircuit::{Circuit, CircuitBuilder, GateKind, NetId};

/// Which elementary gate a chain characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainGate {
    /// Inverters (single-input NOR).
    Inverter,
    /// Two-input NOR with the second input tied to GND (the configuration
    /// in which the relevant-input transfer function is observed).
    Nor,
}

/// A characterization chain: the gate-level circuit plus bookkeeping about
/// which nets are the observed stage boundaries.
#[derive(Debug, Clone)]
pub struct CharChain {
    /// The chain circuit (shaping and termination are added later by the
    /// analog translator, exactly like for the benchmark circuits).
    pub circuit: Circuit,
    /// The driven primary input.
    pub input: NetId,
    /// The tie-low auxiliary input (present only for NOR chains).
    pub tie: Option<NetId>,
    /// Stage boundary nets: `stage_nets[0]` is the chain input (after
    /// shaping, when probed through the analog translator) and
    /// `stage_nets[i]` is the output of target gate `Gi`.
    pub stage_nets: Vec<NetId>,
    /// The fan-out each target gate drives.
    pub fanout: usize,
}

impl CharChain {
    /// Builds a chain of `targets` identical gates, each driving `fanout`
    /// loads (one being the next stage, the rest dummy gates), mirroring
    /// the paper's FO1/FO2 characterization circuits.
    ///
    /// # Panics
    ///
    /// Panics if `targets == 0` or `fanout == 0`.
    #[must_use]
    pub fn new(gate: ChainGate, targets: usize, fanout: usize) -> Self {
        assert!(targets > 0, "need at least one target gate");
        assert!(fanout > 0, "fan-out must be at least 1");
        let mut b = CircuitBuilder::new();
        let input = b.add_input("stim");
        let tie = match gate {
            ChainGate::Nor => Some(b.add_input("tie")),
            ChainGate::Inverter => None,
        };
        let mut stage_nets = vec![input];
        let mut prev = input;
        for i in 0..targets {
            let out = match gate {
                ChainGate::Inverter => b.add_gate(GateKind::Nor, &[prev], &format!("g{}", i + 1)),
                ChainGate::Nor => b.add_gate(
                    GateKind::Nor,
                    &[prev, tie.expect("nor chains have a tie input")],
                    &format!("g{}", i + 1),
                ),
            };
            // Dummy loads for fan-out > 1.
            for l in 1..fanout {
                match gate {
                    ChainGate::Inverter => {
                        let _ = b.add_gate(GateKind::Nor, &[out], &format!("g{}_load{l}", i + 1));
                    }
                    ChainGate::Nor => {
                        let _ = b.add_gate(
                            GateKind::Nor,
                            &[out, tie.expect("nor")],
                            &format!("g{}_load{l}", i + 1),
                        );
                    }
                }
            }
            stage_nets.push(out);
            prev = out;
        }
        // The last stage output is the primary output (the analog
        // translator hangs the termination stages off it).
        b.mark_output(prev);
        let circuit = b.build().expect("chains are structurally valid");
        Self {
            circuit,
            input,
            tie,
            stage_nets,
            fanout,
        }
    }

    /// Number of target gates.
    #[must_use]
    pub fn targets(&self) -> usize {
        self.stage_nets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_chain_structure() {
        let c = CharChain::new(ChainGate::Inverter, 4, 1);
        assert_eq!(c.targets(), 4);
        assert_eq!(c.circuit.gates().len(), 4);
        assert!(c.tie.is_none());
        // Chain of 4 inverters: identity function.
        assert_eq!(c.circuit.eval(&[false]), vec![false]);
        assert_eq!(c.circuit.eval(&[true]), vec![true]);
    }

    #[test]
    fn nor_chain_acts_as_inverter_chain_when_tied_low() {
        let c = CharChain::new(ChainGate::Nor, 3, 1);
        assert_eq!(c.circuit.gates().len(), 3);
        // inputs: [stim, tie]
        assert_eq!(c.circuit.eval(&[false, false]), vec![true]);
        assert_eq!(c.circuit.eval(&[true, false]), vec![false]);
        // Tie high forces all outputs low regardless.
        assert_eq!(c.circuit.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn fanout_adds_dummy_loads() {
        let fo1 = CharChain::new(ChainGate::Nor, 3, 1);
        let fo2 = CharChain::new(ChainGate::Nor, 3, 2);
        assert_eq!(fo2.circuit.gates().len(), fo1.circuit.gates().len() + 3);
        // Each target net now feeds 2 gate inputs.
        let fo = fo2.circuit.fanout_counts();
        for &net in &fo2.stage_nets[1..fo2.stage_nets.len() - 1] {
            assert_eq!(fo[net.0], 2, "stage net should drive 2 loads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_targets_rejected() {
        let _ = CharChain::new(ChainGate::Nor, 0, 1);
    }
}
