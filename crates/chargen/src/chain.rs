//! Characterization chains (Fig. 3): pulse-shaping stages, identical target
//! gates `G1 … GN`, and termination, with configurable fan-out.
//!
//! Each supported cell is characterized in the configuration in which its
//! relevant-input transfer function is observed: the auxiliary ("tie")
//! input is held at the cell's non-controlling level, so every stimulus
//! transition on the relevant input propagates. NOR/OR chains tie low,
//! NAND/AND chains tie high; under that tie NOR and NAND act as inverter
//! chains, AND and OR as buffer chains.

use sigcircuit::{Circuit, CircuitBuilder, GateKind, NetId};
use sigwave::Level;

/// Which elementary cell a chain characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainGate {
    /// Inverters (single-input NOR).
    Inverter,
    /// Two-input NOR with the second input tied to GND (the configuration
    /// in which the relevant-input transfer function is observed).
    Nor,
    /// Two-input NAND with the second input tied to VDD.
    Nand,
    /// Two-input AND (NAND + inverter cell) with the second input tied to
    /// VDD — a buffering (non-inverting) chain.
    And,
    /// Two-input OR (NOR + inverter cell) with the second input tied to
    /// GND — a buffering (non-inverting) chain.
    Or,
}

impl ChainGate {
    /// The netlist gate kind of the chain's target cells.
    #[must_use]
    pub fn kind(self) -> GateKind {
        match self {
            ChainGate::Inverter => GateKind::Nor, // 1-input NOR = inverter
            ChainGate::Nor => GateKind::Nor,
            ChainGate::Nand => GateKind::Nand,
            ChainGate::And => GateKind::And,
            ChainGate::Or => GateKind::Or,
        }
    }

    /// The level the auxiliary input is tied to so the relevant input
    /// controls the output (the cell's non-controlling value).
    #[must_use]
    pub fn tie_level(self) -> Level {
        match self {
            ChainGate::Inverter | ChainGate::Nor | ChainGate::Or => Level::Low,
            ChainGate::Nand | ChainGate::And => Level::High,
        }
    }

    /// `true` when, with the tie at its non-controlling level, the cell
    /// inverts the relevant input (INV/NOR/NAND); `false` for the
    /// buffering AND/OR cells. Drives the polarity convention of sample
    /// extraction.
    #[must_use]
    pub fn inverting(self) -> bool {
        matches!(self, ChainGate::Inverter | ChainGate::Nor | ChainGate::Nand)
    }

    /// The chain configuration characterizing a [`crate::GateTag`].
    #[must_use]
    pub fn for_tag(tag: crate::GateTag) -> (ChainGate, usize) {
        use crate::GateTag;
        let gate = match tag {
            GateTag::Inverter | GateTag::InverterFo2 => ChainGate::Inverter,
            GateTag::NorFo1 | GateTag::NorFo2 => ChainGate::Nor,
            GateTag::NandFo1 | GateTag::NandFo2 => ChainGate::Nand,
            GateTag::AndFo1 | GateTag::AndFo2 => ChainGate::And,
            GateTag::OrFo1 | GateTag::OrFo2 => ChainGate::Or,
        };
        (gate, tag.fanout())
    }
}

/// A characterization chain: the gate-level circuit plus bookkeeping about
/// which nets are the observed stage boundaries.
#[derive(Debug, Clone)]
pub struct CharChain {
    /// The chain circuit (shaping and termination are added later by the
    /// analog translator, exactly like for the benchmark circuits).
    pub circuit: Circuit,
    /// The driven primary input.
    pub input: NetId,
    /// The auxiliary input tied at [`CharChain::tie_level`] (present for
    /// every two-input chain; `None` for inverter chains).
    pub tie: Option<NetId>,
    /// The level the tie input is held at.
    pub tie_level: Level,
    /// `true` when each target stage inverts its relevant input (see
    /// [`ChainGate::inverting`]).
    pub inverting: bool,
    /// Stage boundary nets: `stage_nets[0]` is the chain input (after
    /// shaping, when probed through the analog translator) and
    /// `stage_nets[i]` is the output of target gate `Gi`.
    pub stage_nets: Vec<NetId>,
    /// The fan-out each target gate drives.
    pub fanout: usize,
}

impl CharChain {
    /// Builds a chain of `targets` identical gates, each driving `fanout`
    /// loads (one being the next stage, the rest dummy gates), mirroring
    /// the paper's FO1/FO2 characterization circuits.
    ///
    /// # Panics
    ///
    /// Panics if `targets == 0` or `fanout == 0`.
    #[must_use]
    pub fn new(gate: ChainGate, targets: usize, fanout: usize) -> Self {
        assert!(targets > 0, "need at least one target gate");
        assert!(fanout > 0, "fan-out must be at least 1");
        let mut b = CircuitBuilder::new();
        let input = b.add_input("stim");
        let tie = match gate {
            ChainGate::Inverter => None,
            _ => Some(b.add_input("tie")),
        };
        let stage = |b: &mut CircuitBuilder, from: NetId, name: &str| match tie {
            None => b.add_gate(gate.kind(), &[from], name),
            Some(t) => b.add_gate(gate.kind(), &[from, t], name),
        };
        let mut stage_nets = vec![input];
        let mut prev = input;
        for i in 0..targets {
            let out = stage(&mut b, prev, &format!("g{}", i + 1));
            // Dummy loads for fan-out > 1.
            for l in 1..fanout {
                let _ = stage(&mut b, out, &format!("g{}_load{l}", i + 1));
            }
            stage_nets.push(out);
            prev = out;
        }
        // The last stage output is the primary output (the analog
        // translator hangs the termination stages off it).
        b.mark_output(prev);
        let circuit = b.build().expect("chains are structurally valid");
        Self {
            circuit,
            input,
            tie,
            tie_level: gate.tie_level(),
            inverting: gate.inverting(),
            stage_nets,
            fanout,
        }
    }

    /// Number of target gates.
    #[must_use]
    pub fn targets(&self) -> usize {
        self.stage_nets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_chain_structure() {
        let c = CharChain::new(ChainGate::Inverter, 4, 1);
        assert_eq!(c.targets(), 4);
        assert_eq!(c.circuit.gates().len(), 4);
        assert!(c.tie.is_none());
        assert!(c.inverting);
        // Chain of 4 inverters: identity function.
        assert_eq!(c.circuit.eval(&[false]), vec![false]);
        assert_eq!(c.circuit.eval(&[true]), vec![true]);
    }

    #[test]
    fn nor_chain_acts_as_inverter_chain_when_tied_low() {
        let c = CharChain::new(ChainGate::Nor, 3, 1);
        assert_eq!(c.circuit.gates().len(), 3);
        assert_eq!(c.tie_level, Level::Low);
        // inputs: [stim, tie]
        assert_eq!(c.circuit.eval(&[false, false]), vec![true]);
        assert_eq!(c.circuit.eval(&[true, false]), vec![false]);
        // Tie high forces all outputs low regardless.
        assert_eq!(c.circuit.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn nand_chain_acts_as_inverter_chain_when_tied_high() {
        let c = CharChain::new(ChainGate::Nand, 3, 1);
        assert_eq!(c.tie_level, Level::High);
        assert!(c.inverting);
        // Odd number of inverting stages: inverts when tied high.
        assert_eq!(c.circuit.eval(&[false, true]), vec![true]);
        assert_eq!(c.circuit.eval(&[true, true]), vec![false]);
        // Tie low forces every stage output high.
        assert_eq!(c.circuit.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn and_or_chains_buffer_under_their_ties() {
        let and = CharChain::new(ChainGate::And, 3, 1);
        assert_eq!(and.tie_level, Level::High);
        assert!(!and.inverting);
        assert_eq!(and.circuit.eval(&[true, true]), vec![true]);
        assert_eq!(and.circuit.eval(&[false, true]), vec![false]);
        let or = CharChain::new(ChainGate::Or, 3, 1);
        assert_eq!(or.tie_level, Level::Low);
        assert!(!or.inverting);
        assert_eq!(or.circuit.eval(&[true, false]), vec![true]);
        assert_eq!(or.circuit.eval(&[false, false]), vec![false]);
    }

    #[test]
    fn for_tag_covers_every_variant() {
        use crate::GateTag;
        for tag in GateTag::ALL {
            let (gate, fanout) = ChainGate::for_tag(tag);
            assert_eq!(fanout, tag.fanout());
            assert_eq!(gate.inverting(), tag.inverting(), "{tag}");
            let chain = CharChain::new(gate, 2, fanout);
            assert_eq!(chain.targets(), 2);
        }
    }

    #[test]
    fn fanout_adds_dummy_loads() {
        let fo1 = CharChain::new(ChainGate::Nor, 3, 1);
        let fo2 = CharChain::new(ChainGate::Nor, 3, 2);
        assert_eq!(fo2.circuit.gates().len(), fo1.circuit.gates().len() + 3);
        // Each target net now feeds 2 gate inputs.
        let fo = fo2.circuit.fanout_counts();
        for &net in &fo2.stage_nets[1..fo2.stage_nets.len() - 1] {
            assert_eq!(fo[net.0], 2, "stage net should drive 2 loads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_targets_rejected() {
        let _ = CharChain::new(ChainGate::Nor, 0, 1);
    }
}
