//! Running characterization chains and extracting transfer samples from
//! fitted stage waveforms (Sec. IV-A).

use std::collections::HashMap;

use nanospice::{Engine, EngineConfig, Pwl, Stimulus};
use sigfit::{fit_waveform, FitOptions};
use sigwave::{Level, SigmoidTrace, Waveform};

use crate::analog::{build_analog, AnalogOptions, BuildAnalogError};
use crate::chain::CharChain;
use crate::dataset::{TransferSample, DUMMY_SLOPE, T_FAR};
use crate::pulses::PulseSpec;

/// Error during a characterization run.
#[derive(Debug)]
pub enum CharError {
    /// The analog network could not be built.
    Build(BuildAnalogError),
    /// The analog simulation failed.
    Simulation(nanospice::SimulationError),
    /// Waveform fitting failed on a stage boundary.
    Fit(sigfit::WaveformFitError),
}

impl std::fmt::Display for CharError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "analog build failed: {e}"),
            Self::Simulation(e) => write!(f, "analog simulation failed: {e}"),
            Self::Fit(e) => write!(f, "waveform fit failed: {e}"),
        }
    }
}

impl std::error::Error for CharError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            Self::Simulation(e) => Some(e),
            Self::Fit(e) => Some(e),
        }
    }
}

impl From<BuildAnalogError> for CharError {
    fn from(e: BuildAnalogError) -> Self {
        Self::Build(e)
    }
}

impl From<nanospice::SimulationError> for CharError {
    fn from(e: nanospice::SimulationError) -> Self {
        Self::Simulation(e)
    }
}

impl From<sigfit::WaveformFitError> for CharError {
    fn from(e: sigfit::WaveformFitError) -> Self {
        Self::Fit(e)
    }
}

/// One simulated chain run: analog waveforms at every stage boundary.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// `waveforms[0]` is the (shaped) chain input, `waveforms[i]` the
    /// output of target gate `Gi`.
    pub waveforms: Vec<Waveform>,
}

/// Simulates a chain stimulated by a Fig. 4 pulse pair and records all
/// stage boundary waveforms.
///
/// # Errors
///
/// Returns [`CharError`] on analog build/simulation failure.
pub fn run_chain(
    chain: &CharChain,
    spec: &PulseSpec,
    analog_options: &AnalogOptions,
    engine_config: &EngineConfig,
) -> Result<ChainRun, CharError> {
    let trace = spec.to_trace();
    let mut stimuli: HashMap<sigcircuit::NetId, Box<dyn Stimulus>> = HashMap::new();
    stimuli.insert(
        chain.input,
        Box::new(Pwl::heaviside_train(&trace, 0.8, 1e-12)),
    );
    let mut init = HashMap::new();
    init.insert(chain.input, Level::Low);
    if let Some(tie) = chain.tie {
        // The tie input holds the cell's non-controlling level (GND for
        // NOR/OR chains, VDD for NAND/AND chains) so every stimulus
        // transition stays relevant.
        let v = if chain.tie_level.is_high() { 0.8 } else { 0.0 };
        stimuli.insert(tie, Box::new(nanospice::Dc(v)));
        init.insert(tie, chain.tie_level);
    }
    let analog = build_analog(&chain.circuit, stimuli, &init, analog_options)?;
    let probe_names: Vec<String> = chain
        .stage_nets
        .iter()
        .map(|n| analog.probe_name(*n).to_string())
        .collect();
    let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    // Simulate past the last transition long enough for full settling.
    let t_end = spec.t0 + spec.duration() + 120e-12;
    let result = Engine::new(*engine_config).run(&analog.network, 0.0, t_end, &probes)?;
    let waveforms = probe_names
        .iter()
        .map(|p| result.waveform(p).expect("probed").clone())
        .collect();
    Ok(ChainRun { waveforms })
}

/// Outcome of extracting samples from one gate's input/output waveforms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtractionStats {
    /// Samples extracted.
    pub samples: usize,
    /// Input transitions without a matching output transition — the pulse
    /// they belonged to was suppressed inside the gate (useful data for
    /// cancellation statistics but not for transfer-function training).
    pub cancelled_inputs: usize,
    /// Gate pairs abandoned entirely because the output trace could not be
    /// aligned with the input trace at all.
    pub skipped_pairs: usize,
}

/// Extracts transfer samples from the fitted sigmoid traces of one gate's
/// input and output waveforms (inverting-cell polarity convention; see
/// [`extract_from_pair_cell`] for buffering cells).
///
/// An inverting single-input gate maps each input transition to exactly one
/// output transition of opposite polarity; pairs are matched in order. If
/// the counts differ (sub-threshold pulse suppressed inside the gate), the
/// pair is skipped and counted in the stats.
///
/// # Errors
///
/// Returns [`CharError::Fit`] if either waveform cannot be fitted.
pub fn extract_from_pair(
    input_wave: &Waveform,
    output_wave: &Waveform,
    fit_options: &FitOptions,
    out: &mut Vec<TransferSample>,
) -> Result<ExtractionStats, CharError> {
    extract_from_pair_cell(input_wave, output_wave, true, fit_options, out)
}

/// Like [`extract_from_pair`] with the cell's polarity made explicit:
/// `inverting = false` matches each input transition to a *same*-polarity
/// output transition, the convention of buffering cells (AND, OR).
///
/// # Errors
///
/// Returns [`CharError::Fit`] if either waveform cannot be fitted.
pub fn extract_from_pair_cell(
    input_wave: &Waveform,
    output_wave: &Waveform,
    inverting: bool,
    fit_options: &FitOptions,
    out: &mut Vec<TransferSample>,
) -> Result<ExtractionStats, CharError> {
    let input = fit_waveform(input_wave, fit_options)?.trace;
    let output = fit_waveform(output_wave, fit_options)?.trace;
    Ok(extract_from_traces_cell(&input, &output, inverting, out))
}

/// Largest plausible input-to-output delay (scaled units, 20 ps — about
/// 3x the most degraded gate delay of the calibrated technology): output
/// transitions further away are not attributed to the current input
/// transition during matching. A loose cap would mis-attribute the
/// response of a *later* input edge to an input edge whose pulse vanished,
/// poisoning the training set with phantom long delays.
const MAX_DELAY: f64 = 0.2;

/// Like [`extract_from_pair`], starting from already fitted traces
/// (inverting-cell convention; see [`extract_from_traces_cell`]).
///
/// Input and output transitions are aligned in order: for an inverting
/// single-input gate each surviving input transition causes exactly one
/// output transition of opposite polarity within the plausibility cap
/// (`MAX_DELAY`, 20 ps); input
/// transitions whose pulse was suppressed inside the gate stay unmatched
/// and are counted as cancelled.
#[must_use]
pub fn extract_from_traces(
    input: &SigmoidTrace,
    output: &SigmoidTrace,
    out: &mut Vec<TransferSample>,
) -> ExtractionStats {
    extract_from_traces_cell(input, output, true, out)
}

/// Like [`extract_from_traces`] with the cell polarity made explicit.
///
/// `inverting = true` matches each input transition to the next
/// opposite-polarity output transition (INV/NOR/NAND cells);
/// `inverting = false` matches same-polarity pairs (the buffering AND/OR
/// cells). The dummy predecessor's polarity flips accordingly: it always
/// carries the polarity the *previous* output transition would have had,
/// i.e. the opposite of the first caused output transition.
#[must_use]
pub fn extract_from_traces_cell(
    input: &SigmoidTrace,
    output: &SigmoidTrace,
    inverting: bool,
    out: &mut Vec<TransferSample>,
) -> ExtractionStats {
    let mut stats = ExtractionStats::default();
    if input.is_empty() {
        stats.skipped_pairs = usize::from(!output.is_empty());
        return stats;
    }
    // Dummy predecessor: the first caused output transition has polarity
    // `first_input ^ inverting`; the fictitious previous output transition
    // is its opposite.
    let first_rising = input.transitions()[0].is_rising();
    let dummy_rising = first_rising == inverting;
    let mut prev_a = if dummy_rising {
        DUMMY_SLOPE
    } else {
        -DUMMY_SLOPE
    };
    let mut prev_b = f64::NEG_INFINITY;
    let outs = output.transitions();
    let mut oi = 0usize;
    for sin in input.transitions() {
        let matched = oi < outs.len() && {
            let sout = &outs[oi];
            (sout.is_rising() != sin.is_rising()) == inverting
                && sout.b > sin.b
                && sout.b - sin.b < MAX_DELAY
        };
        if !matched {
            stats.cancelled_inputs += 1;
            continue;
        }
        let sout = outs[oi];
        oi += 1;
        let t = (sin.b - prev_b).min(T_FAR);
        out.push(TransferSample {
            t,
            a_in: sin.a,
            a_prev_out: prev_a,
            a_out: sout.a,
            delay: sout.b - sin.b,
        });
        stats.samples += 1;
        prev_a = sout.a;
        prev_b = sout.b;
    }
    if oi != outs.len() {
        // Output transitions nobody caused: the alignment is unreliable,
        // discard everything extracted from this pair.
        out.truncate(out.len() - stats.samples);
        return ExtractionStats {
            samples: 0,
            cancelled_inputs: 0,
            skipped_pairs: 1,
        };
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainGate;
    use sigwave::{Sigmoid, VDD_DEFAULT};

    #[test]
    fn extract_from_synthetic_traces() {
        // Input: rise@1.0, fall@2.0; Output (inverted, delayed 0.1):
        // fall@1.1, rise@2.1.
        let input = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(10.0, 1.0), Sigmoid::falling(10.0, 2.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let output = SigmoidTrace::from_transitions(
            Level::High,
            vec![Sigmoid::falling(12.0, 1.1), Sigmoid::rising(9.0, 2.1)],
            VDD_DEFAULT,
        )
        .unwrap();
        let mut samples = Vec::new();
        let stats = extract_from_traces(&input, &output, &mut samples);
        assert_eq!(stats.samples, 2);
        assert_eq!(stats.skipped_pairs, 0);
        // First sample uses the dummy predecessor.
        assert_eq!(samples[0].t, T_FAR);
        assert_eq!(samples[0].a_prev_out, DUMMY_SLOPE); // first out falls -> dummy rose
        assert!((samples[0].delay - 0.1).abs() < 1e-12);
        // Second sample: T = 2.0 - 1.1 = 0.9 vs previous output.
        assert!((samples[1].t - 0.9).abs() < 1e-12);
        assert_eq!(samples[1].a_prev_out, -12.0);
        assert!((samples[1].delay - 0.1).abs() < 1e-12);
    }

    #[test]
    fn vanished_pulse_counts_cancelled_inputs() {
        // Input pulse, constant output: both input transitions cancelled.
        let input = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(10.0, 1.0), Sigmoid::falling(10.0, 2.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let output = SigmoidTrace::constant(Level::High, VDD_DEFAULT);
        let mut samples = Vec::new();
        let stats = extract_from_traces(&input, &output, &mut samples);
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.cancelled_inputs, 2);
        assert_eq!(stats.skipped_pairs, 0);
        assert!(samples.is_empty());
    }

    #[test]
    fn partial_pulse_survival_still_extracts() {
        // Two input pulses; only the second survives the gate.
        let input = SigmoidTrace::from_transitions(
            Level::Low,
            vec![
                Sigmoid::rising(10.0, 1.0),
                Sigmoid::falling(10.0, 1.2),
                Sigmoid::rising(10.0, 2.0),
                Sigmoid::falling(10.0, 3.0),
            ],
            VDD_DEFAULT,
        )
        .unwrap();
        let output = SigmoidTrace::from_transitions(
            Level::High,
            vec![Sigmoid::falling(9.0, 2.05), Sigmoid::rising(9.0, 3.05)],
            VDD_DEFAULT,
        )
        .unwrap();
        let mut samples = Vec::new();
        let stats = extract_from_traces(&input, &output, &mut samples);
        assert_eq!(stats.samples, 2);
        assert_eq!(stats.cancelled_inputs, 2);
        // The first surviving sample's predecessor is still the dummy.
        assert_eq!(samples[0].t, T_FAR);
    }

    #[test]
    fn unexplained_output_discards_pair() {
        // Output has a transition before any input transition: alignment
        // impossible.
        let input = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(10.0, 2.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let output = SigmoidTrace::from_transitions(
            Level::High,
            vec![Sigmoid::falling(9.0, 0.5), Sigmoid::rising(9.0, 1.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let mut samples = Vec::new();
        let stats = extract_from_traces(&input, &output, &mut samples);
        assert_eq!(stats.skipped_pairs, 1);
        assert_eq!(stats.samples, 0);
        assert!(samples.is_empty());
    }

    #[test]
    fn chain_run_produces_clean_stages() {
        // One coarse pulse spec through a short NOR chain: every stage
        // boundary should show 4 transitions (two pulses).
        let chain = CharChain::new(ChainGate::Nor, 2, 1);
        let spec = PulseSpec {
            t0: 60e-12,
            ta: 18e-12,
            tb: 18e-12,
            tc: 18e-12,
        };
        let run = run_chain(
            &chain,
            &spec,
            &AnalogOptions::default(),
            &nanospice::EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(run.waveforms.len(), 3);
        for (i, w) in run.waveforms.iter().enumerate() {
            let crossings = w.crossings(0.4);
            assert_eq!(
                crossings.len(),
                4,
                "stage {i} should carry both pulses, got {} crossings",
                crossings.len()
            );
        }
    }

    #[test]
    fn end_to_end_extraction_from_chain() {
        let chain = CharChain::new(ChainGate::Nor, 2, 1);
        let spec = PulseSpec {
            t0: 60e-12,
            ta: 15e-12,
            tb: 12e-12,
            tc: 18e-12,
        };
        let run = run_chain(
            &chain,
            &spec,
            &AnalogOptions::default(),
            &nanospice::EngineConfig::default(),
        )
        .unwrap();
        let mut samples = Vec::new();
        let mut total = ExtractionStats::default();
        for pair in run.waveforms.windows(2) {
            let s = extract_from_pair(&pair[0], &pair[1], &FitOptions::default(), &mut samples)
                .unwrap();
            total.samples += s.samples;
            total.cancelled_inputs += s.cancelled_inputs;
            total.skipped_pairs += s.skipped_pairs;
        }
        assert_eq!(total.samples, 8, "2 gates x 4 transitions");
        for s in &samples {
            assert!(s.delay > 0.0 && s.delay < 1.0, "delay {self:?}", self = s);
            assert!(s.a_in.abs() > 1.0 && s.a_in.abs() < 200.0);
            assert!(s.t > 0.0 && s.t <= T_FAR);
        }
    }
}
