//! CNF formulas and the Tseitin encoding of gate-level circuits.
//!
//! Every net of a [`Circuit`] becomes one propositional variable; every
//! gate contributes the clauses of the biconditional `out ↔ f(inputs)`
//! for its boolean function. The encoding is *definitional* (Tseitin): a
//! total assignment satisfies the clause set exactly when every gate
//! output carries the value its function demands, so the CNF's models
//! are precisely the circuit's consistent signal valuations.

use sigcircuit::{Circuit, GateKind};

/// A propositional variable (0-based index into a solver's assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a [`Var`] or its negation, packed as `var << 1 | sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Self {
        Lit(v.0 << 1 | 1)
    }

    /// A literal with an explicit sign (`negated = true` ⇒ `¬v`).
    #[must_use]
    pub fn new(v: Var, negated: bool) -> Self {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The literal's variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a negated literal.
    #[must_use]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (`2·var + sign`) for watch lists.
    #[must_use]
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }

    /// The value this literal takes under `value` for its variable.
    #[must_use]
    pub fn apply(self, var_value: bool) -> bool {
        var_value ^ self.is_neg()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// A CNF formula: a conjunction of disjunctive clauses over `num_vars`
/// variables. Clauses are deduplicated per-clause (repeated literals
/// dropped, tautologies skipped) at insertion.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula with no variables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clause set.
    #[must_use]
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals). Duplicate literals are
    /// dropped; a tautological clause (`x ∨ ¬x ∨ …`) is skipped entirely.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable or the
    /// clause is empty (an empty clause would make the formula trivially
    /// unsatisfiable — encode that state explicitly at a higher level).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(!lits.is_empty(), "empty clause");
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var().0 < self.num_vars, "literal {l} out of range");
            if clause.contains(&!l) {
                return; // tautology
            }
            if !clause.contains(&l) {
                clause.push(l);
            }
        }
        self.clauses.push(clause);
    }

    /// Evaluates the formula under a total assignment (used by tests to
    /// cross-check encodings against gate truth tables).
    ///
    /// # Panics
    ///
    /// Panics if `assign.len() < num_vars`.
    #[must_use]
    pub fn eval(&self, assign: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.apply(assign[l.var().0 as usize])))
    }
}

/// Emits the Tseitin clauses of `out ↔ kind(inputs)` into `cnf`.
///
/// Arities follow [`GateKind::arity_ok`]: INV/BUF take one input,
/// XOR/XNOR exactly two, and the AND/NAND/OR/NOR families any legal
/// arity directly (no tree decomposition — the wide-gate clauses are the
/// textbook n-ary biconditionals).
///
/// # Panics
///
/// Panics on an arity the gate kind rejects.
pub fn encode_gate(cnf: &mut Cnf, kind: GateKind, inputs: &[Lit], out: Lit) {
    assert!(
        kind.arity_ok(inputs.len()),
        "{kind} cannot take {} inputs",
        inputs.len()
    );
    match kind {
        GateKind::Inv => {
            cnf.add_clause(&[out, inputs[0]]);
            cnf.add_clause(&[!out, !inputs[0]]);
        }
        GateKind::Buf => {
            cnf.add_clause(&[out, !inputs[0]]);
            cnf.add_clause(&[!out, inputs[0]]);
        }
        GateKind::And => {
            // out → i_k;  (∧ i_k) → out.
            let mut long: Vec<Lit> = vec![out];
            for &i in inputs {
                cnf.add_clause(&[!out, i]);
                long.push(!i);
            }
            cnf.add_clause(&long);
        }
        GateKind::Nand => {
            // ¬out → i_k;  (∧ i_k) → ¬out.
            let mut long: Vec<Lit> = vec![!out];
            for &i in inputs {
                cnf.add_clause(&[out, i]);
                long.push(!i);
            }
            cnf.add_clause(&long);
        }
        GateKind::Or => {
            // i_k → out;  out → (∨ i_k).
            let mut long: Vec<Lit> = vec![!out];
            for &i in inputs {
                cnf.add_clause(&[out, !i]);
                long.push(i);
            }
            cnf.add_clause(&long);
        }
        GateKind::Nor => {
            // i_k → ¬out;  ¬out → (∨ i_k).
            let mut long: Vec<Lit> = vec![out];
            for &i in inputs {
                cnf.add_clause(&[!out, !i]);
                long.push(i);
            }
            cnf.add_clause(&long);
        }
        GateKind::Xor => {
            let (a, b) = (inputs[0], inputs[1]);
            cnf.add_clause(&[!out, a, b]);
            cnf.add_clause(&[!out, !a, !b]);
            cnf.add_clause(&[out, !a, b]);
            cnf.add_clause(&[out, a, !b]);
        }
        GateKind::Xnor => {
            let (a, b) = (inputs[0], inputs[1]);
            cnf.add_clause(&[out, a, b]);
            cnf.add_clause(&[out, !a, !b]);
            cnf.add_clause(&[!out, !a, b]);
            cnf.add_clause(&[!out, a, !b]);
        }
    }
}

/// Encodes a whole circuit into `cnf`, reusing the caller-provided
/// variables for the primary inputs (in [`Circuit::inputs`] order) and
/// allocating a fresh variable for every gate-driven net. Returns the
/// per-net variable map (indexed by `NetId`).
///
/// Sharing input variables between two `encode_circuit` calls on the
/// same `Cnf` is exactly how a miter ties the circuits' primary inputs
/// together (see [`crate::Miter`]).
///
/// # Panics
///
/// Panics if `input_vars.len()` differs from the circuit's input count.
#[must_use]
pub fn encode_circuit(cnf: &mut Cnf, circuit: &Circuit, input_vars: &[Var]) -> Vec<Var> {
    assert_eq!(
        input_vars.len(),
        circuit.inputs().len(),
        "input variable count mismatch"
    );
    // Placeholder until assigned; every read net is an input or driven
    // (guaranteed by Circuit validation), so all placeholders resolve.
    let mut vars: Vec<Var> = vec![Var(u32::MAX); circuit.net_count()];
    for (net, &v) in circuit.inputs().iter().zip(input_vars) {
        vars[net.0] = v;
    }
    for g in circuit.gates() {
        if vars[g.output.0] == Var(u32::MAX) {
            vars[g.output.0] = cnf.fresh_var();
        }
    }
    for g in circuit.gates() {
        let ins: Vec<Lit> = g.inputs.iter().map(|i| Lit::pos(vars[i.0])).collect();
        encode_gate(cnf, g.kind, &ins, Lit::pos(vars[g.output.0]));
    }
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::CircuitBuilder;

    #[test]
    fn literal_packing_round_trips() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::new(v, true), n);
        assert!(p.apply(true) && !p.apply(false));
        assert!(n.apply(false) && !n.apply(true));
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(&[Lit::pos(a), Lit::pos(a), Lit::neg(b)]);
        assert_eq!(cnf.clauses().len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
        cnf.add_clause(&[Lit::pos(a), Lit::neg(a)]);
        assert_eq!(cnf.clauses().len(), 1, "tautologies are skipped");
    }

    /// Cross-checks every gate encoding against the gate's truth table:
    /// for every assignment of (inputs, out), the clause set is satisfied
    /// exactly when `out == kind.eval(inputs)`.
    #[test]
    fn gate_encodings_match_truth_tables() {
        let cases = [
            (GateKind::Inv, 1),
            (GateKind::Buf, 1),
            (GateKind::And, 2),
            (GateKind::And, 4),
            (GateKind::Nand, 2),
            (GateKind::Nand, 3),
            (GateKind::Or, 2),
            (GateKind::Or, 5),
            (GateKind::Nor, 1),
            (GateKind::Nor, 2),
            (GateKind::Nor, 3),
            (GateKind::Xor, 2),
            (GateKind::Xnor, 2),
        ];
        for (kind, arity) in cases {
            let mut cnf = Cnf::new();
            let ins: Vec<Var> = (0..arity).map(|_| cnf.fresh_var()).collect();
            let out = cnf.fresh_var();
            let in_lits: Vec<Lit> = ins.iter().map(|&v| Lit::pos(v)).collect();
            encode_gate(&mut cnf, kind, &in_lits, Lit::pos(out));
            for pattern in 0u32..1 << (arity + 1) {
                let bits: Vec<bool> = (0..arity + 1).map(|i| pattern >> i & 1 == 1).collect();
                let (input_bits, out_bit) = (&bits[..arity], bits[arity]);
                let expect = kind.eval(input_bits) == out_bit;
                assert_eq!(
                    cnf.eval(&bits),
                    expect,
                    "{kind}/{arity} at pattern {pattern:b}"
                );
            }
        }
    }

    /// Encoding with negated input literals computes the function of the
    /// complemented inputs (the form sweeping lemmas rely on).
    #[test]
    fn encode_gate_honours_literal_phases() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let out = cnf.fresh_var();
        // out ↔ ¬(¬a) = a.
        encode_gate(&mut cnf, GateKind::Inv, &[Lit::neg(a)], Lit::pos(out));
        assert!(cnf.eval(&[true, true]));
        assert!(cnf.eval(&[false, false]));
        assert!(!cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, true]));
    }

    #[test]
    fn encode_circuit_models_are_consistent_valuations() {
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let s = b.add_gate(GateKind::Xor, &[x, y], "s");
        let c = b.add_gate(GateKind::And, &[x, y], "c");
        b.mark_output(s);
        b.mark_output(c);
        let circuit = b.build().unwrap();

        let mut cnf = Cnf::new();
        let input_vars: Vec<Var> = circuit.inputs().iter().map(|_| cnf.fresh_var()).collect();
        let vars = encode_circuit(&mut cnf, &circuit, &input_vars);
        // For each input pattern, the unique model extension matches eval.
        for pattern in 0u32..4 {
            let bits = vec![pattern & 1 == 1, pattern >> 1 & 1 == 1];
            let expect = circuit.eval(&bits);
            let mut assign = vec![false; cnf.num_vars() as usize];
            assign[input_vars[0].0 as usize] = bits[0];
            assign[input_vars[1].0 as usize] = bits[1];
            assign[vars[s.0].0 as usize] = expect[0];
            assign[vars[c.0].0 as usize] = expect[1];
            assert!(cnf.eval(&assign), "consistent valuation must satisfy");
            // Flipping an output against its function must falsify.
            assign[vars[s.0].0 as usize] = !expect[0];
            assert!(!cnf.eval(&assign), "inconsistent valuation must fail");
        }
    }
}
