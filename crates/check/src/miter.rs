//! Miter construction: the product circuit whose satisfiability decides
//! boolean equivalence.
//!
//! A miter over `(original, mapped)` encodes both circuits into one CNF
//! with *shared* primary-input variables (inputs are matched by net
//! name, so mapped circuits may reorder them), XORs every corresponding
//! output pair into a fresh difference variable, and asserts that at
//! least one difference holds. The formula is unsatisfiable exactly
//! when the circuits agree on every output for every input assignment;
//! a model is a concrete counterexample input vector.

use crate::cnf::{encode_circuit, encode_gate, Cnf, Lit, Var};
use crate::dpll::{Solver, SolverStats, Verdict};
use sigcircuit::{Circuit, GateKind};

/// The two circuits' interfaces cannot be tied together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterfaceError {
    /// Different primary-input counts.
    InputCount {
        /// Inputs of the original circuit.
        original: usize,
        /// Inputs of the mapped circuit.
        mapped: usize,
    },
    /// An original input name has no counterpart in the mapped circuit.
    InputName(String),
    /// Different output counts (outputs correspond positionally).
    OutputCount {
        /// Outputs of the original circuit.
        original: usize,
        /// Outputs of the mapped circuit.
        mapped: usize,
    },
}

impl std::fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterfaceError::InputCount { original, mapped } => {
                write!(f, "input count mismatch: {original} vs {mapped}")
            }
            InterfaceError::InputName(name) => {
                write!(f, "input `{name}` missing from the mapped circuit")
            }
            InterfaceError::OutputCount { original, mapped } => {
                write!(f, "output count mismatch: {original} vs {mapped}")
            }
        }
    }
}

impl std::error::Error for InterfaceError {}

/// Matches the circuits' interfaces: returns, for each original input
/// index, the index of the same-named input in the mapped circuit, and
/// checks the output counts agree (outputs correspond positionally —
/// mapping rebuilds them in order).
///
/// # Errors
///
/// An [`InterfaceError`] naming the first mismatch.
pub fn match_interfaces(
    original: &Circuit,
    mapped: &Circuit,
) -> Result<Vec<usize>, InterfaceError> {
    if original.inputs().len() != mapped.inputs().len() {
        return Err(InterfaceError::InputCount {
            original: original.inputs().len(),
            mapped: mapped.inputs().len(),
        });
    }
    if original.outputs().len() != mapped.outputs().len() {
        return Err(InterfaceError::OutputCount {
            original: original.outputs().len(),
            mapped: mapped.outputs().len(),
        });
    }
    let mut perm = Vec::with_capacity(original.inputs().len());
    for &net in original.inputs() {
        let name = original.net_name(net);
        let Some(found) = mapped
            .inputs()
            .iter()
            .position(|&m| mapped.net_name(m) == name)
        else {
            return Err(InterfaceError::InputName(name.to_string()));
        };
        perm.push(found);
    }
    Ok(perm)
}

/// Verdict of a direct miter solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterVerdict {
    /// The miter is unsatisfiable: the circuits are boolean-equivalent.
    Equivalent,
    /// A distinguishing input vector, in the original circuit's
    /// [`Circuit::inputs`] order.
    Counterexample(Vec<bool>),
    /// The conflict budget ran out.
    Unknown,
}

/// A constructed miter, ready to solve (or to feed the sweeping verify
/// pipeline, which reuses the same joint encoding).
#[derive(Debug, Clone)]
pub struct Miter {
    /// The joint CNF: both circuits plus output-difference constraints.
    pub cnf: Cnf,
    /// Shared primary-input variables, in the original circuit's order.
    pub inputs: Vec<Var>,
    /// Per-net variables of the original circuit.
    pub original_vars: Vec<Var>,
    /// Per-net variables of the mapped circuit.
    pub mapped_vars: Vec<Var>,
    /// One XOR-difference variable per output pair.
    pub diffs: Vec<Var>,
    /// For each original input index, the mapped circuit's input index
    /// carrying the same name.
    pub input_perm: Vec<usize>,
}

impl Miter {
    /// Builds the miter of `(original, mapped)`.
    ///
    /// # Errors
    ///
    /// An [`InterfaceError`] if the interfaces cannot be tied.
    pub fn build(original: &Circuit, mapped: &Circuit) -> Result<Miter, InterfaceError> {
        let input_perm = match_interfaces(original, mapped)?;
        let mut cnf = Cnf::new();
        let inputs: Vec<Var> = original.inputs().iter().map(|_| cnf.fresh_var()).collect();
        let original_vars = encode_circuit(&mut cnf, original, &inputs);
        let mut mapped_inputs = vec![Var(0); mapped.inputs().len()];
        for (i, &p) in input_perm.iter().enumerate() {
            mapped_inputs[p] = inputs[i];
        }
        let mapped_vars = encode_circuit(&mut cnf, mapped, &mapped_inputs);
        let mut diffs = Vec::with_capacity(original.outputs().len());
        for (&oa, &ob) in original.outputs().iter().zip(mapped.outputs()) {
            let d = cnf.fresh_var();
            encode_gate(
                &mut cnf,
                GateKind::Xor,
                &[Lit::pos(original_vars[oa.0]), Lit::pos(mapped_vars[ob.0])],
                Lit::pos(d),
            );
            diffs.push(d);
        }
        if !diffs.is_empty() {
            let any_diff: Vec<Lit> = diffs.iter().map(|&d| Lit::pos(d)).collect();
            cnf.add_clause(&any_diff);
        }
        Ok(Miter {
            cnf,
            inputs,
            original_vars,
            mapped_vars,
            diffs,
            input_perm,
        })
    }

    /// Decides the miter by branching on the shared primary inputs only
    /// (every other variable is functionally propagated, so the model —
    /// when one exists — is total). Returns at most `max_conflicts`
    /// conflicts' worth of search before giving up.
    #[must_use]
    pub fn solve(&self, max_conflicts: u64) -> (MiterVerdict, SolverStats) {
        if self.diffs.is_empty() {
            return (MiterVerdict::Equivalent, SolverStats::default());
        }
        let mut solver = Solver::from_cnf(&self.cnf);
        let verdict = match solver.solve(&[], &self.inputs, max_conflicts) {
            Verdict::Unsat => MiterVerdict::Equivalent,
            Verdict::Unknown => MiterVerdict::Unknown,
            Verdict::Sat(model) => MiterVerdict::Counterexample(
                self.inputs.iter().map(|v| model[v.0 as usize]).collect(),
            ),
        };
        (verdict, solver.stats())
    }

    /// Reorders an original-input-order assignment into the mapped
    /// circuit's input order (for replaying counterexamples).
    #[must_use]
    pub fn permute_inputs(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = vec![false; bits.len()];
        for (i, &p) in self.input_perm.iter().enumerate() {
            out[p] = bits[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::CircuitBuilder;

    /// XOR built two ways: native, and as (a ∨ b) ∧ ¬(a ∧ b).
    fn xor_pair() -> (Circuit, Circuit) {
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let o = b.add_gate(GateKind::Xor, &[x, y], "o");
        b.mark_output(o);
        let native = b.build().unwrap();

        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let or = b.add_gate(GateKind::Or, &[x, y], "or");
        let nand = b.add_gate(GateKind::Nand, &[x, y], "nand");
        let o = b.add_gate(GateKind::And, &[or, nand], "o");
        b.mark_output(o);
        let rebuilt = b.build().unwrap();
        (native, rebuilt)
    }

    #[test]
    fn equivalent_pair_is_unsat() {
        let (a, b) = xor_pair();
        let miter = Miter::build(&a, &b).unwrap();
        let (verdict, _) = miter.solve(u64::MAX);
        assert_eq!(verdict, MiterVerdict::Equivalent);
    }

    #[test]
    fn inequivalent_pair_yields_validated_counterexample() {
        let (a, _) = xor_pair();
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let o = b.add_gate(GateKind::Xnor, &[x, y], "o");
        b.mark_output(o);
        let wrong = b.build().unwrap();

        let miter = Miter::build(&a, &wrong).unwrap();
        let (verdict, _) = miter.solve(u64::MAX);
        let MiterVerdict::Counterexample(bits) = verdict else {
            panic!("expected counterexample, got {verdict:?}");
        };
        let va = a.eval(&bits);
        let vb = wrong.eval(&miter.permute_inputs(&bits));
        assert_ne!(va, vb, "counterexample must actually distinguish");
    }

    #[test]
    fn reordered_inputs_are_tied_by_name() {
        let (a, _) = xor_pair();
        // Same function, inputs declared in the opposite order.
        let mut b = CircuitBuilder::new();
        let y = b.add_input("y");
        let x = b.add_input("x");
        let o = b.add_gate(GateKind::Xor, &[x, y], "o");
        b.mark_output(o);
        let swapped = b.build().unwrap();

        let miter = Miter::build(&a, &swapped).unwrap();
        assert_eq!(miter.input_perm, vec![1, 0]);
        let (verdict, _) = miter.solve(u64::MAX);
        assert_eq!(verdict, MiterVerdict::Equivalent);
    }

    #[test]
    fn interface_mismatches_are_reported() {
        let (a, _) = xor_pair();
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let z = b.add_input("z");
        let o = b.add_gate(GateKind::Xor, &[x, z], "o");
        b.mark_output(o);
        let renamed = b.build().unwrap();
        assert_eq!(
            Miter::build(&a, &renamed).unwrap_err(),
            InterfaceError::InputName("y".to_string())
        );

        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        b.mark_output(x);
        let tiny = b.build().unwrap();
        assert!(matches!(
            Miter::build(&a, &tiny).unwrap_err(),
            InterfaceError::InputCount { .. }
        ));
    }
}
