//! A DPLL SAT solver with two-watched-literal unit propagation.
//!
//! The solver is deliberately a *decision procedure*, not a CDCL
//! engine: chronological backtracking over an explicit decision stack,
//! unit propagation driven by the classic two-pointer watched-literal
//! scheme, and per-solve conflict counting with a hard conflict budget
//! (exceeding it yields [`Verdict::Unknown`], never a wrong answer).
//! What makes it fast enough to prove ISCAS-scale miters is not the
//! search but the way `sigcheck`'s sweeping pipeline (see
//! [`crate::verify`]) keeps every query local: decision variables are
//! restricted to the cone that matters, ordered nearest-first, and
//! previously proven equivalences are added as permanent binary clauses
//! so propagation closes most branches immediately.
//!
//! # Restricted decision sets
//!
//! [`Solver::solve`] takes the *decision variables* explicitly. A
//! [`Verdict::Sat`] under a restricted set claims only that the
//! formula is satisfiable with the returned assignment on the decided
//! and propagated variables — sound when every clause over the
//! remaining variables is functionally extendable (the case for
//! Tseitin-encoded circuits whose cone inputs are all in the decision
//! set). `sigcheck` always validates counterexamples by replaying them
//! through boolean evaluation, so a miscalibrated decision set can
//! only cost completeness, never soundness.

use crate::cnf::{Cnf, Lit, Var};

/// Cumulative search statistics of a [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals propagated off the trail.
    pub propagations: u64,
    /// Conflicts hit (every conflict backtracks chronologically).
    pub conflicts: u64,
    /// `solve` calls answered.
    pub solves: u64,
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Satisfiable; the assignment covers decided and propagated
    /// variables (unassigned variables read as `false`).
    Sat(Vec<bool>),
    /// Unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl Verdict {
    /// `true` for [`Verdict::Unsat`].
    #[must_use]
    pub fn is_unsat(&self) -> bool {
        matches!(self, Verdict::Unsat)
    }
}

/// One entry of the chronological decision stack.
struct Decision {
    trail_len: usize,
    lit: Lit,
    /// Whether the complementary phase was already explored.
    flipped: bool,
}

/// The DPLL solver. Clauses can be added between `solve` calls (the
/// sweeping pipeline adds proven equivalences as lemmas); assignments
/// never persist across calls.
pub struct Solver {
    num_vars: usize,
    /// Clauses of length ≥ 2; positions 0 and 1 are the watched literals.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists indexed by literal code: clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// Unit (single-literal) clauses, propagated at the root of every solve.
    units: Vec<Lit>,
    /// `-1` unassigned, `0` false, `1` true; indexed by variable.
    assign: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Preferred first phase per variable (`true` ⇒ try the variable
    /// positive first). Seeded by sampling-derived hints in the verify
    /// pipeline; defaults to all-`false`.
    phase: Vec<bool>,
    stats: SolverStats,
    /// Set when an added clause is empty after simplification: the
    /// formula is unconditionally unsatisfiable.
    contradiction: bool,
}

/// Value of `l` under `assign`: `-1` unassigned, else 0/1.
fn lit_value(assign: &[i8], l: Lit) -> i8 {
    let a = assign[l.var().0 as usize];
    if a < 0 {
        -1
    } else {
        a ^ i8::from(l.is_neg())
    }
}

impl Solver {
    /// A solver over the clauses of `cnf`.
    #[must_use]
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let n = cnf.num_vars() as usize;
        let mut s = Solver {
            num_vars: n,
            clauses: Vec::with_capacity(cnf.clauses().len()),
            watches: vec![Vec::new(); 2 * n],
            units: Vec::new(),
            assign: vec![-1; n],
            trail: Vec::new(),
            qhead: 0,
            phase: vec![false; n],
            stats: SolverStats::default(),
            contradiction: false,
        };
        for clause in cnf.clauses() {
            s.add_clause(clause);
        }
        s
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the preferred first phase per variable (length must be
    /// `num_vars`). The verify pipeline seeds this with a sampled
    /// circuit valuation so that model search dives straight toward a
    /// known-consistent assignment.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_phase_hints(&mut self, hints: &[bool]) {
        assert_eq!(hints.len(), self.num_vars, "phase hint length mismatch");
        self.phase.copy_from_slice(hints);
    }

    /// Adds a permanent clause. Duplicate literals are dropped and
    /// tautologies skipped, mirroring [`Cnf::add_clause`]; an empty
    /// clause marks the formula unconditionally unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an out-of-range variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!((l.var().0 as usize) < self.num_vars, "literal out of range");
            if clause.contains(&!l) {
                return; // tautology
            }
            if !clause.contains(&l) {
                clause.push(l);
            }
        }
        match clause.len() {
            0 => self.contradiction = true,
            1 => self.units.push(clause[0]),
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[clause[0].code()].push(ci);
                self.watches[clause[1].code()].push(ci);
                self.clauses.push(clause);
            }
        }
    }

    fn enqueue(&mut self, l: Lit) {
        debug_assert_eq!(lit_value(&self.assign, l), -1);
        self.assign[l.var().0 as usize] = i8::from(!l.is_neg());
        self.trail.push(l);
    }

    fn backtrack(&mut self, to_len: usize) {
        for &l in &self.trail[to_len..] {
            self.assign[l.var().0 as usize] = -1;
        }
        self.trail.truncate(to_len);
        self.qhead = to_len;
    }

    /// Unit propagation to fixpoint; returns a conflicting clause index.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let fcode = (!p).code();
            // A replacement watch is never the just-falsified literal, so
            // nothing is pushed onto this list while it is detached.
            let mut ws = std::mem::take(&mut self.watches[fcode]);
            let mut i = 0;
            let mut conflict = None;
            'clauses: while i < ws.len() {
                let ci = ws[i] as usize;
                let Solver {
                    clauses,
                    assign,
                    watches,
                    ..
                } = self;
                let clause = &mut clauses[ci];
                if clause[0] == !p {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], !p);
                let first = clause[0];
                if lit_value(assign, first) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                for k in 2..clause.len() {
                    if lit_value(assign, clause[k]) != 0 {
                        clause.swap(1, k);
                        watches[clause[1].code()].push(ci as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                if lit_value(assign, first) == 0 {
                    conflict = Some(ci as u32);
                    break;
                }
                self.enqueue(first); // unit
                i += 1;
            }
            self.watches[fcode] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// Decides whether the clause set together with `assumptions` is
    /// satisfiable, branching only on `decision_vars` (in the given
    /// order — put the variables nearest the query first; see the
    /// module docs for the restricted-set contract). At most
    /// `max_conflicts` conflicts are spent before giving up with
    /// [`Verdict::Unknown`].
    pub fn solve(
        &mut self,
        assumptions: &[Lit],
        decision_vars: &[Var],
        max_conflicts: u64,
    ) -> Verdict {
        self.stats.solves += 1;
        if self.contradiction {
            return Verdict::Unsat;
        }
        self.backtrack(0);
        self.assign.fill(-1);
        self.trail.clear();
        self.qhead = 0;
        // Root units, then assumptions — a conflict in either regime is
        // final (assumptions are never flipped).
        for idx in 0..self.units.len() {
            let u = self.units[idx];
            match lit_value(&self.assign, u) {
                0 => return Verdict::Unsat,
                -1 => self.enqueue(u),
                _ => {}
            }
        }
        if self.propagate().is_some() {
            return Verdict::Unsat;
        }
        for &a in assumptions {
            match lit_value(&self.assign, a) {
                0 => return Verdict::Unsat,
                -1 => {
                    self.enqueue(a);
                    if self.propagate().is_some() {
                        return Verdict::Unsat;
                    }
                }
                _ => {}
            }
        }
        let mut decisions: Vec<Decision> = Vec::new();
        let conflicts_start = self.stats.conflicts;
        loop {
            let next = decision_vars.iter().find(|v| self.assign[v.0 as usize] < 0);
            let Some(&v) = next else {
                // Every decision variable assigned, no conflict: model.
                return Verdict::Sat(self.assign.iter().map(|&a| a == 1).collect());
            };
            self.stats.decisions += 1;
            let lit = Lit::new(v, !self.phase[v.0 as usize]);
            decisions.push(Decision {
                trail_len: self.trail.len(),
                lit,
                flipped: false,
            });
            self.enqueue(lit);
            while self.propagate().is_some() {
                self.stats.conflicts += 1;
                if self.stats.conflicts - conflicts_start >= max_conflicts {
                    return Verdict::Unknown;
                }
                // Chronological backtrack to the deepest unflipped
                // decision and try its other phase.
                loop {
                    let Some(d) = decisions.pop() else {
                        return Verdict::Unsat;
                    };
                    self.backtrack(d.trail_len);
                    if !d.flipped {
                        let flipped = !d.lit;
                        decisions.push(Decision {
                            trail_len: self.trail.len(),
                            lit: flipped,
                            flipped: true,
                        });
                        self.enqueue(flipped);
                        break;
                    }
                }
            }
        }
    }

    /// Convenience: solve with every variable as a decision variable in
    /// index order (a complete, if heuristic-free, search).
    pub fn solve_complete(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Verdict {
        let all: Vec<Var> = (0..self.num_vars as u32).map(Var).collect();
        self.solve(assumptions, &all, max_conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var(v), neg)
    }

    fn solver(num_vars: u32, clauses: &[&[Lit]]) -> Solver {
        let mut cnf = Cnf::new();
        for _ in 0..num_vars {
            cnf.fresh_var();
        }
        for c in clauses {
            cnf.add_clause(c);
        }
        Solver::from_cnf(&cnf)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = solver(2, &[&[lit(0, false), lit(1, false)]]);
        assert!(matches!(s.solve_complete(&[], u64::MAX), Verdict::Sat(_)));
        // x ∧ ¬x via unit clauses.
        let mut s = solver(1, &[&[lit(0, false)], &[lit(0, true)]]);
        assert_eq!(s.solve_complete(&[], u64::MAX), Verdict::Unsat);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0; x0→x1; x1→x2; x2→¬x0 is a contradiction.
        let mut s = solver(
            3,
            &[
                &[lit(0, false)],
                &[lit(0, true), lit(1, false)],
                &[lit(1, true), lit(2, false)],
                &[lit(2, true), lit(0, true)],
            ],
        );
        assert_eq!(s.solve_complete(&[], u64::MAX), Verdict::Unsat);
        assert_eq!(s.stats().decisions, 0, "pure propagation, no search");
    }

    #[test]
    fn assumptions_restrict_without_polluting() {
        // (x0 ∨ x1): unsat under [¬x0, ¬x1], sat otherwise — repeatedly.
        let mut s = solver(2, &[&[lit(0, false), lit(1, false)]]);
        assert_eq!(
            s.solve_complete(&[lit(0, true), lit(1, true)], u64::MAX),
            Verdict::Unsat
        );
        match s.solve_complete(&[lit(0, true)], u64::MAX) {
            Verdict::Sat(m) => assert!(m[1], "x1 must hold when x0 assumed false"),
            v => panic!("expected sat, got {v:?}"),
        }
        // The earlier assumptions must not have stuck.
        assert!(matches!(s.solve_complete(&[], u64::MAX), Verdict::Sat(_)));
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // A small pigeonhole-flavoured instance that needs some search:
        // 3 variables, all 8 sign patterns as clauses of length 3 minus
        // none — i.e. unsatisfiable, requiring several conflicts.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for pattern in 0u32..8 {
            clauses.push((0..3).map(|i| lit(i, pattern >> i & 1 == 1)).collect());
        }
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver(3, &refs);
        assert_eq!(s.solve_complete(&[], u64::MAX), Verdict::Unsat);
        let mut s = solver(3, &refs);
        assert_eq!(s.solve_complete(&[], 1), Verdict::Unknown);
        assert!(s.stats().conflicts >= 1);
    }

    #[test]
    fn lemma_clauses_added_between_solves_bind() {
        let mut s = solver(2, &[&[lit(0, false), lit(1, false)]]);
        assert!(matches!(
            s.solve_complete(&[lit(0, true)], u64::MAX),
            Verdict::Sat(_)
        ));
        s.add_clause(&[lit(1, true)]); // ¬x1 as a lemma
        assert_eq!(s.solve_complete(&[lit(0, true)], u64::MAX), Verdict::Unsat);
    }

    #[test]
    fn phase_hints_steer_the_first_dive() {
        let mut s = solver(2, &[&[lit(0, false), lit(1, false)]]);
        s.set_phase_hints(&[true, true]);
        match s.solve_complete(&[], u64::MAX) {
            Verdict::Sat(m) => assert!(m[0] && m[1], "hinted phases tried first"),
            v => panic!("expected sat, got {v:?}"),
        }
        assert_eq!(s.stats().conflicts, 0);
    }

    #[test]
    fn restricted_decision_sets_suffice_for_propagation_closed_cones() {
        // x2 ↔ ¬x0 (an inverter); deciding only x0 propagates x2.
        let mut s = solver(
            3,
            &[
                &[lit(2, false), lit(0, false)],
                &[lit(2, true), lit(0, true)],
            ],
        );
        match s.solve(&[lit(2, true)], &[Var(0)], u64::MAX) {
            Verdict::Sat(m) => {
                assert!(m[0], "x0 must be true when ¬x2 assumed");
            }
            v => panic!("expected sat, got {v:?}"),
        }
    }

    /// Exhaustive oracle on every 3-variable 3-clause 3-CNF over a small
    /// clause universe: the solver's verdict must match brute force.
    #[test]
    fn verdicts_match_brute_force_on_small_formulas() {
        let mut universe: Vec<Vec<Lit>> = Vec::new();
        for signs in 0u32..8 {
            universe.push((0..3).map(|i| lit(i, signs >> i & 1 == 1)).collect());
        }
        let mut checked = 0usize;
        for a in 0..universe.len() {
            for b in a..universe.len() {
                for c in b..universe.len() {
                    let picked = [&universe[a], &universe[b], &universe[c]];
                    let brute = (0u32..8).any(|assign| {
                        picked
                            .iter()
                            .all(|cl| cl.iter().any(|l| l.apply(assign >> l.var().0 & 1 == 1)))
                    });
                    let refs: Vec<&[Lit]> = picked.iter().map(|c| c.as_slice()).collect();
                    let mut s = solver(3, &refs);
                    match s.solve_complete(&[], u64::MAX) {
                        Verdict::Sat(m) => {
                            assert!(brute, "solver sat, brute unsat");
                            for cl in &picked {
                                assert!(
                                    cl.iter().any(|l| l.apply(m[l.var().0 as usize])),
                                    "returned model violates a clause"
                                );
                            }
                        }
                        Verdict::Unsat => assert!(!brute, "solver unsat, brute sat"),
                        Verdict::Unknown => panic!("unbounded solve returned unknown"),
                    }
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 120);
    }
}
