//! SAT-backed boolean equivalence checking of circuit transformations.
//!
//! Every circuit transformation in this repro (`to_nor_only`,
//! `to_native_cells`, wide-gate decomposition, duplicate-gate aliasing)
//! was historically validated by simulation parity on sampled stimuli.
//! This crate upgrades that trust model to *proof*: a transformation is
//! accepted when the miter of (original, mapped) is unsatisfiable — a
//! statement about all `2^n` input assignments, not a sample.
//!
//! The pieces, bottom-up:
//!
//! * [`Cnf`]/[`encode_circuit`] — Tseitin encoding of every
//!   [`sigcircuit::GateKind`] (including XOR/XNOR/BUF and the wide
//!   AND/NAND/OR/NOR families, encoded n-ary without decomposition),
//! * [`Solver`] — a DPLL decision procedure with two-watched-literal
//!   unit propagation, chronological backtracking, assumption literals,
//!   conflict budgets, and permanent lemma clauses,
//! * [`Miter`] — the product construction tying primary inputs by name
//!   and XOR-ing outputs; UNSAT ⇒ equivalent, SAT ⇒ counterexample,
//! * [`verify_mapping`]/[`verify_policy`] — the production entry
//!   points: simulation-guided SAT sweeping proves internal net
//!   equivalences in level order before discharging the per-output
//!   queries, which keeps XOR-heavy ISCAS miters (c499, c1355)
//!   tractable for a solver without clause learning. Inequivalence is
//!   only ever reported with a counterexample that has been replayed
//!   through [`sigcircuit::Circuit::eval`] on both circuits.
//!
//! # Example
//!
//! ```
//! use sigcheck::verify_policy;
//! use sigcircuit::{Benchmark, MappingPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = Benchmark::by_name("c17").map_err(|n| format!("unknown {n}"))?;
//! let result = verify_policy(&bench.original, MappingPolicy::NorOnly)?;
//! assert!(result.is_equivalent());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod dpll;
mod miter;
mod verify;

pub use cnf::{encode_circuit, encode_gate, Cnf, Lit, Var};
pub use dpll::{Solver, SolverStats, Verdict};
pub use miter::{match_interfaces, InterfaceError, Miter, MiterVerdict};
pub use verify::{
    verify_mapping, verify_mapping_with, verify_policy, Counterexample, EquivResult, EquivVerdict,
    OutputCheck, OutputVerdict, VerifyOptions,
};
