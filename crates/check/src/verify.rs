//! Simulation-guided equivalence verification of circuit mappings.
//!
//! The direct miter solve (see [`crate::miter`]) is exponential on
//! XOR-heavy cones — exactly the shape of the ISCAS parity benchmarks.
//! This module makes the proof tractable the way production equivalence
//! checkers do, by *SAT sweeping*:
//!
//! 1. **Sample**: both circuits are bit-parallel simulated on a few
//!    hundred shared random input vectors ([`Circuit::eval_words`]);
//!    every net gets a signature word-vector.
//! 2. **Propose**: a mapped net whose signature equals an original
//!    net's signature (possibly complemented) is a *candidate*
//!    equivalence. Sampling can over-propose but never causes wrong
//!    results — every candidate is proven before use.
//! 3. **Prove**: candidates are discharged in topological (level)
//!    order by two UNSAT queries under assumptions (`a ∧ ¬b` and
//!    `¬a ∧ b`). A proven pair is added to the solver as a pair of
//!    permanent binary clauses, so later queries — including the final
//!    per-output checks — propagate across the equivalence frontier
//!    instead of re-deriving it by search.
//!
//! Each query branches only on the cone of influence of its two nets,
//! deepest level first, so conflicts surface immediately after the
//! decisions that caused them. Counterexamples are *replayed* through
//! [`Circuit::eval`] before being reported: the solver is never trusted
//! on its own for an inequivalence verdict.

use std::collections::HashMap;

use crate::cnf::{Lit, Var};
use crate::dpll::{Solver, SolverStats, Verdict};
use crate::miter::{InterfaceError, Miter};
use rand::{rngs::StdRng, RngCore, SeedableRng};
use sigcircuit::{map_with_policy, Circuit, MappingPolicy, NetId, NorMappingOptions};

/// Tuning knobs of the verification pipeline.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// 64-bit words of random stimulus per input (`4` ⇒ 256 vectors).
    pub sim_words: usize,
    /// RNG seed for the stimulus (results are deterministic given this).
    pub seed: u64,
    /// Whether to sweep internal equivalences before the output checks.
    /// Disabling this leaves the output queries to raw DPLL — fine for
    /// small circuits, hopeless for XOR-heavy ISCAS miters.
    pub sweep: bool,
    /// Conflict budget per internal-candidate query (exceeding it skips
    /// the candidate; never affects soundness).
    pub candidate_budget: u64,
    /// Conflict budget per final output query (exceeding it yields an
    /// `Unknown` verdict for that output).
    pub output_budget: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            sim_words: 4,
            seed: 0x516C_1355,
            sweep: true,
            candidate_budget: 4_000,
            output_budget: 5_000_000,
        }
    }
}

/// Per-output verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputVerdict {
    /// Both UNSAT queries closed: the outputs agree everywhere.
    Proven,
    /// A replay-validated distinguishing input exists.
    Refuted,
    /// The conflict budget ran out (or a model failed replay).
    Unknown,
}

impl OutputVerdict {
    /// Canonical lowercase name (`proven`/`refuted`/`unknown`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OutputVerdict::Proven => "proven",
            OutputVerdict::Refuted => "refuted",
            OutputVerdict::Unknown => "unknown",
        }
    }
}

/// Attribution for one primary output.
#[derive(Debug, Clone)]
pub struct OutputCheck {
    /// Net name of the output in the original circuit.
    pub name: String,
    /// What the pipeline established for this output.
    pub verdict: OutputVerdict,
    /// Conflicts spent on this output's queries.
    pub conflicts: u64,
}

/// A replay-validated distinguishing input assignment.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Input values in the *original* circuit's [`Circuit::inputs`] order.
    pub inputs: Vec<bool>,
    /// Index of a differing output (into [`Circuit::outputs`]).
    pub output: usize,
    /// Name of that output net in the original circuit.
    pub output_name: String,
    /// The original circuit's value on that output.
    pub original_value: bool,
    /// The mapped circuit's value on that output.
    pub mapped_value: bool,
}

/// Overall verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivVerdict {
    /// Every output proven: the mapping is boolean-equivalent.
    Equivalent,
    /// At least one output refuted with a validated counterexample.
    Inequivalent,
    /// No refutation, but at least one output exhausted its budget.
    Unknown,
}

impl EquivVerdict {
    /// Canonical lowercase name (`equivalent`/`inequivalent`/`unknown`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EquivVerdict::Equivalent => "equivalent",
            EquivVerdict::Inequivalent => "inequivalent",
            EquivVerdict::Unknown => "unknown",
        }
    }
}

/// Result of [`verify_mapping`]: the overall verdict, per-output
/// attribution, the first counterexample found (if any), and search
/// statistics.
#[derive(Debug, Clone)]
pub struct EquivResult {
    /// The aggregated verdict.
    pub verdict: EquivVerdict,
    /// Per-output attribution, in [`Circuit::outputs`] order.
    pub outputs: Vec<OutputCheck>,
    /// First replay-validated counterexample (present iff inequivalent).
    pub counterexample: Option<Counterexample>,
    /// Internal equivalence candidates proposed by sampling.
    pub candidates: usize,
    /// Candidates proven and installed as lemmas.
    pub proven_pairs: usize,
    /// Cumulative solver statistics over all queries.
    pub stats: SolverStats,
}

impl EquivResult {
    /// `true` when every output was proven.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        self.verdict == EquivVerdict::Equivalent
    }
}

/// Per-net transitive-fanin helper for one circuit.
struct Cone<'c> {
    circuit: &'c Circuit,
    /// Gate index driving each net, if any.
    driver: Vec<Option<usize>>,
    levels: Vec<usize>,
}

impl<'c> Cone<'c> {
    fn new(circuit: &'c Circuit) -> Self {
        let mut driver = vec![None; circuit.net_count()];
        for (gi, g) in circuit.gates().iter().enumerate() {
            driver[g.output.0] = Some(gi);
        }
        Cone {
            circuit,
            driver,
            levels: circuit.net_levels(),
        }
    }

    /// All nets in the transitive fanin of `root` (inclusive), paired
    /// with their levels.
    fn collect(&self, root: NetId, vars: &[Var], out: &mut Vec<(usize, Var)>) {
        let mut seen = vec![false; self.circuit.net_count()];
        let mut stack = vec![root];
        seen[root.0] = true;
        while let Some(net) = stack.pop() {
            out.push((self.levels[net.0], vars[net.0]));
            if let Some(gi) = self.driver[net.0] {
                for &i in &self.circuit.gates()[gi].inputs {
                    if !seen[i.0] {
                        seen[i.0] = true;
                        stack.push(i);
                    }
                }
            }
        }
    }
}

/// Decision order for a query over two cones: union the cone variables
/// and branch deepest-level-first, so every decision is immediately
/// adjacent to already-constrained structure and conflicts fire after
/// O(arity) decisions instead of after a full input assignment.
fn decision_order(groups: &[(&Cone<'_>, &[Var], NetId)]) -> Vec<Var> {
    let mut pairs: Vec<(usize, Var)> = Vec::new();
    for &(cone, vars, root) in groups {
        cone.collect(root, vars, &mut pairs);
    }
    // Sort descending by level; ties (and the shared input variables
    // appearing in both cones at level 0) are made adjacent by the
    // variable index for dedup.
    pairs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    pairs.dedup();
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Per-net simulation signatures of one circuit on shared stimulus.
struct Signatures {
    /// `sig[net][word]` — 64 sample lanes per word.
    sig: Vec<Vec<u64>>,
    words: usize,
}

impl Signatures {
    fn sample(circuit: &Circuit, stimulus: &[Vec<u64>]) -> Self {
        let words = stimulus.len();
        let mut sig = vec![vec![0u64; words]; circuit.net_count()];
        for (w, inputs) in stimulus.iter().enumerate() {
            let nets = circuit.eval_words(inputs);
            for (n, &word) in nets.iter().enumerate() {
                sig[n][w] = word;
            }
        }
        Signatures { sig, words }
    }

    /// Signature normalized to start with a 0 bit; `true` if complemented.
    fn normalized(&self, net: NetId) -> (Vec<u64>, bool) {
        let s = &self.sig[net.0];
        if s[0] & 1 == 1 {
            (s.iter().map(|w| !w).collect(), true)
        } else {
            (s.clone(), false)
        }
    }

    /// The sampled bit of `net` in lane `(word, bit)`.
    fn lane(&self, net: NetId, word: usize, bit: u32) -> bool {
        self.sig[net.0][word] >> bit & 1 == 1
    }
}

/// One side of the joint encoding, bundled for the query helpers.
struct Side<'c> {
    circuit: &'c Circuit,
    vars: Vec<Var>,
    cone: Cone<'c>,
    sigs: Signatures,
}

/// Phase hints reproducing one sampled lane: a full consistent circuit
/// valuation the solver can dive straight into when hunting a model.
fn lane_hints(num_vars: usize, sides: [&Side<'_>; 2], word: usize, bit: u32) -> Vec<bool> {
    let mut hints = vec![false; num_vars];
    for side in sides {
        for n in 0..side.circuit.net_count() {
            hints[side.vars[n].0 as usize] = side.sigs.lane(NetId(n), word, bit);
        }
    }
    hints
}

/// Finds a sample lane where `net_a` (side a) is 1 and `net_b` (side b,
/// after phase adjustment) is 0 — evidence for the `a ∧ ¬b` query.
fn witness_lane(
    a: &Side<'_>,
    net_a: NetId,
    b: &Side<'_>,
    net_b: NetId,
    phase: bool,
) -> Option<(usize, u32)> {
    for w in 0..a.sigs.words {
        let sa = a.sigs.sig[net_a.0][w];
        let mut sb = b.sigs.sig[net_b.0][w];
        if phase {
            sb = !sb;
        }
        let diff = sa & !sb;
        if diff != 0 {
            return Some((w, diff.trailing_zeros()));
        }
    }
    None
}

/// Proves or refutes `lit_a ≡ lit_b` with two assumption queries.
/// Returns `Some(true)` for proven, `Some(false)` for refuted (a model
/// exists, returned via `model_out`), `None` for budget exhaustion.
#[allow(clippy::too_many_arguments)]
fn prove_equal(
    solver: &mut Solver,
    lit_a: Lit,
    lit_b: Lit,
    order: &[Var],
    budget: u64,
    hints: [Option<Vec<bool>>; 2],
    default_hints: &[bool],
    model_out: &mut Option<Vec<bool>>,
) -> Option<bool> {
    let queries = [[lit_a, !lit_b], [!lit_a, lit_b]];
    for (assumptions, hint) in queries.iter().zip(hints) {
        solver.set_phase_hints(hint.as_deref().unwrap_or(default_hints));
        match solver.solve(assumptions, order, budget) {
            Verdict::Unsat => {}
            Verdict::Sat(model) => {
                *model_out = Some(model);
                return Some(false);
            }
            Verdict::Unknown => return None,
        }
    }
    Some(true)
}

/// Verifies that `mapped` is boolean-equivalent to `original`, with
/// per-output attribution. Inputs are tied by net name (mapping
/// preserves names), outputs positionally. Equivalence verdicts are
/// SAT-proven; inequivalence verdicts carry a counterexample that has
/// been replayed through [`Circuit::eval`] on both circuits.
///
/// # Errors
///
/// An [`InterfaceError`] if the circuits' interfaces cannot be tied.
pub fn verify_mapping_with(
    original: &Circuit,
    mapped: &Circuit,
    options: &VerifyOptions,
) -> Result<EquivResult, InterfaceError> {
    let miter = Miter::build(original, mapped)?;
    let mut solver = Solver::from_cnf(&miter.cnf);
    let num_vars = solver.num_vars();

    // Shared random stimulus: original-input order, permuted for the
    // mapped side so both simulations see identical assignments.
    let words = options.sim_words.max(1);
    let mut rng = StdRng::seed_from_u64(options.seed);
    let stimulus_a: Vec<Vec<u64>> = (0..words)
        .map(|_| original.inputs().iter().map(|_| rng.next_u64()).collect())
        .collect();
    let stimulus_b: Vec<Vec<u64>> = stimulus_a
        .iter()
        .map(|ws| {
            let mut out = vec![0u64; ws.len()];
            for (i, &p) in miter.input_perm.iter().enumerate() {
                out[p] = ws[i];
            }
            out
        })
        .collect();
    let side_a = Side {
        circuit: original,
        vars: miter.original_vars.clone(),
        cone: Cone::new(original),
        sigs: Signatures::sample(original, &stimulus_a),
    };
    let side_b = Side {
        circuit: mapped,
        vars: miter.mapped_vars.clone(),
        cone: Cone::new(mapped),
        sigs: Signatures::sample(mapped, &stimulus_b),
    };
    let default_hints = lane_hints(num_vars, [&side_a, &side_b], 0, 0);

    // Candidate table: normalized signature → shallowest original net.
    let mut table: HashMap<Vec<u64>, (NetId, bool)> = HashMap::new();
    let mut order_a: Vec<(usize, usize)> = (0..original.net_count())
        .map(|n| (side_a.cone.levels[n], n))
        .collect();
    order_a.sort_unstable();
    for &(_, n) in &order_a {
        let (key, flipped) = side_a.sigs.normalized(NetId(n));
        table.entry(key).or_insert((NetId(n), flipped));
    }

    let mut candidates = 0usize;
    let mut proven_pairs = 0usize;
    if options.sweep {
        // Mapped nets in level order, primary inputs excluded (tied).
        let mut order_b: Vec<(usize, usize)> = (0..mapped.net_count())
            .map(|n| (side_b.cone.levels[n], n))
            .filter(|&(l, _)| l > 0)
            .collect();
        order_b.sort_unstable();
        for &(_, nb) in &order_b {
            let m = NetId(nb);
            let (key, flip_b) = side_b.sigs.normalized(m);
            let Some(&(o, flip_a)) = table.get(&key) else {
                continue;
            };
            candidates += 1;
            let phase = flip_a ^ flip_b;
            let lit_a = Lit::pos(side_a.vars[o.0]);
            let lit_b = Lit::new(side_b.vars[m.0], phase);
            let order = decision_order(&[
                (&side_a.cone, &side_a.vars, o),
                (&side_b.cone, &side_b.vars, m),
            ]);
            let mut model = None;
            if prove_equal(
                &mut solver,
                lit_a,
                lit_b,
                &order,
                options.candidate_budget,
                [None, None],
                &default_hints,
                &mut model,
            ) == Some(true)
            {
                solver.add_clause(&[!lit_a, lit_b]);
                solver.add_clause(&[lit_a, !lit_b]);
                proven_pairs += 1;
            }
        }
    }

    // Final per-output queries.
    let mut outputs = Vec::with_capacity(original.outputs().len());
    let mut counterexample: Option<Counterexample> = None;
    for (j, (&oa, &ob)) in original.outputs().iter().zip(mapped.outputs()).enumerate() {
        let name = original.net_name(oa).to_string();
        let lit_a = Lit::pos(side_a.vars[oa.0]);
        let lit_b = Lit::pos(side_b.vars[ob.0]);
        let order = decision_order(&[
            (&side_a.cone, &side_a.vars, oa),
            (&side_b.cone, &side_b.vars, ob),
        ]);
        // Hints: if sampling already separates this output pair, dive
        // straight into the separating lane for the matching query.
        let hint_1 = witness_lane(&side_a, oa, &side_b, ob, false)
            .map(|(w, b)| lane_hints(num_vars, [&side_a, &side_b], w, b));
        let hint_2 = witness_lane(&side_b, ob, &side_a, oa, false)
            .map(|(w, b)| lane_hints(num_vars, [&side_a, &side_b], w, b));
        let before = solver.stats().conflicts;
        let mut model = None;
        let verdict = match prove_equal(
            &mut solver,
            lit_a,
            lit_b,
            &order,
            options.output_budget,
            [hint_1, hint_2],
            &default_hints,
            &mut model,
        ) {
            Some(true) => OutputVerdict::Proven,
            None => OutputVerdict::Unknown,
            Some(false) => {
                let model = model.expect("refutation carries a model");
                let bits: Vec<bool> = miter.inputs.iter().map(|v| model[v.0 as usize]).collect();
                // Replay through boolean evaluation: the solver is not
                // trusted on its own for an inequivalence verdict.
                let va = original.eval(&bits);
                let vb = mapped.eval(&miter.permute_inputs(&bits));
                if va[j] != vb[j] {
                    if counterexample.is_none() {
                        counterexample = Some(Counterexample {
                            inputs: bits,
                            output: j,
                            output_name: name.clone(),
                            original_value: va[j],
                            mapped_value: vb[j],
                        });
                    }
                    OutputVerdict::Refuted
                } else {
                    // A model that fails replay would indicate a
                    // decision-set miscalibration; degrade, never lie.
                    OutputVerdict::Unknown
                }
            }
        };
        outputs.push(OutputCheck {
            name,
            verdict,
            conflicts: solver.stats().conflicts - before,
        });
    }

    let verdict = if outputs.iter().any(|o| o.verdict == OutputVerdict::Refuted) {
        EquivVerdict::Inequivalent
    } else if outputs.iter().any(|o| o.verdict == OutputVerdict::Unknown) {
        EquivVerdict::Unknown
    } else {
        EquivVerdict::Equivalent
    };
    Ok(EquivResult {
        verdict,
        outputs,
        counterexample,
        candidates,
        proven_pairs,
        stats: solver.stats(),
    })
}

/// [`verify_mapping_with`] under default [`VerifyOptions`].
///
/// # Errors
///
/// An [`InterfaceError`] if the circuits' interfaces cannot be tied.
pub fn verify_mapping(original: &Circuit, mapped: &Circuit) -> Result<EquivResult, InterfaceError> {
    verify_mapping_with(original, mapped, &VerifyOptions::default())
}

/// Maps `circuit` with `policy` (default NOR-mapping options) and
/// proves the result equivalent to the original — the
/// [`MappingPolicy`]-aware verification hook.
///
/// # Errors
///
/// An [`InterfaceError`] if mapping mangled the interface (which would
/// itself be a mapping bug).
pub fn verify_policy(
    circuit: &Circuit,
    policy: MappingPolicy,
) -> Result<EquivResult, InterfaceError> {
    let mapped = map_with_policy(circuit, policy, NorMappingOptions::default());
    verify_mapping(circuit, &mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::{CircuitBuilder, GateKind};

    fn full_adder() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let cin = b.add_input("cin");
        let s1 = b.add_gate(GateKind::Xor, &[x, y], "s1");
        let sum = b.add_gate(GateKind::Xor, &[s1, cin], "sum");
        let c1 = b.add_gate(GateKind::And, &[x, y], "c1");
        let c2 = b.add_gate(GateKind::And, &[s1, cin], "c2");
        let cout = b.add_gate(GateKind::Or, &[c1, c2], "cout");
        b.mark_output(sum);
        b.mark_output(cout);
        b.build().unwrap()
    }

    #[test]
    fn both_policies_prove_equivalent_on_a_full_adder() {
        let fa = full_adder();
        for policy in [MappingPolicy::NorOnly, MappingPolicy::Native] {
            let result = verify_policy(&fa, policy).unwrap();
            assert!(
                result.is_equivalent(),
                "{policy}: expected proof, got {:?}",
                result.verdict
            );
            assert!(result
                .outputs
                .iter()
                .all(|o| o.verdict == OutputVerdict::Proven));
            assert_eq!(result.outputs[0].name, "sum");
            assert_eq!(result.outputs[1].name, "cout");
        }
    }

    #[test]
    fn a_broken_mapping_is_refuted_with_a_validated_witness() {
        let fa = full_adder();
        // "Mapping" that wires cout = AND(x, y) only — drops the c2 term.
        let mut b = CircuitBuilder::new();
        let x = b.add_input("x");
        let y = b.add_input("y");
        let cin = b.add_input("cin");
        let s1 = b.add_gate(GateKind::Xor, &[x, y], "s1");
        let sum = b.add_gate(GateKind::Xor, &[s1, cin], "sum");
        let cout = b.add_gate(GateKind::And, &[x, y], "cout");
        b.mark_output(sum);
        b.mark_output(cout);
        let broken = b.build().unwrap();

        let result = verify_mapping(&fa, &broken).unwrap();
        assert_eq!(result.verdict, EquivVerdict::Inequivalent);
        assert_eq!(result.outputs[0].verdict, OutputVerdict::Proven);
        assert_eq!(result.outputs[1].verdict, OutputVerdict::Refuted);
        let cex = result.counterexample.expect("counterexample attached");
        assert_eq!(cex.output_name, "cout");
        let va = fa.eval(&cex.inputs);
        let vb = broken.eval(&cex.inputs);
        assert_eq!(va[cex.output], cex.original_value);
        assert_eq!(vb[cex.output], cex.mapped_value);
        assert_ne!(cex.original_value, cex.mapped_value);
    }

    #[test]
    fn sweeping_installs_lemmas_on_structural_rewrites() {
        let fa = full_adder();
        let result = verify_policy(&fa, MappingPolicy::NorOnly).unwrap();
        assert!(result.candidates > 0, "sampling must propose candidates");
        assert!(result.proven_pairs > 0, "sweep must prove internal pairs");
    }

    #[test]
    fn unknown_verdict_when_budget_is_starved() {
        // A 16-input XOR chain mapped to NOR: with sweeping off and a
        // single-conflict budget, nothing can be proven.
        let mut b = CircuitBuilder::new();
        let mut acc = b.add_input("i0");
        for i in 1..16 {
            let x = b.add_input(&format!("i{i}"));
            acc = b.add_gate(GateKind::Xor, &[acc, x], &format!("x{i}"));
        }
        b.mark_output(acc);
        let parity = b.build().unwrap();
        let mapped = map_with_policy(
            &parity,
            MappingPolicy::NorOnly,
            NorMappingOptions::default(),
        );
        let starved = VerifyOptions {
            sweep: false,
            output_budget: 1,
            ..VerifyOptions::default()
        };
        let result = verify_mapping_with(&parity, &mapped, &starved).unwrap();
        assert_eq!(result.verdict, EquivVerdict::Unknown);
        assert!(result.counterexample.is_none());
    }
}
