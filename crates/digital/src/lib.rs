//! Event-driven digital timing simulation with classic delay channels.
//!
//! This crate is the reproduction's substitute for ModelSim in *Signal
//! Prediction for Digital Circuits by Sigmoidal Approximations using Neural
//! Networks* (DATE 2025): a digital dynamic timing simulator over gate-level
//! netlists, where logic evaluation is instantaneous and all timing lives in
//! per-gate *delay channels*:
//!
//! * [`PureDelay`] and [`InertialDelay`] — the standard channels digital
//!   simulators provide,
//! * [`DdmChannel`] — the Delay Degradation Model (single-history),
//! * [`IdmChannel`] — an exponential Involution Delay Model channel pair.
//!
//! Per-gate delays are extracted from analog characterization runs (see the
//! `sigchar` crate), mirroring the paper's Genus/Innovus extraction flow.
//!
//! # Example
//!
//! ```
//! use std::collections::HashMap;
//! use digilog::{simulate, GateChannels, PureDelay};
//! use sigcircuit::{CircuitBuilder, GateKind};
//! use sigwave::{DigitalTrace, Level};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::new();
//! let a = b.add_input("a");
//! let y = b.add_gate(GateKind::Inv, &[a], "y");
//! b.mark_output(y);
//! let circuit = b.build()?;
//!
//! let mut stimuli = HashMap::new();
//! stimuli.insert(a, DigitalTrace::new(Level::Low, vec![10e-12])?);
//! let channels = GateChannels::uniform(&circuit, PureDelay::symmetric(5e-12));
//! let result = simulate(&circuit, &stimuli, &channels)?;
//! assert_eq!(result.trace(y).toggles(), &[15e-12]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod sim;

pub use channel::{apply_channel, DdmChannel, DelayChannel, IdmChannel, InertialDelay, PureDelay};
pub use sim::{ideal_gate_output, simulate, DigitalSimError, DigitalSimResult, GateChannels};
