//! Delay channel models for digital timing simulation.
//!
//! A *channel* turns the ideal (zero-time) output transitions of a boolean
//! gate into delayed, possibly cancelled, output transitions. This crate
//! implements the model families discussed in the paper's introduction:
//!
//! * [`PureDelay`] — constant rise/fall delays, no pulse filtering.
//! * [`InertialDelay`] — constant delays, pulses shorter than the delay are
//!   removed (the classic ModelSim/VITAL behaviour).
//! * [`DdmChannel`] — the Delay Degradation Model of Bellido-Díaz et al.:
//!   `δ(T) = δ∞ (1 − e^{−(T−T0)/τ})`, a single-history model.
//! * [`IdmChannel`] — an Involution Delay Model exponential channel pair:
//!   `δ↑(T) = δ∞ (1 − e^{−(T+Δ)/τ})` with the falling delay defined by the
//!   involution condition `−δ↓(−δ↑(T)) = T`.
//!
//! All channels consume/produce [`DigitalTrace`]s via [`apply_channel`],
//! with the standard cancellation rule: an output transition scheduled at
//! or before the previous output transition removes both.

use serde::{Deserialize, Serialize};
use sigwave::DigitalTrace;

/// A single-history delay channel: the delay of a transition may depend on
/// the time difference `T` between this input transition and the previous
/// *output* transition.
pub trait DelayChannel {
    /// Delay for a rising output transition whose input event happens `T`
    /// seconds after the previous output transition (`T` may be large on
    /// the first event).
    fn delay_up(&self, t_since_prev_out: f64) -> f64;
    /// Delay for a falling output transition.
    fn delay_down(&self, t_since_prev_out: f64) -> f64;
    /// Minimum pulse width this channel lets through (0 = everything);
    /// used by inertial filtering *in addition* to cancellation.
    fn inertia(&self) -> f64 {
        0.0
    }
}

/// Constant-delay channel without pulse filtering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PureDelay {
    /// Delay applied to rising output transitions (seconds).
    pub rise: f64,
    /// Delay applied to falling output transitions (seconds).
    pub fall: f64,
}

impl PureDelay {
    /// A symmetric pure delay.
    #[must_use]
    pub fn symmetric(delay: f64) -> Self {
        Self {
            rise: delay,
            fall: delay,
        }
    }
}

impl DelayChannel for PureDelay {
    fn delay_up(&self, _t: f64) -> f64 {
        self.rise
    }
    fn delay_down(&self, _t: f64) -> f64 {
        self.fall
    }
}

/// Constant-delay channel that suppresses pulses shorter than the delay of
/// the suppressed edge (inertial semantics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InertialDelay {
    /// Rise delay (seconds).
    pub rise: f64,
    /// Fall delay (seconds).
    pub fall: f64,
}

impl InertialDelay {
    /// A symmetric inertial delay.
    #[must_use]
    pub fn symmetric(delay: f64) -> Self {
        Self {
            rise: delay,
            fall: delay,
        }
    }
}

impl DelayChannel for InertialDelay {
    fn delay_up(&self, _t: f64) -> f64 {
        self.rise
    }
    fn delay_down(&self, _t: f64) -> f64 {
        self.fall
    }
    fn inertia(&self) -> f64 {
        self.rise.min(self.fall)
    }
}

/// The Delay Degradation Model: delays shrink for transitions arriving
/// shortly after the previous output transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdmChannel {
    /// Asymptotic rise delay `δ∞↑` (seconds).
    pub rise_inf: f64,
    /// Asymptotic fall delay `δ∞↓` (seconds).
    pub fall_inf: f64,
    /// Degradation time constant τ (seconds).
    pub tau: f64,
}

impl DelayChannel for DdmChannel {
    fn delay_up(&self, t: f64) -> f64 {
        self.rise_inf * (1.0 - (-(t.max(0.0)) / self.tau).exp())
    }
    fn delay_down(&self, t: f64) -> f64 {
        self.fall_inf * (1.0 - (-(t.max(0.0)) / self.tau).exp())
    }
}

/// An exponential involution channel: `δ↑(T) = δ∞ (1 − e^{−(T+Δ)/τ})`, with
/// `δ↓` derived from the involution condition `−δ↓(−δ↑(T)) = T`, giving
/// `δ↓(T) = Δ + τ ln(1 + T/δ∞)` *(clamped where the logarithm leaves its
/// domain, corresponding to cancelled transitions)*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdmChannel {
    /// Asymptotic delay `δ∞` (seconds).
    pub delta_inf: f64,
    /// Shift `Δ` (seconds): `δ↑(0) = δ∞ (1 − e^{−Δ/τ}) > 0` requires `Δ > 0`.
    pub shift: f64,
    /// Time constant τ (seconds).
    pub tau: f64,
}

impl IdmChannel {
    /// Verifies the involution identity `−δ↓(−δ↑(T)) = T` at `t` (test
    /// helper; exact up to floating-point error inside the valid domain).
    #[must_use]
    pub fn involution_residual(&self, t: f64) -> f64 {
        let up = self.delay_up(t);
        -self.delay_down(-up) - t
    }
}

impl DelayChannel for IdmChannel {
    fn delay_up(&self, t: f64) -> f64 {
        self.delta_inf * (1.0 - (-(t + self.shift) / self.tau).exp())
    }
    fn delay_down(&self, t: f64) -> f64 {
        let arg = 1.0 + t / self.delta_inf;
        if arg <= 0.0 {
            // Out of the involution domain: the transition is cancelled
            // anyway (negative delay beyond any schedulable time).
            return f64::NEG_INFINITY;
        }
        // The exact involution inverse grows logarithmically with T; a
        // physical channel saturates for far history, so clamp the
        // argument (the involution identity only needs T ≤ 0 inputs here,
        // which are unaffected).
        self.shift + self.tau * arg.min(20.0).ln()
    }
}

/// Applies a delay channel to an ideal (zero-time) output trace, producing
/// the channel's delayed output trace.
///
/// Semantics (single-history models, cf. the involution tool):
/// 1. each ideal transition at `tᵢ` is scheduled at `tᵢ + δ(T)` where `T =
///    tᵢ − (time of the previous *scheduled* output transition)`;
/// 2. if the scheduled time is not after the previous scheduled transition,
///    both are cancelled (a degenerate pulse);
/// 3. pulses shorter than [`DelayChannel::inertia`] are removed afterwards.
#[must_use]
pub fn apply_channel(ideal: &DigitalTrace, channel: &dyn DelayChannel) -> DigitalTrace {
    let mut out: Vec<f64> = Vec::with_capacity(ideal.len());
    // The previous output transition starts in the far past.
    let mut level = ideal.initial();
    for &t_in in ideal.toggles() {
        let prev_out = out.last().copied().unwrap_or(f64::NEG_INFINITY);
        let big_t = t_in - prev_out;
        let rising = !level.is_high();
        let delay = if rising {
            channel.delay_up(big_t)
        } else {
            channel.delay_down(big_t)
        };
        let t_out = t_in + delay;
        if t_out <= prev_out {
            // Cancellation: remove the previous transition and skip this one.
            out.pop();
        } else {
            out.push(t_out);
        }
        level = level.inverted();
    }
    // Inertial pulse filtering.
    let min_width = channel.inertia();
    if min_width > 0.0 {
        let mut filtered: Vec<f64> = Vec::with_capacity(out.len());
        for t in out {
            if let Some(&last) = filtered.last() {
                if t - last < min_width {
                    filtered.pop();
                    continue;
                }
            }
            filtered.push(t);
        }
        return DigitalTrace::new(ideal.initial(), filtered)
            .expect("filtering preserves monotonicity");
    }
    DigitalTrace::new(ideal.initial(), out).expect("cancellation preserves monotonicity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sigwave::Level;

    fn pulse(t0: f64, t1: f64) -> DigitalTrace {
        DigitalTrace::new(Level::Low, vec![t0, t1]).unwrap()
    }

    #[test]
    fn pure_delay_shifts_edges() {
        let ch = PureDelay {
            rise: 2e-12,
            fall: 3e-12,
        };
        let out = apply_channel(&pulse(10e-12, 20e-12), &ch);
        assert_eq!(out.len(), 2);
        assert!((out.toggles()[0] - 12e-12).abs() < 1e-18);
        assert!((out.toggles()[1] - 23e-12).abs() < 1e-18);
    }

    #[test]
    fn pure_delay_cancels_inverted_pulse() {
        // Rise delay much larger than fall delay + pulse width: the falling
        // edge would be scheduled before the rising edge -> cancel.
        let ch = PureDelay {
            rise: 10e-12,
            fall: 1e-12,
        };
        let out = apply_channel(&pulse(0.0, 2e-12), &ch);
        assert!(out.is_empty(), "degenerate pulse must cancel, got {out:?}");
    }

    #[test]
    fn inertial_removes_short_pulse() {
        let ch = InertialDelay::symmetric(5e-12);
        let narrow = apply_channel(&pulse(0.0, 2e-12), &ch);
        assert!(narrow.is_empty());
        let wide = apply_channel(&pulse(0.0, 20e-12), &ch);
        assert_eq!(wide.len(), 2);
    }

    #[test]
    fn ddm_degrades_fast_pulses() {
        let ch = DdmChannel {
            rise_inf: 5e-12,
            fall_inf: 5e-12,
            tau: 10e-12,
        };
        // First transition after a long quiet time: full delay.
        assert!((ch.delay_up(1.0) - 5e-12).abs() < 1e-15);
        // Shortly after the previous output: degraded delay.
        assert!(ch.delay_up(1e-12) < 1e-12);
    }

    #[test]
    fn idm_involution_identity() {
        let ch = IdmChannel {
            delta_inf: 8e-12,
            shift: 1e-12,
            tau: 6e-12,
        };
        for &t in &[0.0, 1e-12, 5e-12, 20e-12, 100e-12] {
            let r = ch.involution_residual(t);
            // The identity passes through ln(1 - x) with x -> 1, so allow
            // for the cancellation-limited float error.
            let tol = 1e-18 + 1e-6 * t.abs();
            assert!(r.abs() < tol, "involution violated at T={t}: {r}");
        }
    }

    #[test]
    fn idm_out_of_domain_cancels() {
        let ch = IdmChannel {
            delta_inf: 8e-12,
            shift: 1e-12,
            tau: 6e-12,
        };
        assert_eq!(ch.delay_down(-9e-12), f64::NEG_INFINITY);
    }

    #[test]
    fn channel_preserves_initial_level() {
        let ch = PureDelay::symmetric(1e-12);
        let t = DigitalTrace::new(Level::High, vec![5e-12]).unwrap();
        let out = apply_channel(&t, &ch);
        assert_eq!(out.initial(), Level::High);
        assert_eq!(out.len(), 1);
    }

    proptest! {
        #[test]
        fn apply_channel_output_is_monotone(
            times in proptest::collection::vec(0.0..1e-9f64, 0..12),
            rise in 1e-12..10e-12f64,
            fall in 1e-12..10e-12f64,
        ) {
            let mut ts = times; ts.sort_by(f64::total_cmp); ts.dedup();
            let ideal = DigitalTrace::new(Level::Low, ts).unwrap();
            for ch in [PureDelay { rise, fall }] {
                let out = apply_channel(&ideal, &ch);
                // Constructor would have panicked otherwise; double-check.
                for w in out.toggles().windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                // Parity: output transition count has the same parity
                // as the input (cancellations remove pairs).
                prop_assert_eq!(out.len() % 2, ideal.len() % 2);
            }
        }

        #[test]
        fn ddm_delay_monotone_in_t(
            t1 in 0.0..100e-12f64,
            dt in 0.0..100e-12f64,
        ) {
            let ch = DdmChannel { rise_inf: 5e-12, fall_inf: 4e-12, tau: 10e-12 };
            prop_assert!(ch.delay_up(t1 + dt) >= ch.delay_up(t1));
            prop_assert!(ch.delay_down(t1 + dt) >= ch.delay_down(t1));
        }
    }
}
