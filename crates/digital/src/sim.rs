//! Circuit-level digital timing simulation.
//!
//! Gates are evaluated in topological order: the zero-time boolean output
//! trace of each gate is computed by merging its input traces, then pushed
//! through the gate's delay channel. This is the architecture of digital
//! dynamic timing analysis (and of the involution tool): logic is
//! instantaneous, all timing lives in the channels.

use std::collections::HashMap;

use sigwave::{DigitalTrace, Level};

use sigcircuit::{Circuit, GateKind, NetId};

use crate::channel::{apply_channel, DelayChannel};

/// Computes the ideal (zero-delay) output trace of a gate from its input
/// traces by sweeping the merged event list.
///
/// # Panics
///
/// Panics if `inputs` is empty.
#[must_use]
pub fn ideal_gate_output(kind: GateKind, inputs: &[&DigitalTrace]) -> DigitalTrace {
    assert!(!inputs.is_empty(), "gate needs at least one input trace");
    // Merge all toggle times.
    let mut events: Vec<f64> = inputs
        .iter()
        .flat_map(|t| t.toggles().iter().copied())
        .collect();
    events.sort_by(f64::total_cmp);
    events.dedup();

    let mut levels: Vec<Level> = inputs.iter().map(|t| t.initial()).collect();
    let eval = |levels: &[Level]| {
        let bits: Vec<bool> = levels.iter().map(|l| l.is_high()).collect();
        Level::from_bool(kind.eval(&bits))
    };
    let initial = eval(&levels);
    let mut cur = initial;
    let mut toggles = Vec::new();
    let mut cursor = vec![0usize; inputs.len()];
    for &t in &events {
        for (i, trace) in inputs.iter().enumerate() {
            while cursor[i] < trace.len() && trace.toggles()[cursor[i]] <= t {
                levels[i] = levels[i].inverted();
                cursor[i] += 1;
            }
        }
        let new = eval(&levels);
        if new != cur {
            toggles.push(t);
            cur = new;
        }
    }
    DigitalTrace::new(initial, toggles).expect("merged events are increasing")
}

/// Per-gate channel assignment for a circuit simulation.
pub struct GateChannels {
    channels: Vec<Box<dyn DelayChannel + Send + Sync>>,
}

impl std::fmt::Debug for GateChannels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateChannels")
            .field("gates", &self.channels.len())
            .finish()
    }
}

impl GateChannels {
    /// One boxed channel per gate, in gate-index order.
    ///
    /// # Panics
    ///
    /// Panics (later, at simulation time) if the count does not match the
    /// circuit's gate count.
    #[must_use]
    pub fn new(channels: Vec<Box<dyn DelayChannel + Send + Sync>>) -> Self {
        Self { channels }
    }

    /// The same channel (cloned) for every gate of a circuit.
    #[must_use]
    pub fn uniform<C>(circuit: &Circuit, channel: C) -> Self
    where
        C: DelayChannel + Clone + Send + Sync + 'static,
    {
        Self {
            channels: circuit
                .gates()
                .iter()
                .map(|_| Box::new(channel.clone()) as Box<dyn DelayChannel + Send + Sync>)
                .collect(),
        }
    }

    /// Builds channels per gate from a closure receiving the gate index.
    #[must_use]
    pub fn from_fn(
        circuit: &Circuit,
        mut f: impl FnMut(usize) -> Box<dyn DelayChannel + Send + Sync>,
    ) -> Self {
        Self {
            channels: (0..circuit.gates().len()).map(&mut f).collect(),
        }
    }

    /// Number of per-gate channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` if no channels are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }
}

/// Error running a digital simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigitalSimError {
    /// Stimulus missing for a primary input.
    MissingStimulus {
        /// The input net's name.
        net: String,
    },
    /// Channel count does not match the circuit's gate count.
    ChannelCountMismatch {
        /// Channels provided.
        provided: usize,
        /// Gates in the circuit.
        expected: usize,
    },
}

impl std::fmt::Display for DigitalSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingStimulus { net } => write!(f, "no stimulus for input {net:?}"),
            Self::ChannelCountMismatch { provided, expected } => write!(
                f,
                "got {provided} channels for a circuit with {expected} gates"
            ),
        }
    }
}

impl std::error::Error for DigitalSimError {}

/// Result of a digital circuit simulation: a trace per net.
#[derive(Debug, Clone)]
pub struct DigitalSimResult {
    traces: Vec<DigitalTrace>,
}

impl DigitalSimResult {
    /// The trace on a net.
    #[must_use]
    pub fn trace(&self, net: NetId) -> &DigitalTrace {
        &self.traces[net.0]
    }

    /// Traces of all nets, indexed by [`NetId`].
    #[must_use]
    pub fn traces(&self) -> &[DigitalTrace] {
        &self.traces
    }
}

/// Simulates a circuit: input stimuli (by input net id) propagate through
/// zero-time gates followed by per-gate delay channels.
///
/// # Errors
///
/// Returns [`DigitalSimError`] if a stimulus is missing or channel counts
/// mismatch.
pub fn simulate(
    circuit: &Circuit,
    stimuli: &HashMap<NetId, DigitalTrace>,
    channels: &GateChannels,
) -> Result<DigitalSimResult, DigitalSimError> {
    if channels.len() != circuit.gates().len() {
        return Err(DigitalSimError::ChannelCountMismatch {
            provided: channels.len(),
            expected: circuit.gates().len(),
        });
    }
    let mut traces: Vec<Option<DigitalTrace>> = vec![None; circuit.net_count()];
    for &input in circuit.inputs() {
        let stim = stimuli
            .get(&input)
            .ok_or_else(|| DigitalSimError::MissingStimulus {
                net: circuit.net_name(input).to_string(),
            })?;
        traces[input.0] = Some(stim.clone());
    }
    for &gi in circuit.topological_gates() {
        let gate = &circuit.gates()[gi];
        let ins: Vec<&DigitalTrace> = gate
            .inputs
            .iter()
            .map(|i| traces[i.0].as_ref().expect("topological order"))
            .collect();
        let ideal = ideal_gate_output(gate.kind, &ins);
        let delayed = apply_channel(&ideal, channels.channels[gi].as_ref());
        traces[gate.output.0] = Some(delayed);
    }
    Ok(DigitalSimResult {
        traces: traces
            .into_iter()
            .map(|t| t.unwrap_or_else(|| DigitalTrace::constant(Level::Low)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{InertialDelay, PureDelay};
    use sigcircuit::CircuitBuilder;

    fn inv_chain(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut prev = b.add_input("in");
        for i in 0..n {
            prev = b.add_gate(GateKind::Inv, &[prev], &format!("n{i}"));
        }
        b.mark_output(prev);
        b.build().unwrap()
    }

    #[test]
    fn ideal_nor_output() {
        let a = DigitalTrace::new(Level::Low, vec![1.0]).unwrap();
        let b = DigitalTrace::new(Level::Low, vec![2.0]).unwrap();
        let out = ideal_gate_output(GateKind::Nor, &[&a, &b]);
        // NOR: high until a rises at t=1, low afterwards.
        assert_eq!(out.initial(), Level::High);
        assert_eq!(out.toggles(), &[1.0]);
    }

    #[test]
    fn ideal_output_drops_glitch_free_events() {
        // AND with one input constant low: no output events at all.
        let a = DigitalTrace::new(Level::Low, vec![1.0, 2.0, 3.0]).unwrap();
        let b = DigitalTrace::constant(Level::Low);
        let out = ideal_gate_output(GateKind::And, &[&a, &b]);
        assert!(out.is_empty());
        assert_eq!(out.initial(), Level::Low);
    }

    #[test]
    fn simultaneous_input_events_coalesce() {
        // XOR of two identical traces: always low, even at common toggles.
        let a = DigitalTrace::new(Level::Low, vec![1.0, 2.0]).unwrap();
        let out = ideal_gate_output(GateKind::Xor, &[&a, &a]);
        assert!(out.is_empty());
    }

    #[test]
    fn chain_accumulates_delay() {
        let c = inv_chain(4);
        let mut stim = HashMap::new();
        stim.insert(
            c.inputs()[0],
            DigitalTrace::new(Level::Low, vec![100e-12]).unwrap(),
        );
        let channels = GateChannels::uniform(&c, PureDelay::symmetric(5e-12));
        let res = simulate(&c, &stim, &channels).unwrap();
        let out = res.trace(c.outputs()[0]);
        assert_eq!(out.len(), 1);
        assert!((out.toggles()[0] - 120e-12).abs() < 1e-18);
        // Even number of inverters: polarity preserved.
        assert_eq!(out.initial(), Level::Low);
    }

    #[test]
    fn inertial_chain_swallows_glitch() {
        let c = inv_chain(2);
        let mut stim = HashMap::new();
        stim.insert(
            c.inputs()[0],
            DigitalTrace::new(Level::Low, vec![100e-12, 102e-12]).unwrap(),
        );
        let channels = GateChannels::uniform(&c, InertialDelay::symmetric(5e-12));
        let res = simulate(&c, &stim, &channels).unwrap();
        assert!(res.trace(c.outputs()[0]).is_empty());
        // A pure-delay simulation would pass the pulse through.
        let channels = GateChannels::uniform(&c, PureDelay::symmetric(5e-12));
        let res = simulate(&c, &stim, &channels).unwrap();
        assert_eq!(res.trace(c.outputs()[0]).len(), 2);
    }

    #[test]
    fn ddm_chain_degrades_fast_pulses() {
        use crate::channel::DdmChannel;
        let c = inv_chain(3);
        let ch = DdmChannel {
            rise_inf: 5e-12,
            fall_inf: 5e-12,
            tau: 8e-12,
        };
        // A pulse narrower than tau: each stage's second transition sees a
        // degraded (shorter) delay, widening the gap until cancellation.
        let mut stim = HashMap::new();
        stim.insert(
            c.inputs()[0],
            DigitalTrace::new(Level::Low, vec![100e-12, 103e-12]).unwrap(),
        );
        let channels = GateChannels::uniform(&c, ch);
        let res = simulate(&c, &stim, &channels).unwrap();
        // Pulse survives (DDM degrades but does not hard-filter): both
        // transitions present with shrunken spacing.
        let out = res.trace(c.outputs()[0]);
        if out.len() == 2 {
            let width = out.toggles()[1] - out.toggles()[0];
            assert!(width < 3.2e-12, "DDM must not widen the pulse: {width:.2e}");
        }
        // A slow pulse passes with full delays.
        stim.insert(
            c.inputs()[0],
            DigitalTrace::new(Level::Low, vec![100e-12, 180e-12]).unwrap(),
        );
        let channels = GateChannels::uniform(&c, ch);
        let res = simulate(&c, &stim, &channels).unwrap();
        assert_eq!(res.trace(c.outputs()[0]).len(), 2);
    }

    #[test]
    fn idm_chain_is_faithful_to_involution() {
        use crate::channel::IdmChannel;
        let c = inv_chain(2);
        let ch = IdmChannel {
            delta_inf: 6e-12,
            shift: 1e-12,
            tau: 5e-12,
        };
        let mut stim = HashMap::new();
        stim.insert(
            c.inputs()[0],
            DigitalTrace::new(Level::Low, vec![100e-12, 108e-12, 200e-12]).unwrap(),
        );
        let channels = GateChannels::uniform(&c, ch);
        let res = simulate(&c, &stim, &channels).unwrap();
        let out = res.trace(c.outputs()[0]);
        // Involution channels preserve transition parity; all toggle times
        // strictly increase (checked by the trace invariant) and the final
        // level matches the boolean function (even #inverters).
        assert_eq!(out.len() % 2, 1);
        assert_eq!(out.final_level(), Level::High);
    }

    #[test]
    fn missing_stimulus_is_error() {
        let c = inv_chain(1);
        let channels = GateChannels::uniform(&c, PureDelay::symmetric(1e-12));
        let err = simulate(&c, &HashMap::new(), &channels).unwrap_err();
        assert!(matches!(err, DigitalSimError::MissingStimulus { .. }));
    }

    #[test]
    fn channel_count_mismatch_is_error() {
        let c = inv_chain(2);
        let channels = GateChannels::new(vec![Box::new(PureDelay::symmetric(1e-12))]);
        let mut stim = HashMap::new();
        stim.insert(c.inputs()[0], DigitalTrace::constant(Level::Low));
        let err = simulate(&c, &stim, &channels).unwrap_err();
        assert!(matches!(err, DigitalSimError::ChannelCountMismatch { .. }));
    }

    #[test]
    fn c17_functional_check_with_delays() {
        // Apply a single input change and verify the steady-state output
        // equals the boolean evaluation.
        let bench = sigcircuit::c17();
        let mut stim = HashMap::new();
        // Start all low; raise input "3" (index 2) at 50 ps.
        for (i, &inp) in bench.inputs().iter().enumerate() {
            let tr = if i == 2 {
                DigitalTrace::new(Level::Low, vec![50e-12]).unwrap()
            } else {
                DigitalTrace::constant(Level::Low)
            };
            stim.insert(inp, tr);
        }
        let channels = GateChannels::uniform(&bench, InertialDelay::symmetric(8e-12));
        let res = simulate(&bench, &stim, &channels).unwrap();
        let final_levels: Vec<bool> = bench
            .outputs()
            .iter()
            .map(|o| res.trace(*o).final_level().is_high())
            .collect();
        let mut bits = vec![false; 5];
        bits[2] = true;
        assert_eq!(final_levels, bench.eval(&bits));
    }
}
