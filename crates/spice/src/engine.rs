//! Adaptive Runge–Kutta (Cash–Karp 4/5) transient analysis engine.
//!
//! This is the "iteratively solve the differential equations that govern the
//! electrical behaviour" core of the analog simulator: the node-voltage
//! ODE system assembled by [`crate::Network`] is integrated with an
//! embedded 4th/5th-order Runge–Kutta pair and PI-style step control, and
//! selected nodes are recorded into [`Waveform`]s.

use std::collections::HashMap;

use sigwave::Waveform;

use crate::network::{Network, NodeRef};

/// Transient-analysis settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Absolute voltage tolerance (volts).
    pub abs_tol: f64,
    /// Relative tolerance.
    pub rel_tol: f64,
    /// Initial step (seconds).
    pub dt_initial: f64,
    /// Smallest allowed step (seconds).
    pub dt_min: f64,
    /// Largest allowed step (seconds).
    pub dt_max: f64,
    /// Maximum recorded sample spacing (seconds); accepted steps larger
    /// than this are subdivided in the output by dense interpolation.
    pub record_dt: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            abs_tol: 2e-4,
            rel_tol: 1e-3,
            dt_initial: 1e-14,
            dt_min: 1e-17,
            dt_max: 2e-12,
            record_dt: 2e-13,
        }
    }
}

/// Error during transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// The controller could not meet the tolerance even at `dt_min`.
    StepUnderflow {
        /// Time at which integration stalled (seconds).
        at: f64,
    },
    /// A probed node name does not exist.
    UnknownProbe(String),
    /// A probe refers to a source/rail; only state nodes are recorded by
    /// the engine (source waveforms are known analytically).
    NotAStateNode(String),
    /// Invalid time span.
    BadSpan {
        /// Requested start (seconds).
        t0: f64,
        /// Requested end (seconds).
        t1: f64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StepUnderflow { at } => {
                write!(f, "step size underflow at t = {at:.3e} s")
            }
            Self::UnknownProbe(n) => write!(f, "unknown probe node {n:?}"),
            Self::NotAStateNode(n) => write!(f, "probe {n:?} is not a state node"),
            Self::BadSpan { t0, t1 } => write!(f, "invalid time span [{t0:.3e}, {t1:.3e}]"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Result of a transient run: waveforms of the probed nodes plus solver
/// statistics.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    waveforms: HashMap<String, Waveform>,
    /// Accepted integration steps.
    pub steps_accepted: usize,
    /// Rejected (re-tried) steps.
    pub steps_rejected: usize,
}

impl SimulationResult {
    /// The waveform recorded for `node`, if it was probed.
    #[must_use]
    pub fn waveform(&self, node: &str) -> Option<&Waveform> {
        self.waveforms.get(node)
    }

    /// All probed waveforms by node name.
    #[must_use]
    pub fn waveforms(&self) -> &HashMap<String, Waveform> {
        &self.waveforms
    }
}

/// The transient analysis engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

// Cash–Karp tableau.
const A2: f64 = 1.0 / 5.0;
const A3: [f64; 2] = [3.0 / 40.0, 9.0 / 40.0];
const A4: [f64; 3] = [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0];
const A5: [f64; 4] = [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0];
const A6: [f64; 5] = [
    1631.0 / 55296.0,
    175.0 / 512.0,
    575.0 / 13824.0,
    44275.0 / 110592.0,
    253.0 / 4096.0,
];
const B5: [f64; 6] = [
    37.0 / 378.0,
    0.0,
    250.0 / 621.0,
    125.0 / 594.0,
    0.0,
    512.0 / 1771.0,
];
const B4: [f64; 6] = [
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
];

impl Engine {
    /// An engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Integrates `network` over `[t0, t1]`, recording the named state
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError`] for invalid spans, unknown probes, or if
    /// the step controller stalls.
    pub fn run(
        &self,
        network: &Network,
        t0: f64,
        t1: f64,
        probes: &[&str],
    ) -> Result<SimulationResult, SimulationError> {
        if !t0.is_finite() || !t1.is_finite() || t0 >= t1 {
            return Err(SimulationError::BadSpan { t0, t1 });
        }
        // Resolve probes to state indices.
        let mut probe_ids = Vec::with_capacity(probes.len());
        for &p in probes {
            match network.node(p) {
                None => return Err(SimulationError::UnknownProbe(p.to_string())),
                Some(NodeRef::State(i)) => probe_ids.push((p.to_string(), i)),
                Some(_) => return Err(SimulationError::NotAStateNode(p.to_string())),
            }
        }

        let n = network.state_count();
        let cfg = &self.config;
        let mut y = network.initial_state();
        let mut t = t0;
        let mut dt = cfg.dt_initial;
        let mut k = vec![vec![0.0; n]; 6];
        let mut ytmp = vec![0.0; n];
        let mut y5 = vec![0.0; n];
        let mut y4 = vec![0.0; n];

        let mut times = Vec::with_capacity(4096);
        let mut probe_values: Vec<Vec<f64>> = probe_ids.iter().map(|_| Vec::new()).collect();
        let record = |t: f64, y: &[f64], times: &mut Vec<f64>, pv: &mut Vec<Vec<f64>>| {
            times.push(t);
            for ((_, idx), vals) in probe_ids.iter().zip(pv.iter_mut()) {
                vals.push(y[*idx]);
            }
        };
        record(t, &y, &mut times, &mut probe_values);

        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut last_recorded = t0;

        while t < t1 {
            dt = dt.min(t1 - t).min(cfg.dt_max);
            // Stage evaluations.
            network.derivatives(t, &y, &mut k[0]);
            for i in 0..n {
                ytmp[i] = y[i] + dt * A2 * k[0][i];
            }
            network.derivatives(t + 0.2 * dt, &ytmp, &mut k[1]);
            for i in 0..n {
                ytmp[i] = y[i] + dt * (A3[0] * k[0][i] + A3[1] * k[1][i]);
            }
            network.derivatives(t + 0.3 * dt, &ytmp, &mut k[2]);
            for i in 0..n {
                ytmp[i] = y[i] + dt * (A4[0] * k[0][i] + A4[1] * k[1][i] + A4[2] * k[2][i]);
            }
            network.derivatives(t + 0.6 * dt, &ytmp, &mut k[3]);
            for i in 0..n {
                ytmp[i] = y[i]
                    + dt * (A5[0] * k[0][i] + A5[1] * k[1][i] + A5[2] * k[2][i] + A5[3] * k[3][i]);
            }
            network.derivatives(t + dt, &ytmp, &mut k[4]);
            for i in 0..n {
                ytmp[i] = y[i]
                    + dt * (A6[0] * k[0][i]
                        + A6[1] * k[1][i]
                        + A6[2] * k[2][i]
                        + A6[3] * k[3][i]
                        + A6[4] * k[4][i]);
            }
            network.derivatives(t + 0.875 * dt, &ytmp, &mut k[5]);

            let mut err_ratio = 0.0f64;
            for i in 0..n {
                let mut s5 = 0.0;
                let mut s4 = 0.0;
                for s in 0..6 {
                    s5 += B5[s] * k[s][i];
                    s4 += B4[s] * k[s][i];
                }
                y5[i] = y[i] + dt * s5;
                y4[i] = y[i] + dt * s4;
                let scale = cfg.abs_tol + cfg.rel_tol * y[i].abs().max(y5[i].abs());
                err_ratio = err_ratio.max((y5[i] - y4[i]).abs() / scale);
            }

            if err_ratio <= 1.0 || dt <= cfg.dt_min {
                // Accept.
                t += dt;
                std::mem::swap(&mut y, &mut y5);
                accepted += 1;
                if t - last_recorded >= cfg.record_dt || t >= t1 {
                    record(t, &y, &mut times, &mut probe_values);
                    last_recorded = t;
                }
                // PI-ish growth, bounded.
                let grow = if err_ratio > 0.0 {
                    0.9 * err_ratio.powf(-0.2)
                } else {
                    5.0
                };
                dt = (dt * grow.clamp(0.2, 5.0)).clamp(cfg.dt_min, cfg.dt_max);
            } else {
                rejected += 1;
                let shrink = (0.9 * err_ratio.powf(-0.25)).clamp(0.1, 0.9);
                dt *= shrink;
                if dt < cfg.dt_min {
                    return Err(SimulationError::StepUnderflow { at: t });
                }
            }
        }

        // Assemble waveforms; guarantee at least two samples.
        if times.len() < 2 {
            record(t1, &y, &mut times, &mut probe_values);
        }
        let mut waveforms = HashMap::with_capacity(probe_ids.len());
        for ((name, _), vals) in probe_ids.iter().zip(probe_values) {
            let wf =
                Waveform::new(times.clone(), vals).expect("accepted steps produce monotone times");
            waveforms.insert(name.clone(), wf);
        }
        Ok(SimulationResult {
            waveforms,
            steps_accepted: accepted,
            steps_rejected: rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GateParams, NetworkBuilder};
    use crate::stimulus::{Dc, Pwl};
    use sigwave::{DigitalTrace, Level};

    const VDD: f64 = 0.8;

    fn inverter_net(stim: impl crate::stimulus::Stimulus + 'static) -> Network {
        let mut b = NetworkBuilder::new(VDD);
        let a = b.add_source("a", stim);
        let out = b.add_state("out", VDD);
        let p = GateParams::default_15nm();
        b.add_inverter(a, out, &p);
        b.add_cap(out, 0.2e-15); // FO1-ish load
        b.build()
    }

    #[test]
    fn rc_decay_matches_analytic() {
        // Single node with R to ground: V(t) = V0 e^{-t/RC}.
        let mut b = NetworkBuilder::new(VDD);
        let n1 = b.add_state("n1", 0.8);
        b.add_cap(n1, 1e-15);
        b.add_resistor(n1, crate::network::NodeRef::Ground, 10_000.0);
        let net = b.build();
        let tau = 1e-15 * 10_000.0; // 10 ps
        let res = Engine::default()
            .run(&net, 0.0, 5.0 * tau, &["n1"])
            .unwrap();
        let w = res.waveform("n1").unwrap();
        for &t in &[tau, 2.0 * tau, 3.0 * tau] {
            let expect = 0.8 * (-t / tau).exp();
            let got = w.value_at(t);
            assert!(
                (got - expect).abs() < 2e-3,
                "V({t:.1e}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn inverter_static_levels() {
        // Input low -> output settles at VDD; input high -> near 0.
        let net = inverter_net(Dc(0.0));
        let res = Engine::default().run(&net, 0.0, 1e-10, &["out"]).unwrap();
        let w = res.waveform("out").unwrap();
        assert!((w.value_at(1e-10) - VDD).abs() < 0.01);

        let mut b = NetworkBuilder::new(VDD);
        let a = b.add_source("a", Dc(VDD));
        let out = b.add_state("out", VDD);
        b.add_inverter(a, out, &GateParams::default_15nm());
        b.add_cap(out, 0.2e-15);
        let net = b.build();
        let res = Engine::default().run(&net, 0.0, 1e-10, &["out"]).unwrap();
        assert!(res.waveform("out").unwrap().value_at(1e-10) < 0.01);
    }

    #[test]
    fn inverter_switching_delay_in_range() {
        // Rising input at 50 ps -> falling output; delay must land in the
        // calibrated 1–30 ps window.
        let d = DigitalTrace::new(Level::Low, vec![50e-12]).unwrap();
        let stim = Pwl::heaviside_train(&d, VDD, 2e-12);
        let net = inverter_net(stim);
        let res = Engine::default().run(&net, 0.0, 2e-10, &["out"]).unwrap();
        let w = res.waveform("out").unwrap();
        let crossings = w.crossings(VDD / 2.0);
        assert_eq!(crossings.len(), 1, "one output transition expected");
        let delay = crossings[0].0 - 50e-12;
        assert!(
            delay > 1e-12 && delay < 30e-12,
            "inverter delay {delay:.3e}s outside calibration window"
        );
    }

    #[test]
    fn short_pulse_degrades() {
        // A 2 ps input pulse through an inverter must produce a weaker
        // output pulse than a 40 ps pulse (pulse degradation).
        let mk = |width: f64| {
            let d = DigitalTrace::new(Level::Low, vec![50e-12, 50e-12 + width]).unwrap();
            let stim = Pwl::heaviside_train(&d, VDD, 1e-12);
            let net = inverter_net(stim);
            let res = Engine::default().run(&net, 0.0, 2.5e-10, &["out"]).unwrap();
            let w = res.waveform("out").unwrap().clone();
            // Output is a falling pulse from VDD: its depth = VDD - min.
            let min = w.values().iter().cloned().fold(f64::INFINITY, f64::min);
            VDD - min
        };
        let deep = mk(40e-12);
        let shallow = mk(2e-12);
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
        assert!(deep > 0.75 * VDD, "wide pulse should swing fully, {deep}");
        assert!(
            shallow < 0.9 * deep,
            "short pulse must degrade: {shallow} vs {deep}"
        );
    }

    #[test]
    fn nor2_truth_table_static() {
        let cases = [
            (0.0, 0.0, VDD),
            (VDD, 0.0, 0.0),
            (0.0, VDD, 0.0),
            (VDD, VDD, 0.0),
        ];
        for (va, vb, expect) in cases {
            let mut b = NetworkBuilder::new(VDD);
            let a = b.add_source("a", Dc(va));
            let bb = b.add_source("b", Dc(vb));
            let out = b.add_state("out", VDD / 2.0);
            b.add_nor2(a, bb, out, &GateParams::default_15nm());
            b.add_cap(out, 0.2e-15);
            let net = b.build();
            let res = Engine::default().run(&net, 0.0, 2e-10, &["out"]).unwrap();
            let got = res.waveform("out").unwrap().value_at(2e-10);
            assert!(
                (got - expect).abs() < 0.02,
                "NOR({va},{vb}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn probe_errors() {
        let net = inverter_net(Dc(0.0));
        let e = Engine::default()
            .run(&net, 0.0, 1e-12, &["zz"])
            .unwrap_err();
        assert!(matches!(e, SimulationError::UnknownProbe(_)));
        let e = Engine::default().run(&net, 0.0, 1e-12, &["a"]).unwrap_err();
        assert!(matches!(e, SimulationError::NotAStateNode(_)));
        let e = Engine::default().run(&net, 1.0, 0.0, &["out"]).unwrap_err();
        assert!(matches!(e, SimulationError::BadSpan { .. }));
    }

    #[test]
    fn multi_input_switching_effect() {
        // Simultaneous falling inputs on a NOR2 produce a faster rising
        // output than a single falling input (both PMOS help charge the
        // stack) — the MIS effect the paper's related work discusses.
        let run = |skew: f64| {
            let da = DigitalTrace::new(Level::High, vec![50e-12]).unwrap();
            let db = DigitalTrace::new(Level::High, vec![50e-12 + skew]).unwrap();
            let mut b = NetworkBuilder::new(VDD);
            let a = b.add_source("a", Pwl::heaviside_train(&da, VDD, 2e-12));
            let bb = b.add_source("b", Pwl::heaviside_train(&db, VDD, 2e-12));
            let out = b.add_state("out", 0.0);
            b.add_nor2(a, bb, out, &GateParams::default_15nm());
            b.add_cap(out, 0.2e-15);
            let net = b.build();
            let res = Engine::default().run(&net, 0.0, 3e-10, &["out"]).unwrap();
            let w = res.waveform("out").unwrap().clone();
            w.crossings(VDD / 2.0)
                .first()
                .map(|c| c.0)
                .expect("output must rise")
        };
        let together = run(0.0);
        let skewed = run(30e-12);
        assert!(
            together < skewed,
            "simultaneous switching should be no slower: {together} vs {skewed}"
        );
    }
}
