//! Voltage stimuli driving circuit inputs.

use sigwave::{DigitalTrace, SigmoidTrace};

/// A time-dependent voltage source.
pub trait Stimulus: Send + Sync {
    /// The source voltage at time `t` (seconds).
    fn voltage(&self, t: f64) -> f64;
}

/// A constant DC source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dc(pub f64);

impl Stimulus for Dc {
    fn voltage(&self, _t: f64) -> f64 {
        self.0
    }
}

/// A piecewise-linear source defined by `(time, voltage)` breakpoints;
/// clamps to the first/last value outside the defined range.
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl {
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// Creates a PWL source.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one point is given or times are not strictly
    /// increasing.
    #[must_use]
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "PWL times must be strictly increasing"
        );
        Self { points }
    }

    /// A "Heaviside" train as produced by the paper's stimulus generator:
    /// ideal transitions are realized with a fast linear ramp of `rise_time`
    /// seconds centred on each toggle (the pulse-shaping stages then turn
    /// these into realistic waveforms).
    ///
    /// # Panics
    ///
    /// Panics if `rise_time` is not positive or toggles are too close
    /// (closer than `rise_time`).
    #[must_use]
    pub fn heaviside_train(trace: &DigitalTrace, vdd: f64, rise_time: f64) -> Self {
        assert!(rise_time > 0.0, "rise time must be positive");
        let lvl = |high: bool| if high { vdd } else { 0.0 };
        let mut high = trace.initial().is_high();
        let mut points = Vec::with_capacity(2 * trace.len() + 1);
        let t_first = trace.toggles().first().copied().unwrap_or(0.0);
        points.push((t_first - 1e-9 - rise_time, lvl(high)));
        for &t in trace.toggles() {
            assert!(
                points.last().expect("non-empty").0 < t - rise_time / 2.0,
                "toggles closer than the ramp time"
            );
            points.push((t - rise_time / 2.0, lvl(high)));
            high = !high;
            points.push((t + rise_time / 2.0, lvl(high)));
        }
        Self::new(points)
    }
}

impl Stimulus for Pwl {
    fn voltage(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|p| p.0 <= t);
        let (t0, v0) = pts[i - 1];
        let (t1, v1) = pts[i];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

/// A source following a sigmoidal trace — used when the sigmoid simulator
/// and the analog reference must see *identical* input waveforms (the
/// "same stimulus" row of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SigmoidSource {
    trace: SigmoidTrace,
}

impl SigmoidSource {
    /// Wraps a sigmoidal trace as a voltage source.
    #[must_use]
    pub fn new(trace: SigmoidTrace) -> Self {
        Self { trace }
    }
}

impl Stimulus for SigmoidSource {
    fn voltage(&self, t: f64) -> f64 {
        self.trace.value_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigwave::{Level, Sigmoid, VDD_DEFAULT};

    #[test]
    fn dc_is_flat() {
        assert_eq!(Dc(0.8).voltage(0.0), 0.8);
        assert_eq!(Dc(0.8).voltage(1e-9), 0.8);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let p = Pwl::new(vec![(0.0, 0.0), (1e-12, 0.8)]);
        assert_eq!(p.voltage(-1.0), 0.0);
        assert!((p.voltage(0.5e-12) - 0.4).abs() < 1e-12);
        assert_eq!(p.voltage(1.0), 0.8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_rejects_unsorted() {
        let _ = Pwl::new(vec![(1.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    fn heaviside_train_matches_trace() {
        let d = DigitalTrace::new(Level::Low, vec![10e-12, 30e-12]).unwrap();
        let p = Pwl::heaviside_train(&d, VDD_DEFAULT, 1e-12);
        assert_eq!(p.voltage(0.0), 0.0);
        assert!((p.voltage(20e-12) - VDD_DEFAULT).abs() < 1e-12);
        assert_eq!(p.voltage(40e-12), 0.0);
        // Midpoint of the ramp is at the toggle time.
        assert!((p.voltage(10e-12) - VDD_DEFAULT / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_source_tracks_trace() {
        let tr = SigmoidTrace::from_transitions(
            Level::Low,
            vec![Sigmoid::rising(10.0, 1.0)],
            VDD_DEFAULT,
        )
        .unwrap();
        let s = SigmoidSource::new(tr.clone());
        for &t in &[0.0, 1e-10, 2e-10] {
            assert_eq!(s.voltage(t), tr.value_at(t));
        }
    }
}
