//! A transistor-level analog circuit simulator ("nanospice").
//!
//! This crate is the reproduction's substitute for SPICE/Spectre and the
//! Nangate 15 nm FinFET PDK used by *Signal Prediction for Digital Circuits
//! by Sigmoidal Approximations using Neural Networks* (DATE 2025). It
//! provides:
//!
//! * [`MosfetParams`] — a smooth alpha-power-law MOSFET model calibrated to
//!   `VDD = 0.8 V` with FO1 inverter delays in the paper's picosecond range,
//! * [`NetworkBuilder`]/[`Network`] — transistor-level gate models
//!   (inverter, NOR2, NOR3 with real series-stack internal nodes), RC wire
//!   parasitics, and arbitrary stimuli,
//! * [`Engine`] — adaptive Cash–Karp Runge–Kutta transient analysis with
//!   waveform probes.
//!
//! The substitution rationale and calibration targets are documented in the
//! repository's `docs/architecture.md`.
//!
//! # Example
//!
//! ```
//! use nanospice::{Engine, GateParams, NetworkBuilder, Pwl};
//! use sigwave::{DigitalTrace, Level};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An inverter driven by a step at 50 ps.
//! let step = DigitalTrace::new(Level::Low, vec![50e-12])?;
//! let mut b = NetworkBuilder::new(0.8);
//! let a = b.add_source("a", Pwl::heaviside_train(&step, 0.8, 2e-12));
//! let out = b.add_state("out", 0.8);
//! b.add_inverter(a, out, &GateParams::default_15nm());
//! b.add_cap(out, 0.2e-15);
//! let net = b.build();
//!
//! let result = Engine::default().run(&net, 0.0, 2e-10, &["out"])?;
//! let wave = result.waveform("out").expect("probed");
//! assert!(wave.value_at(0.0) > 0.79);      // starts high
//! assert!(wave.value_at(2e-10) < 0.01);    // ends low
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod mosfet;
mod network;
mod stimulus;

pub use engine::{Engine, EngineConfig, SimulationError, SimulationResult};
pub use mosfet::{channel_current, MosfetKind, MosfetParams};
pub use network::{GateParams, Network, NetworkBuilder, NodeRef, Resistor, Transistor};
pub use stimulus::{Dc, Pwl, SigmoidSource, Stimulus};
