//! Alpha-power-law MOSFET model (Sakurai–Newton style).
//!
//! The paper characterizes gates with the Nangate 15 nm FinFET PDK, which is
//! proprietary. We substitute a smooth alpha-power-law model: it reproduces
//! the behaviour the experiments rely on — slope-dependent delays, pulse
//! degradation, sub-threshold pulse suppression and stack effects — while
//! remaining well-suited for explicit ODE integration (everything is C¹
//! thanks to a softplus-smoothed overdrive).

use serde::{Deserialize, Serialize};

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetKind {
    /// N-channel device (conducts when the gate is high).
    Nmos,
    /// P-channel device (conducts when the gate is low).
    Pmos,
}

/// Parameters of the alpha-power-law model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Threshold voltage magnitude (volts).
    pub vth: f64,
    /// Transconductance scale: drain current at 1 V of overdrive (amperes).
    pub k: f64,
    /// Velocity-saturation exponent α (≈ 2 long-channel, ≈ 1.2–1.4 FinFET).
    pub alpha: f64,
    /// Saturation-voltage fraction: `Vdsat = vdsat_frac · overdrive`.
    pub vdsat_frac: f64,
    /// Channel-length modulation (1/V), mild output-conductance slope.
    pub lambda: f64,
    /// Softplus width (volts) smoothing the overdrive near threshold; also
    /// sets the (tiny) sub-threshold conduction scale.
    pub subthreshold_width: f64,
}

impl MosfetParams {
    /// NMOS defaults calibrated so an FO1 inverter at `VDD = 0.8 V` has a
    /// propagation delay of roughly 5–15 ps with ~0.35 fF of load.
    #[must_use]
    pub fn nmos_15nm() -> Self {
        Self {
            vth: 0.25,
            k: 8.0e-5,
            alpha: 1.3,
            vdsat_frac: 0.8,
            lambda: 0.05,
            subthreshold_width: 0.018,
        }
    }

    /// PMOS defaults: same threshold magnitude, slightly weaker drive (hole
    /// mobility), matching a balanced standard-cell inverter after the usual
    /// widening of the pull-up.
    #[must_use]
    pub fn pmos_15nm() -> Self {
        Self {
            k: 6.8e-5,
            ..Self::nmos_15nm()
        }
    }

    /// Scales the drive strength (device width multiplier).
    #[must_use]
    pub fn scaled(self, width_multiplier: f64) -> Self {
        Self {
            k: self.k * width_multiplier,
            ..self
        }
    }

    /// Smoothed overdrive `max(0, vgs - vth)` via softplus.
    #[inline]
    fn overdrive(&self, vgs: f64) -> f64 {
        let w = self.subthreshold_width;
        let z = (vgs - self.vth) / w;
        if z > 30.0 {
            vgs - self.vth
        } else if z < -30.0 {
            0.0
        } else {
            w * z.exp().ln_1p()
        }
    }

    /// Drain current of an N-channel device for `vgs`, `vds ≥ 0` (amperes);
    /// negative `vds` is handled by source/drain symmetry.
    ///
    /// The model is the alpha-power law: saturation current
    /// `K · overdrive^α · (1 + λ·vds)`, with a smooth quadratic linear
    /// region below `Vdsat`.
    #[must_use]
    pub fn drain_current(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            // Swap source/drain: gate-to-(new source=old drain) voltage.
            return -self.drain_current(vgs - vds, -vds);
        }
        let ov = self.overdrive(vgs);
        if ov <= 0.0 {
            return 0.0;
        }
        let isat = self.k * ov.powf(self.alpha);
        let vdsat = (self.vdsat_frac * ov).max(1e-6);
        let current = if vds >= vdsat {
            isat
        } else {
            let r = vds / vdsat;
            isat * r * (2.0 - r)
        };
        current * (1.0 + self.lambda * vds)
    }
}

/// A MOSFET instance current evaluator working in absolute node voltages.
///
/// Returns the current flowing **drain→source** (positive in that
/// direction) for both polarities: a conducting NMOS yields a positive
/// value, a conducting PMOS a negative one (its physical current flows
/// source→drain, i.e. from the supply into the drain node).
#[must_use]
pub fn channel_current(
    kind: MosfetKind,
    params: &MosfetParams,
    v_gate: f64,
    v_drain: f64,
    v_source: f64,
) -> f64 {
    match kind {
        MosfetKind::Nmos => params.drain_current(v_gate - v_source, v_drain - v_source),
        MosfetKind::Pmos => {
            // Mirror: PMOS conducts for vsg > vth, vsd > 0, with current
            // source->drain; negate to express it in drain->source terms.
            -params.drain_current(v_source - v_gate, v_source - v_drain)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 0.8;

    #[test]
    fn off_below_threshold() {
        let p = MosfetParams::nmos_15nm();
        let off = p.drain_current(0.0, VDD);
        let on = p.drain_current(VDD, VDD);
        assert!(off < on * 1e-4, "off {off} vs on {on}");
    }

    #[test]
    fn saturation_current_scale() {
        let p = MosfetParams::nmos_15nm();
        let i = p.drain_current(VDD, VDD);
        // ~ K * 0.55^1.3 = 4e-5 * 0.46 ≈ 18 µA (±CLM)
        assert!(i > 1.0e-5 && i < 4.0e-5, "unexpected drive current {i}");
    }

    #[test]
    fn linear_region_below_saturation() {
        let p = MosfetParams::nmos_15nm();
        let ov = VDD - p.vth;
        let vdsat = p.vdsat_frac * ov;
        let lin = p.drain_current(VDD, vdsat * 0.25);
        let sat = p.drain_current(VDD, vdsat);
        assert!(lin < sat, "linear current must be below saturation");
        assert!(lin > 0.0);
    }

    #[test]
    fn monotone_in_vgs() {
        let p = MosfetParams::nmos_15nm();
        let mut last = -1.0;
        for i in 0..=16 {
            let vgs = i as f64 * VDD / 16.0;
            let cur = p.drain_current(vgs, VDD);
            assert!(cur >= last, "current must grow with vgs");
            last = cur;
        }
    }

    #[test]
    fn monotone_and_continuous_in_vds() {
        let p = MosfetParams::nmos_15nm();
        let mut last = 0.0;
        for i in 0..=400 {
            let vds = i as f64 * VDD / 400.0;
            let cur = p.drain_current(VDD, vds);
            assert!(cur >= last - 1e-9, "kink at vds={vds}");
            // No jump bigger than a smooth model allows at this resolution.
            assert!(cur - last < 2e-6, "discontinuity at vds={vds}");
            last = cur;
        }
    }

    #[test]
    fn symmetric_for_negative_vds() {
        let p = MosfetParams::nmos_15nm();
        // I(vgs, -vds) = -I(vgs + vds, vds): check antisymmetry property.
        let fwd = p.drain_current(0.6 + 0.3, 0.3);
        let rev = p.drain_current(0.6, -0.3);
        assert!((fwd + rev).abs() < 1e-12, "{fwd} vs {rev}");
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosfetParams::pmos_15nm();
        // PMOS with gate low, source at VDD, drain at 0: conducting, with
        // current flowing source->drain, i.e. negative in drain->source
        // convention.
        let i = channel_current(MosfetKind::Pmos, &p, 0.0, 0.0, VDD);
        assert!(i < -1e-5, "pmos should conduct into the drain, i = {i}");
        // Gate high: off.
        let i_off = channel_current(MosfetKind::Pmos, &p, VDD, 0.0, VDD);
        assert!(i_off.abs() < i.abs() * 1e-4);
    }

    #[test]
    fn width_scaling() {
        let p = MosfetParams::nmos_15nm();
        let d = p.scaled(2.0);
        let i1 = p.drain_current(VDD, VDD);
        let i2 = d.drain_current(VDD, VDD);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stack_effect_series_weaker() {
        // Two series devices conduct less than one: solve the internal node
        // where currents match, qualitatively check via midpoint estimate.
        let p = MosfetParams::nmos_15nm();
        let single = p.drain_current(VDD, VDD);
        // Internal node at ~0.1 V: top device has vgs=VDD-0.1, vds=VDD-0.1.
        let stacked_top = p.drain_current(VDD - 0.1, VDD - 0.1);
        assert!(stacked_top < single);
    }
}
