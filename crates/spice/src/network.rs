//! Circuit networks: nodes, devices and the gate-level builders
//! (inverter, NOR2/NOR3) used throughout the reproduction.

use std::collections::HashMap;
use std::sync::Arc;

use crate::mosfet::{channel_current, MosfetKind, MosfetParams};
use crate::stimulus::Stimulus;

/// Reference to a circuit node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// The ground rail (0 V).
    Ground,
    /// The supply rail (`vdd` volts).
    Vdd,
    /// A driven input: index into the network's stimulus table.
    Source(usize),
    /// A dynamic node with capacitance: index into the state vector.
    State(usize),
}

/// Electrical parameters of one logic gate instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateParams {
    /// NMOS model.
    pub nmos: MosfetParams,
    /// PMOS model.
    pub pmos: MosfetParams,
    /// Intrinsic output capacitance: drain junctions + local wire (farads).
    pub output_cap: f64,
    /// Gate input capacitance added to the *driving* node per fan-out
    /// (farads).
    pub input_cap: f64,
    /// Capacitance of internal stack nodes (farads).
    pub internal_cap: f64,
}

impl GateParams {
    /// Calibrated defaults for the 15 nm-class substitute technology.
    #[must_use]
    pub fn default_15nm() -> Self {
        Self {
            nmos: MosfetParams::nmos_15nm(),
            pmos: MosfetParams::pmos_15nm(),
            output_cap: 0.12e-15,
            input_cap: 0.08e-15,
            internal_cap: 0.10e-15,
        }
    }
}

impl Default for GateParams {
    fn default() -> Self {
        Self::default_15nm()
    }
}

/// One transistor in the flat device list.
#[derive(Debug, Clone)]
pub struct Transistor {
    /// Polarity.
    pub kind: MosfetKind,
    /// Gate terminal.
    pub gate: NodeRef,
    /// Drain terminal (current flows drain→source for NMOS conduction).
    pub drain: NodeRef,
    /// Source terminal.
    pub source: NodeRef,
    /// Model parameters.
    pub params: MosfetParams,
}

/// A linear resistor between two nodes (wire models).
#[derive(Debug, Clone, Copy)]
pub struct Resistor {
    /// One terminal.
    pub a: NodeRef,
    /// Other terminal.
    pub b: NodeRef,
    /// Resistance in ohms.
    pub ohms: f64,
}

/// A flat transistor-level network ready for simulation.
///
/// Build one with [`NetworkBuilder`]; simulate with
/// [`crate::Engine::run`].
pub struct Network {
    pub(crate) vdd: f64,
    pub(crate) state_caps: Vec<f64>,
    pub(crate) state_names: Vec<String>,
    pub(crate) initial_voltages: Vec<f64>,
    pub(crate) sources: Vec<Arc<dyn Stimulus>>,
    pub(crate) source_names: Vec<String>,
    pub(crate) transistors: Vec<Transistor>,
    pub(crate) resistors: Vec<Resistor>,
    pub(crate) name_to_node: HashMap<String, NodeRef>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("vdd", &self.vdd)
            .field("states", &self.state_caps.len())
            .field("sources", &self.sources.len())
            .field("transistors", &self.transistors.len())
            .field("resistors", &self.resistors.len())
            .finish()
    }
}

impl Network {
    /// Supply voltage.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Number of dynamic (state) nodes.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_caps.len()
    }

    /// Number of transistors.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }

    /// Looks up a node by name.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<NodeRef> {
        self.name_to_node.get(name).copied()
    }

    /// Names of all state nodes, indexed by state id.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Names of all driven source nodes, indexed by source id.
    #[must_use]
    pub fn source_names(&self) -> &[String] {
        &self.source_names
    }

    /// Voltage of `node` given time and the current state vector.
    #[must_use]
    pub fn node_voltage(&self, node: NodeRef, t: f64, state: &[f64]) -> f64 {
        match node {
            NodeRef::Ground => 0.0,
            NodeRef::Vdd => self.vdd,
            NodeRef::Source(i) => self.sources[i].voltage(t),
            NodeRef::State(i) => state[i],
        }
    }

    /// Writes `dV/dt` for every state node into `dstate`.
    ///
    /// Each transistor contributes its channel current to its drain (out of
    /// the node) and source (into the node); resistors contribute ohmic
    /// currents; finally each accumulated current is divided by the node
    /// capacitance.
    pub fn derivatives(&self, t: f64, state: &[f64], dstate: &mut [f64]) {
        dstate.fill(0.0);
        for tr in &self.transistors {
            let vg = self.node_voltage(tr.gate, t, state);
            let vd = self.node_voltage(tr.drain, t, state);
            let vs = self.node_voltage(tr.source, t, state);
            let i = channel_current(tr.kind, &tr.params, vg, vd, vs);
            // Positive i flows drain -> source (for NMOS conduction).
            if let NodeRef::State(d) = tr.drain {
                dstate[d] -= i;
            }
            if let NodeRef::State(s) = tr.source {
                dstate[s] += i;
            }
        }
        for r in &self.resistors {
            let va = self.node_voltage(r.a, t, state);
            let vb = self.node_voltage(r.b, t, state);
            let i = (va - vb) / r.ohms;
            if let NodeRef::State(a) = r.a {
                dstate[a] -= i;
            }
            if let NodeRef::State(b) = r.b {
                dstate[b] += i;
            }
        }
        for (dv, c) in dstate.iter_mut().zip(&self.state_caps) {
            *dv /= c;
        }
    }

    /// Initial state-vector (per-node starting voltages).
    #[must_use]
    pub fn initial_state(&self) -> Vec<f64> {
        self.initial_voltages.clone()
    }
}

/// Incrementally builds a [`Network`] out of sources, gates and wires.
///
/// # Example
///
/// ```
/// use nanospice::{NetworkBuilder, GateParams, Dc};
///
/// let mut b = NetworkBuilder::new(0.8);
/// let a = b.add_source("a", Dc(0.0));
/// let out = b.add_state("out", 0.8);
/// b.add_inverter(a, out, &GateParams::default_15nm());
/// let net = b.build();
/// assert_eq!(net.state_count(), 1);
/// assert_eq!(net.transistor_count(), 2);
/// ```
pub struct NetworkBuilder {
    vdd: f64,
    state_caps: Vec<f64>,
    state_names: Vec<String>,
    initial_voltages: Vec<f64>,
    sources: Vec<Arc<dyn Stimulus>>,
    source_names: Vec<String>,
    transistors: Vec<Transistor>,
    resistors: Vec<Resistor>,
    name_to_node: HashMap<String, NodeRef>,
}

impl std::fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBuilder")
            .field("vdd", &self.vdd)
            .field("states", &self.state_caps.len())
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl NetworkBuilder {
    /// Starts a network with the given supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive.
    #[must_use]
    pub fn new(vdd: f64) -> Self {
        assert!(vdd > 0.0, "vdd must be positive");
        Self {
            vdd,
            state_caps: Vec::new(),
            state_names: Vec::new(),
            initial_voltages: Vec::new(),
            sources: Vec::new(),
            source_names: Vec::new(),
            transistors: Vec::new(),
            resistors: Vec::new(),
            name_to_node: HashMap::new(),
        }
    }

    fn register(&mut self, name: &str, node: NodeRef) {
        let prev = self.name_to_node.insert(name.to_string(), node);
        assert!(prev.is_none(), "duplicate node name {name:?}");
    }

    /// Adds a driven input node.
    pub fn add_source(&mut self, name: &str, stimulus: impl Stimulus + 'static) -> NodeRef {
        let id = self.sources.len();
        self.sources.push(Arc::new(stimulus));
        self.source_names.push(name.to_string());
        let node = NodeRef::Source(id);
        self.register(name, node);
        node
    }

    /// Adds a dynamic node with the default state capacitance of zero; gates
    /// connected to it add their capacitances. `initial` is the starting
    /// voltage.
    pub fn add_state(&mut self, name: &str, initial: f64) -> NodeRef {
        let id = self.state_caps.len();
        self.state_caps.push(0.0);
        self.state_names.push(name.to_string());
        self.initial_voltages.push(initial);
        let node = NodeRef::State(id);
        self.register(name, node);
        node
    }

    /// Adds extra capacitance (farads) to a state node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a state node.
    pub fn add_cap(&mut self, node: NodeRef, farads: f64) {
        match node {
            NodeRef::State(i) => self.state_caps[i] += farads,
            _ => panic!("capacitance can only be added to state nodes"),
        }
    }

    /// Adds a resistor between two nodes (wire segment).
    pub fn add_resistor(&mut self, a: NodeRef, b: NodeRef, ohms: f64) {
        assert!(ohms > 0.0, "resistance must be positive");
        self.resistors.push(Resistor { a, b, ohms });
    }

    /// Adds an inverter: PMOS pull-up, NMOS pull-down driving `output`.
    ///
    /// Adds `output_cap` to the output and `input_cap` to the input (if the
    /// input is a state node, modelling the gate capacitance it presents).
    pub fn add_inverter(&mut self, input: NodeRef, output: NodeRef, p: &GateParams) {
        self.transistors.push(Transistor {
            kind: MosfetKind::Pmos,
            gate: input,
            drain: output,
            source: NodeRef::Vdd,
            params: p.pmos,
        });
        self.transistors.push(Transistor {
            kind: MosfetKind::Nmos,
            gate: input,
            drain: output,
            source: NodeRef::Ground,
            params: p.nmos,
        });
        self.attach_caps(&[input], output, p);
    }

    /// Adds a 2-input NOR with a proper series PMOS stack: the internal
    /// stack node is a real state variable, so multi-input-switching
    /// effects emerge naturally.
    ///
    /// Returns the internal stack node.
    pub fn add_nor2(
        &mut self,
        in_a: NodeRef,
        in_b: NodeRef,
        output: NodeRef,
        p: &GateParams,
    ) -> NodeRef {
        let mid_name = format!("__nor2_mid_{}", self.transistors.len());
        let mid = self.add_state(&mid_name, self.vdd);
        self.add_cap(mid, p.internal_cap);
        // Pull-up: VDD -PMOS(a)- mid -PMOS(b)- out. Stacked devices are
        // conventionally widened; 1.5x approximates equalized drive.
        let pm = p.pmos.scaled(1.5);
        self.transistors.push(Transistor {
            kind: MosfetKind::Pmos,
            gate: in_a,
            drain: mid,
            source: NodeRef::Vdd,
            params: pm,
        });
        self.transistors.push(Transistor {
            kind: MosfetKind::Pmos,
            gate: in_b,
            drain: output,
            source: mid,
            params: pm,
        });
        // Pull-down: two parallel NMOS.
        for &g in &[in_a, in_b] {
            self.transistors.push(Transistor {
                kind: MosfetKind::Nmos,
                gate: g,
                drain: output,
                source: NodeRef::Ground,
                params: p.nmos,
            });
        }
        self.attach_caps(&[in_a, in_b], output, p);
        mid
    }

    /// Adds a 2-input NAND — the CMOS dual of [`NetworkBuilder::add_nor2`]:
    /// two parallel PMOS pull-ups and a series NMOS pull-down stack whose
    /// internal node is a real state variable.
    ///
    /// Returns the internal stack node.
    pub fn add_nand2(
        &mut self,
        in_a: NodeRef,
        in_b: NodeRef,
        output: NodeRef,
        p: &GateParams,
    ) -> NodeRef {
        let mid_name = format!("__nand2_mid_{}", self.transistors.len());
        // The stack node sits at ground while the gate output is high (the
        // bottom NMOS conducts only during a full pull-down event).
        let mid = self.add_state(&mid_name, 0.0);
        self.add_cap(mid, p.internal_cap);
        // Pull-down: GND -NMOS(a)- mid -NMOS(b)- out, widened like the
        // NOR's stacked PMOS to approximate equalized drive.
        let nm = p.nmos.scaled(1.5);
        self.transistors.push(Transistor {
            kind: MosfetKind::Nmos,
            gate: in_a,
            drain: mid,
            source: NodeRef::Ground,
            params: nm,
        });
        self.transistors.push(Transistor {
            kind: MosfetKind::Nmos,
            gate: in_b,
            drain: output,
            source: mid,
            params: nm,
        });
        // Pull-up: two parallel PMOS.
        for &g in &[in_a, in_b] {
            self.transistors.push(Transistor {
                kind: MosfetKind::Pmos,
                gate: g,
                drain: output,
                source: NodeRef::Vdd,
                params: p.pmos,
            });
        }
        self.attach_caps(&[in_a, in_b], output, p);
        mid
    }

    /// Adds a 3-input NOR (series stack of three PMOS, three parallel NMOS);
    /// returns the two internal stack nodes.
    pub fn add_nor3(
        &mut self,
        in_a: NodeRef,
        in_b: NodeRef,
        in_c: NodeRef,
        output: NodeRef,
        p: &GateParams,
    ) -> (NodeRef, NodeRef) {
        let m1_name = format!("__nor3_m1_{}", self.transistors.len());
        let m2_name = format!("__nor3_m2_{}", self.transistors.len());
        let m1 = self.add_state(&m1_name, self.vdd);
        let m2 = self.add_state(&m2_name, self.vdd);
        self.add_cap(m1, p.internal_cap);
        self.add_cap(m2, p.internal_cap);
        let pm = p.pmos.scaled(2.0);
        let chain = [(NodeRef::Vdd, m1, in_a), (m1, m2, in_b), (m2, output, in_c)];
        for (src, drn, gate) in chain {
            self.transistors.push(Transistor {
                kind: MosfetKind::Pmos,
                gate,
                drain: drn,
                source: src,
                params: pm,
            });
        }
        for &g in &[in_a, in_b, in_c] {
            self.transistors.push(Transistor {
                kind: MosfetKind::Nmos,
                gate: g,
                drain: output,
                source: NodeRef::Ground,
                params: p.nmos,
            });
        }
        self.attach_caps(&[in_a, in_b, in_c], output, p);
        (m1, m2)
    }

    fn attach_caps(&mut self, inputs: &[NodeRef], output: NodeRef, p: &GateParams) {
        if let NodeRef::State(i) = output {
            self.state_caps[i] += p.output_cap;
        }
        for &input in inputs {
            if let NodeRef::State(i) = input {
                self.state_caps[i] += p.input_cap;
            }
        }
    }

    /// Finalizes the network.
    ///
    /// # Panics
    ///
    /// Panics if any state node ended up with zero capacitance (it would
    /// have infinitely fast dynamics) — add a gate or explicit cap to it.
    #[must_use]
    pub fn build(self) -> Network {
        for (i, &c) in self.state_caps.iter().enumerate() {
            assert!(
                c > 0.0,
                "state node {:?} has no capacitance",
                self.state_names[i]
            );
        }
        Network {
            vdd: self.vdd,
            state_caps: self.state_caps,
            state_names: self.state_names,
            initial_voltages: self.initial_voltages,
            sources: self.sources,
            source_names: self.source_names,
            transistors: self.transistors,
            resistors: self.resistors,
            name_to_node: self.name_to_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Dc;

    #[test]
    fn inverter_structure() {
        let mut b = NetworkBuilder::new(0.8);
        let a = b.add_source("a", Dc(0.0));
        let out = b.add_state("out", 0.0);
        b.add_inverter(a, out, &GateParams::default_15nm());
        let n = b.build();
        assert_eq!(n.transistor_count(), 2);
        assert_eq!(n.state_count(), 1);
        assert_eq!(n.node("out"), Some(out));
        assert_eq!(n.node("nope"), None);
    }

    #[test]
    fn nor2_creates_internal_node() {
        let mut b = NetworkBuilder::new(0.8);
        let a = b.add_source("a", Dc(0.0));
        let c = b.add_source("b", Dc(0.0));
        let out = b.add_state("out", 0.0);
        b.add_nor2(a, c, out, &GateParams::default_15nm());
        let n = b.build();
        assert_eq!(n.transistor_count(), 4);
        assert_eq!(n.state_count(), 2); // out + mid
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut b = NetworkBuilder::new(0.8);
        let _ = b.add_source("x", Dc(0.0));
        let _ = b.add_state("x", 0.0);
    }

    #[test]
    #[should_panic(expected = "no capacitance")]
    fn floating_state_rejected() {
        let mut b = NetworkBuilder::new(0.8);
        let _ = b.add_state("float", 0.0);
        let _ = b.build();
    }

    #[test]
    fn derivative_signs_inverter() {
        // Input low -> PMOS pulls output up: dV/dt > 0 at V_out = 0.
        let mut b = NetworkBuilder::new(0.8);
        let a = b.add_source("a", Dc(0.0));
        let out = b.add_state("out", 0.0);
        b.add_inverter(a, out, &GateParams::default_15nm());
        let n = b.build();
        let mut d = vec![0.0];
        n.derivatives(0.0, &[0.0], &mut d);
        assert!(d[0] > 0.0, "pull-up expected, got {}", d[0]);
        // At V_out = VDD the pull-up has no drive left.
        n.derivatives(0.0, &[0.8], &mut d);
        assert!(d[0].abs() < 1e9, "settled node should be slow, {}", d[0]);
    }

    #[test]
    fn resistor_currents() {
        let mut b = NetworkBuilder::new(0.8);
        let n1 = b.add_state("n1", 0.8);
        let n2 = b.add_state("n2", 0.0);
        b.add_cap(n1, 1e-15);
        b.add_cap(n2, 1e-15);
        b.add_resistor(n1, n2, 1000.0);
        let n = b.build();
        let mut d = vec![0.0, 0.0];
        n.derivatives(0.0, &[0.8, 0.0], &mut d);
        // I = 0.8/1000 = 0.8 mA; dV/dt = ±I/C.
        assert!((d[0] + 8e11).abs() / 8e11 < 1e-9);
        assert!((d[1] - 8e11).abs() / 8e11 < 1e-9);
    }
}
