//! End-to-end observability: a daemon in full trace mode serving real
//! traffic, with all three reporting surfaces asserted coherent —
//! opt-in per-request `timings` breakdowns, extended `stats`
//! quantiles, and the `trace` journal drain (including the Chrome
//! trace-event export `sigctl trace` writes).
//!
//! Everything lives in ONE test function: the observation mode and the
//! histogram registry are process-global, so this file being its own
//! test binary (= its own process) is what isolates it from the rest
//! of the suite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use sigserve::protocol::{
    decode_response, encode_request, CircuitSource, Request, Response, SessionEdit, SimRequest,
};
use sigserve::{serve_tcp, Service, ServiceConfig};
use sigsim::{train_models_cached, PipelineConfig};

// Shares the ci model cache with the rest of the workspace tests.
const MODELS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sigmodels");

fn sim(seed: u64) -> SimRequest {
    SimRequest {
        circuit: CircuitSource::Name("c17".into()),
        models: "ci".into(),
        seed,
        timing: false,
        timings: true,
        ..SimRequest::default()
    }
}

/// One synchronous request/response round trip (one frame in flight at
/// a time, so responses arrive in order).
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Response {
    writeln!(stream, "{}", encode_request(request)).expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    decode_response(line.trim_end()).expect("decodable response")
}

#[test]
fn traced_daemon_reports_timings_stats_and_spans() {
    // Full tracing for the whole process: counters + span journal.
    sigobs::set_mode(sigobs::ObsMode::Trace);
    assert!(sigobs::counting() && sigobs::tracing());

    train_models_cached(
        &PathBuf::from(MODELS_DIR).join("ci.json"),
        &PipelineConfig::ci(),
    )
    .expect("ci models");
    let service = Service::new(ServiceConfig {
        models_dir: PathBuf::from(MODELS_DIR),
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
    };
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // ---- opt-in timings on plain sims ---------------------------------
    for id in 1..=4u64 {
        let response = exchange(&mut stream, &mut reader, &Request::Sim { id, sim: sim(id) });
        let Response::Sim { result, .. } = response else {
            panic!("expected sim, got {response:?}");
        };
        let t = result
            .timings
            .expect("timings opt-in must echo a breakdown");
        assert!(t.queue_s >= 0.0 && t.resolve_s >= 0.0);
        assert!(t.execute_s > 0.0, "execution takes nonzero time");
        assert!(
            t.total_s >= t.execute_s,
            "the dispatch-to-response total covers the engine call: {t:?}"
        );
    }
    // Without the opt-in, the reply carries no breakdown.
    let silent = exchange(
        &mut stream,
        &mut reader,
        &Request::Sim {
            id: 5,
            sim: SimRequest {
                timings: false,
                ..sim(5)
            },
        },
    );
    let Response::Sim { result, .. } = silent else {
        panic!("expected sim, got {silent:?}");
    };
    assert!(result.timings.is_none());

    // ---- fleet: every entry echoes the one shared breakdown -----------
    let batch = exchange(
        &mut stream,
        &mut reader,
        &Request::SimBatch {
            id: 6,
            sim: sim(60),
            runs: 3,
        },
    );
    let Response::SimBatch { results, .. } = batch else {
        panic!("expected batch, got {batch:?}");
    };
    assert_eq!(results.len(), 3);
    for r in &results {
        assert_eq!(r.timings, results[0].timings);
        assert!(r.timings.as_ref().expect("fleet timings").total_s > 0.0);
    }

    // ---- sessions: deltas inherit the opening request's opt-in --------
    let opened = exchange(
        &mut stream,
        &mut reader,
        &Request::SessionOpen {
            id: 7,
            session: 1,
            sim: sim(70),
        },
    );
    let Response::Session { result, .. } = opened else {
        panic!("expected session, got {opened:?}");
    };
    assert!(result.timings.is_some(), "open echoes a breakdown");
    let deltad = exchange(
        &mut stream,
        &mut reader,
        &Request::SessionDelta {
            id: 8,
            session: 1,
            edits: vec![SessionEdit {
                net: "1".into(),
                initial_high: true,
                toggles: vec![2.0e-10],
            }],
        },
    );
    let Response::Sim { result, .. } = deltad else {
        panic!("expected sim, got {deltad:?}");
    };
    let t = result.timings.expect("delta inherits the session's opt-in");
    assert!(t.total_s > 0.0);

    // ---- extended stats: non-zero quantiles, coherent ordering --------
    let stats = exchange(&mut stream, &mut reader, &Request::Stats { id: 9 });
    let Response::Stats { stats, .. } = stats else {
        panic!("expected stats, got {stats:?}");
    };
    assert_eq!(stats.obs_mode, "trace");
    assert!(stats.sim_p50_s > 0.0, "sim latency histogram recorded");
    assert!(stats.sim_p99_s >= stats.sim_p50_s);
    assert!(stats.batch_p50_s > 0.0);
    assert!(stats.delta_p50_s > 0.0);
    assert!(stats.queue_p99_s >= stats.queue_p50_s);

    // ---- trace drain: the spans behind those numbers ------------------
    let trace = exchange(&mut stream, &mut reader, &Request::Trace { id: 10 });
    let Response::Trace { spans, .. } = trace else {
        panic!("expected trace, got {trace:?}");
    };
    for expected in [
        "program.compile",
        "program.execute",
        "program.execute_fleet",
        "program.execute_delta",
        "execute.bind",
        "execute.infer",
        "execute.finalize",
        "op.sim",
        "op.sim_batch",
        "op.session_open",
        "op.session_delta",
        "pool.queue_wait",
        "serve.decode",
        "serve.encode",
    ] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "journal must hold a {expected:?} span, got {:?}",
            spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    for span in &spans {
        assert!(span.dur_us >= 0.0, "{span:?}");
    }
    // Spans arrive sorted by start time (the exporter's contract).
    for pair in spans.windows(2) {
        assert!(pair[0].start_us <= pair[1].start_us);
    }
    // An `execute.infer` span carries the merged row count.
    assert!(
        spans.iter().any(|s| s.name == "execute.infer"
            && matches!(&s.arg, Some((k, rows)) if k == "rows" && *rows > 0)),
        "inference spans must report row counts"
    );
    // A second drain starts empty (modulo traffic from the drain itself).
    let again = exchange(&mut stream, &mut reader, &Request::Trace { id: 11 });
    let Response::Trace { spans: rest, .. } = again else {
        panic!("expected trace, got {again:?}");
    };
    assert!(
        rest.len() < spans.len(),
        "drain must consume the journal ({} -> {})",
        spans.len(),
        rest.len()
    );

    // The drained spans round-trip into a loadable Chrome trace file —
    // the same conversion `sigctl trace` performs.
    let events: Vec<sigobs::ChromeEvent> = spans
        .iter()
        .map(|s| sigobs::ChromeEvent {
            name: s.name.clone(),
            tid: s.tid,
            start_ns: (s.start_us * 1000.0).round() as u64,
            dur_ns: (s.dur_us * 1000.0).round() as u64,
            arg: s.arg.clone(),
        })
        .collect();
    let json = sigobs::chrome_trace_json(&events, 0);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"op.sim\""));

    // ---- graceful shutdown --------------------------------------------
    let bye = exchange(&mut stream, &mut reader, &Request::Shutdown { id: 99 });
    assert_eq!(bye, Response::ShuttingDown { id: 99 });
    server.join().expect("server exits after shutdown");
}
