//! Property tests for the wire protocol: the decoder must never panic —
//! not on arbitrary bytes, truncated frames or oversized requests — and
//! must yield a structured error for everything invalid; every
//! request/response variant must round-trip exactly.

use std::io::Cursor;

use proptest::prelude::*;
use rand::Rng;
use sigserve::protocol::{
    decode_request, decode_response, encode_request, encode_response, hex64, CacheOutcome,
    CircuitSource, CompareStats, ErrorKind, FrameReader, OutputTrace, PhaseTimings, ProtocolError,
    Request, Response, SessionEdit, SimRequest, SimResult, StatsReply, TimingStats, TraceSpan,
    MAX_BATCH_RUNS, MAX_WIRE_INT,
};

fn drain_frames(bytes: &[u8], cap: usize) -> Vec<Result<String, ProtocolError>> {
    let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()), cap);
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame().expect("cursor I/O cannot fail") {
        frames.push(frame);
    }
    frames
}

proptest! {
    /// Arbitrary bytes through the framing + decoding stack: no panic,
    /// and every frame either decodes or yields a structured error.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        seed in 0u64..u64::MAX,
        len in 0usize..300,
        cap in 1usize..128,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Newline-rich so multi-frame paths get exercised.
        let bytes: Vec<u8> = (0..len)
            .map(|_| if rng.gen_range(0..8u32) == 0 {
                b'\n'
            } else {
                #[allow(clippy::cast_possible_truncation)]
                { rng.gen::<u64>() as u8 }
            })
            .collect();
        for line in drain_frames(&bytes, cap).into_iter().flatten() {
            // Any decode outcome is fine; panics are not.
            let _ = decode_request(&line);
            let _ = decode_response(&line);
        }
    }

    /// Truncating a valid request frame anywhere strictly inside it must
    /// produce a structured error, never a panic or a bogus accept.
    #[test]
    fn truncated_frames_are_structured_errors(
        id in 0u64..1_000_000,
        cut_fraction in 0.0..1.0f64,
    ) {
        let line = encode_request(&Request::Sim { id, sim: SimRequest::default() });
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let cut = ((line.len() - 1) as f64 * cut_fraction) as usize;
        // Cut on a char boundary (ASCII here, but stay robust).
        let mut cut = cut.min(line.len() - 1);
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &line[..cut];
        prop_assert!(
            matches!(decode_request(truncated), Err(ProtocolError::Malformed { .. })),
            "truncation at {} accepted: {:?}", cut, truncated
        );
    }

    /// Oversized frames are rejected with `Oversized` and the stream
    /// recovers: a well-formed follow-up frame still decodes.
    #[test]
    fn oversized_frames_error_and_stream_recovers(
        pad in 1usize..200,
        id in 0u64..1_000_000,
    ) {
        let cap = 64;
        let big = "x".repeat(cap + pad);
        let good = encode_request(&Request::Ping { id });
        prop_assume!(good.len() < cap);
        let input = format!("{big}\n{good}\n");
        let frames = drain_frames(input.as_bytes(), cap);
        prop_assert_eq!(frames.len(), 2);
        prop_assert_eq!(
            frames[0].clone(),
            Err(ProtocolError::Oversized { limit: cap })
        );
        let line = frames[1].clone().expect("second frame intact");
        prop_assert_eq!(decode_request(&line).expect("decodes"), Request::Ping { id });
    }

    /// Every request variant round-trips exactly through encode/decode.
    #[test]
    fn request_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let request = random_request(&mut rng);
        let line = encode_request(&request);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_request(&line).expect("round trip decodes"), request);
    }

    /// Every response variant round-trips exactly through encode/decode,
    /// including full-precision floats and full-range fingerprints.
    #[test]
    fn response_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let response = random_response(&mut rng);
        let line = encode_response(&response);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_response(&line).expect("round trip decodes"), response);
    }
}

use rand::SeedableRng;

fn random_string(rng: &mut rand::rngs::StdRng) -> String {
    let len = rng.gen_range(0..20usize);
    (0..len)
        .map(|_| {
            // Bias toward characters that stress JSON escaping.
            match rng.gen_range(0..6u32) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{7}',
                4 => 'é',
                #[allow(clippy::cast_possible_truncation)]
                _ => char::from(rng.gen_range(u32::from(b' ')..u32::from(b'{')) as u8),
            }
        })
        .collect()
}

fn random_f64(rng: &mut rand::rngs::StdRng) -> f64 {
    // Mix magnitudes; all values finite (non-finite JSON is exercised by
    // the vendored serde_json's own tests).
    let mag = 10f64.powi(rng.gen_range(-15..15i32));
    (rng.gen_range(-1.0..1.0f64)) * mag
}

fn random_sim(rng: &mut rand::rngs::StdRng) -> SimRequest {
    SimRequest {
        circuit: if rng.gen() {
            CircuitSource::Name(random_string(rng))
        } else {
            CircuitSource::Inline(random_string(rng))
        },
        models: random_string(rng),
        library: if rng.gen() {
            "nor-only".to_string()
        } else {
            random_string(rng)
        },
        seed: rng.gen_range(0..MAX_WIRE_INT),
        mu: random_f64(rng).abs().max(1e-15),
        sigma: random_f64(rng).abs().max(1e-15),
        transitions: rng.gen_range(0..1000usize),
        compare: rng.gen(),
        timing: rng.gen(),
        timings: rng.gen(),
    }
}

fn random_edit(rng: &mut rand::rngs::StdRng) -> SessionEdit {
    let n = rng.gen_range(0..5usize);
    let mut t = 0.0;
    let toggles = (0..n)
        .map(|_| {
            t += rng.gen_range(1e-12..1e-10f64);
            t
        })
        .collect();
    SessionEdit {
        net: random_string(rng),
        initial_high: rng.gen(),
        toggles,
    }
}

fn random_request(rng: &mut rand::rngs::StdRng) -> Request {
    let id = rng.gen_range(0..MAX_WIRE_INT);
    match rng.gen_range(0..9u32) {
        0 => Request::Ping { id },
        1 => Request::Stats { id },
        2 => Request::Shutdown { id },
        8 => Request::Trace { id },
        3 => Request::SessionOpen {
            id,
            session: rng.gen_range(0..MAX_WIRE_INT),
            sim: SimRequest {
                // Sessions are sigmoid-only: compare must be off for the
                // encoded frame to decode back.
                compare: false,
                ..random_sim(rng)
            },
        },
        4 => Request::SessionDelta {
            id,
            session: rng.gen_range(0..MAX_WIRE_INT),
            edits: (0..rng.gen_range(0..4usize))
                .map(|_| random_edit(rng))
                .collect(),
        },
        5 => Request::SessionClose {
            id,
            session: rng.gen_range(0..MAX_WIRE_INT),
        },
        6 => {
            let runs = rng.gen_range(1..MAX_BATCH_RUNS + 1);
            Request::SimBatch {
                id,
                sim: SimRequest {
                    // Batches are sigmoid-only, and every derived seed
                    // (`seed + r`) must stay a valid wire integer for the
                    // encoded frame to decode back.
                    compare: false,
                    seed: rng.gen_range(0..MAX_WIRE_INT - MAX_BATCH_RUNS as u64),
                    ..random_sim(rng)
                },
                runs,
            }
        }
        _ => Request::Sim {
            id,
            sim: random_sim(rng),
        },
    }
}

fn random_output(rng: &mut rand::rngs::StdRng) -> OutputTrace {
    let n = rng.gen_range(0..5usize);
    let mut t = 0.0;
    let toggles = (0..n)
        .map(|_| {
            t += rng.gen_range(1e-12..1e-10f64);
            t
        })
        .collect();
    OutputTrace {
        net: random_string(rng),
        initial_high: rng.gen(),
        toggles,
    }
}

fn random_result(rng: &mut rand::rngs::StdRng) -> SimResult {
    SimResult {
        fingerprint: hex64(rng.gen::<u64>()),
        library: if rng.gen() {
            "native".to_string()
        } else {
            random_string(rng)
        },
        cache: if rng.gen() {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        },
        outputs: (0..rng.gen_range(0..4usize))
            .map(|_| random_output(rng))
            .collect(),
        compare: rng.gen::<bool>().then(|| CompareStats {
            t_err_digital: random_f64(rng).abs(),
            t_err_sigmoid: random_f64(rng).abs(),
            error_ratio: random_f64(rng).abs(),
        }),
        timing: rng.gen::<bool>().then(|| TimingStats {
            wall_analog_s: random_f64(rng).abs(),
            wall_digital_s: random_f64(rng).abs(),
            wall_sigmoid_s: random_f64(rng).abs(),
        }),
        timings: rng.gen::<bool>().then(|| PhaseTimings {
            queue_s: random_f64(rng).abs(),
            resolve_s: random_f64(rng).abs(),
            execute_s: random_f64(rng).abs(),
            total_s: random_f64(rng).abs(),
        }),
    }
}

fn random_span(rng: &mut rand::rngs::StdRng) -> TraceSpan {
    TraceSpan {
        name: random_string(rng),
        tid: rng.gen_range(0..1000),
        // Wire times are microsecond floats; keep them exactly
        // round-trippable (shortest-round-trip encoding preserves any
        // f64, so magnitude is unconstrained).
        start_us: random_f64(rng).abs(),
        dur_us: random_f64(rng).abs(),
        arg: rng
            .gen::<bool>()
            .then(|| (random_string(rng), rng.gen_range(0..MAX_WIRE_INT))),
    }
}

fn random_response(rng: &mut rand::rngs::StdRng) -> Response {
    let id = rng.gen_range(0..MAX_WIRE_INT);
    match rng.gen_range(0..9u32) {
        8 => Response::Trace {
            id,
            spans: (0..rng.gen_range(0..4usize))
                .map(|_| random_span(rng))
                .collect(),
            dropped: rng.gen_range(0..MAX_WIRE_INT),
        },
        0 => Response::Pong { id },
        7 => Response::SimBatch {
            id,
            results: (0..rng.gen_range(0..4usize))
                .map(|_| random_result(rng))
                .collect(),
        },
        1 => Response::ShuttingDown { id },
        5 => Response::Session {
            id,
            session: rng.gen_range(0..MAX_WIRE_INT),
            result: random_result(rng),
        },
        6 => Response::SessionClosed {
            id,
            session: rng.gen_range(0..MAX_WIRE_INT),
        },
        2 => Response::Stats {
            id,
            stats: StatsReply {
                model_sets: (0..rng.gen_range(0..3usize))
                    .map(|_| random_string(rng))
                    .collect(),
                model_loads: rng.gen_range(0..MAX_WIRE_INT),
                model_requests: rng.gen_range(0..MAX_WIRE_INT),
                cache_hits: rng.gen_range(0..MAX_WIRE_INT),
                cache_misses: rng.gen_range(0..MAX_WIRE_INT),
                cache_entries: rng.gen_range(0..MAX_WIRE_INT),
                program_hits: rng.gen_range(0..MAX_WIRE_INT),
                program_misses: rng.gen_range(0..MAX_WIRE_INT),
                program_entries: rng.gen_range(0..MAX_WIRE_INT),
                workers: rng.gen_range(0..MAX_WIRE_INT),
                queue_capacity: rng.gen_range(0..MAX_WIRE_INT),
                completed: rng.gen_range(0..MAX_WIRE_INT),
                rejected: rng.gen_range(0..MAX_WIRE_INT),
                sessions_open: rng.gen_range(0..MAX_WIRE_INT),
                delta_hits: rng.gen_range(0..MAX_WIRE_INT),
                gates_reeval: rng.gen_range(0..MAX_WIRE_INT),
                simd_level: ["scalar", "sse2", "avx2"][rng.gen_range(0..3usize)].to_string(),
                fleet_runs: rng.gen_range(0..MAX_WIRE_INT),
                fleet_rows: rng.gen_range(0..MAX_WIRE_INT),
                obs_mode: ["off", "counters", "trace"][rng.gen_range(0..3usize)].to_string(),
                connections_open: rng.gen_range(0..MAX_WIRE_INT),
                frames_pipelined: rng.gen_range(0..MAX_WIRE_INT),
                admission_rejects: rng.gen_range(0..MAX_WIRE_INT),
                sim_p50_s: random_f64(rng).abs(),
                sim_p99_s: random_f64(rng).abs(),
                batch_p50_s: random_f64(rng).abs(),
                batch_p99_s: random_f64(rng).abs(),
                delta_p50_s: random_f64(rng).abs(),
                delta_p99_s: random_f64(rng).abs(),
                queue_p50_s: random_f64(rng).abs(),
                queue_p99_s: random_f64(rng).abs(),
            },
        },
        3 => Response::Error {
            id: if rng.gen() {
                Some(rng.gen_range(0..MAX_WIRE_INT))
            } else {
                None
            },
            kind: *[
                ErrorKind::Protocol,
                ErrorKind::Overloaded,
                ErrorKind::UnknownModels,
                ErrorKind::Circuit,
                ErrorKind::Simulation,
                ErrorKind::UnknownSession,
                ErrorKind::ShuttingDown,
            ]
            .get(rng.gen_range(0..7usize))
            .expect("in range"),
            message: random_string(rng),
        },
        _ => Response::Sim {
            id,
            result: random_result(rng),
        },
    }
}
