//! Router end-to-end: two in-process shard daemons behind a `sigrouter`
//! front door. Proves (1) responses through the router are
//! byte-identical to a standalone daemon serving the same plan, (2) the
//! consistent hash keeps each circuit's cache entry on exactly ONE
//! shard (hot disjoint caches — the scale-out contract), (3) sessions
//! pin to the shard that owns their circuit, and (4) control-plane
//! aggregation (`stats` sums, `shutdown` fans out).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use sigserve::protocol::{
    decode_response, encode_request, CircuitSource, ErrorKind, Request, Response, SessionEdit,
    SimRequest,
};
use sigserve::router::serve_router;
use sigserve::{serve_tcp, Service, ServiceConfig};
use sigsim::{train_models_cached, PipelineConfig};

// The workspace target dir (tests run with cwd = crates/serve): shares
// the ci model cache with every other test and the CI smoke job.
const MODELS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sigmodels");

fn sim(name: &str, seed: u64) -> SimRequest {
    SimRequest {
        circuit: CircuitSource::Name(name.to_string()),
        models: "ci".to_string(),
        library: "nor-only".to_string(),
        seed,
        mu: 60e-12,
        sigma: 25e-12,
        transitions: 3,
        compare: false,
        timing: false,
        timings: false,
    }
}

fn spawn_shard() -> (
    Arc<Service>,
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
) {
    let service = Service::new(ServiceConfig {
        workers: 1,
        models_dir: PathBuf::from(MODELS_DIR),
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind shard");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(&service, listener).expect("shard serves"))
    };
    (service, addr, server)
}

/// The mixed plan: three circuits, several seeds each, repeats for
/// cache hits, plus a session lifecycle on c17. Ids are send order.
fn request_plan() -> Vec<Request> {
    let mut plan = Vec::new();
    let mut id = 0u64;
    // Two identical rounds: round one parses (miss), round two hits the
    // warm per-shard caches.
    for _round in 0..2 {
        for name in ["c17", "c499", "c1355"] {
            for seed in 0..3u64 {
                id += 1;
                plan.push(Request::Sim {
                    id,
                    sim: sim(name, seed),
                });
            }
        }
    }
    id += 1;
    plan.push(Request::SessionOpen {
        id,
        session: 42,
        sim: sim("c17", 77),
    });
    id += 1;
    plan.push(Request::SessionDelta {
        id,
        session: 42,
        // `1` is a c17 primary input in the embedded ISCAS netlist.
        edits: vec![SessionEdit {
            net: "1".to_string(),
            initial_high: true,
            toggles: vec![2.0e-10, 3.5e-10],
        }],
    });
    id += 1;
    plan.push(Request::SessionClose { id, session: 42 });
    plan
}

/// Drives the plan one awaited request at a time; returns the raw
/// response line per request.
fn run_sequential(addr: std::net::SocketAddr, plan: &[Request]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut lines = Vec::new();
    for request in plan {
        writeln!(stream, "{}", encode_request(request)).expect("send");
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "closed mid-plan"
        );
        lines.push(line.trim_end().to_string());
    }
    lines
}

fn one_shot(addr: std::net::SocketAddr, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{}", encode_request(request)).expect("send");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read");
    decode_response(line.trim_end()).expect("decodable")
}

#[test]
fn router_splits_caches_across_shards_and_stays_byte_identical() {
    train_models_cached(
        &PathBuf::from(MODELS_DIR).join("ci.json"),
        &PipelineConfig::ci(),
    )
    .expect("ci models");
    let plan = request_plan();

    // The reference: one standalone daemon, same plan.
    let (_, solo_addr, solo_server) = spawn_shard();
    let golden = run_sequential(solo_addr, &plan);

    // The fleet: two shards behind the router.
    let (shard_a, addr_a, server_a) = spawn_shard();
    let (shard_b, addr_b, server_b) = spawn_shard();
    let router_listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let router_addr = router_listener.local_addr().expect("addr");
    let router = std::thread::spawn(move || {
        serve_router(
            router_listener,
            vec![addr_a.to_string(), addr_b.to_string()],
        )
        .expect("router serves")
    });

    let through_router = run_sequential(router_addr, &plan);
    for (i, (r, g)) in through_router.iter().zip(golden.iter()).enumerate() {
        assert_eq!(r, g, "request {}: router response diverged", i + 1);
    }

    // Local control plane: ping answers without touching a shard;
    // an unknown session errs at the router with the daemon's message.
    assert_eq!(
        one_shot(router_addr, &Request::Ping { id: 1000 }),
        Response::Pong { id: 1000 }
    );
    match one_shot(
        router_addr,
        &Request::SessionDelta {
            id: 1001,
            session: 777,
            edits: vec![],
        },
    ) {
        Response::Error { id, kind, message } => {
            assert_eq!(id, Some(1001));
            assert_eq!(kind, ErrorKind::UnknownSession);
            assert_eq!(message, "session 777 is not open on this connection");
        }
        other => panic!("expected unknown-session, got {other:?}"),
    }

    // Disjoint hot caches: every circuit parsed on exactly one shard,
    // and BOTH shards took real traffic (the hash actually splits the
    // three benchmarks — pinned by the router unit test).
    let stats_a = shard_a.stats();
    let stats_b = shard_b.stats();
    assert!(
        stats_a.completed > 0 && stats_b.completed > 0,
        "both shards must serve: a={}, b={}",
        stats_a.completed,
        stats_b.completed
    );
    assert_eq!(
        stats_a.cache_entries + stats_b.cache_entries,
        3,
        "each circuit cached on exactly one shard: a={}, b={}",
        stats_a.cache_entries,
        stats_b.cache_entries
    );
    assert_eq!(
        stats_a.cache_misses + stats_b.cache_misses,
        3,
        "one parse per circuit fleet-wide"
    );
    // Repeats hit warm per-shard caches: 18 sims (3 misses + 15 hits)
    // plus the session open re-resolving c17 from cache (deltas serve
    // from resident session state, no cache lookup).
    assert_eq!(stats_a.cache_hits + stats_b.cache_hits, 16);

    // Aggregated stats through the router sum the fleet.
    match one_shot(router_addr, &Request::Stats { id: 1002 }) {
        Response::Stats { stats, .. } => {
            assert_eq!(stats.completed, stats_a.completed + stats_b.completed);
            assert_eq!(stats.cache_entries, 3);
            assert!(stats.model_sets.contains(&"ci/nor-only".to_string()));
            assert_eq!(stats.workers, 2, "one worker per shard, summed");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Shutdown fans out: the router acks, both shards exit, the router
    // accept loop exits.
    assert_eq!(
        one_shot(router_addr, &Request::Shutdown { id: 1003 }),
        Response::ShuttingDown { id: 1003 }
    );
    router.join().expect("router exits");
    server_a.join().expect("shard a exits");
    server_b.join().expect("shard b exits");

    one_shot(solo_addr, &Request::Shutdown { id: 1004 });
    solo_server.join().expect("solo exits");
}
