//! Pipelining parity: 64 mixed frames fired down ONE connection without
//! awaiting a single response, against the epoll transport. Every reply
//! must be byte-identical to the sequential golden path (a fresh,
//! identically-configured daemon driven one request at a time) AND
//! arrive in request order — the transport's in-order writeback
//! contract, exercised end to end through sim, sim.batch, session
//! lifecycle, and error frames.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use sigserve::protocol::{
    decode_response, encode_request, CircuitSource, Request, Response, SessionEdit, SimRequest,
};
use sigserve::{serve_tcp, Service, ServiceConfig};
use sigsim::{train_models_cached, PipelineConfig};

// The workspace target dir (tests run with cwd = crates/serve): shares
// the ci model cache with every other test and the CI smoke job.
const MODELS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sigmodels");

/// A small session-friendly netlist with named primary inputs.
const SESSION_CIRCUIT: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

fn sim(circuit: CircuitSource, seed: u64) -> SimRequest {
    SimRequest {
        circuit,
        models: "ci".to_string(),
        library: "nor-only".to_string(),
        seed,
        mu: 60e-12,
        sigma: 25e-12,
        transitions: 3,
        compare: false,
        timing: false,
        timings: false,
    }
}

/// The 64-frame mixed plan, ids `1..=64` in send order: plain sims with
/// repeated sources (cache hits), fleet batches, three session opens,
/// interleaved deltas, a close, and a delta against the closed session
/// (an error frame — ordering and parity apply to errors too).
fn request_plan() -> Vec<Request> {
    let mut plan = Vec::new();
    for id in 1..=64u64 {
        let request = match id {
            5 | 15 | 25 => Request::SessionOpen {
                id,
                session: id / 5, // sessions 1, 3, 5
                sim: sim(CircuitSource::Inline(SESSION_CIRCUIT.to_string()), id),
            },
            10 | 20 | 30 | 40 => Request::SessionDelta {
                id,
                session: if id % 20 == 0 { 3 } else { 1 },
                edits: vec![SessionEdit {
                    net: if id % 20 == 0 { "b" } else { "a" }.to_string(),
                    initial_high: id % 3 == 0,
                    toggles: vec![1.0e-10 + id as f64 * 1.0e-12, 4.0e-10],
                }],
            },
            50 => Request::SessionClose { id, session: 1 },
            // After the close: an unknown-session error, byte-identical
            // and in-order like any other response.
            55 => Request::SessionDelta {
                id,
                session: 1,
                edits: vec![SessionEdit {
                    net: "a".to_string(),
                    initial_high: false,
                    toggles: vec![2.0e-10],
                }],
            },
            _ if id % 8 == 0 => Request::SimBatch {
                id,
                sim: sim(CircuitSource::Name("c17".into()), 500 + id),
                runs: 3,
            },
            // Seeds repeat with period 7 so several frames share a
            // (source, seed) signature and must answer identically.
            _ => Request::Sim {
                id,
                sim: sim(CircuitSource::Name("c17".into()), 900 + id % 7),
            },
        };
        plan.push(request);
    }
    assert_eq!(plan.len(), 64);
    plan
}

/// A daemon whose scheduling cannot reorder: one worker (strict FIFO
/// through the queue) and a queue deep enough that the full pipelined
/// burst is admitted without overload rejects.
fn spawn_daemon() -> (
    Arc<Service>,
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
) {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 256,
        max_inflight: 64,
        admission_budget: 512,
        models_dir: PathBuf::from(MODELS_DIR),
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
    };
    (service, addr, server)
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(
        stream,
        "{}",
        encode_request(&Request::Shutdown { id: 9999 })
    )
    .expect("send");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("ack");
}

/// Sends every frame, then reads: nothing is awaited while sending.
fn run_pipelined(addr: std::net::SocketAddr, plan: &[Request]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for request in plan {
        writeln!(stream, "{}", encode_request(request)).expect("send");
    }
    let reader = BufReader::new(stream);
    reader
        .lines()
        .take(plan.len())
        .map(|l| l.expect("read"))
        .collect()
}

/// The golden path: one frame at a time, each response awaited before
/// the next frame is sent.
fn run_sequential(addr: std::net::SocketAddr, plan: &[Request]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut lines = Vec::new();
    for request in plan {
        writeln!(stream, "{}", encode_request(request)).expect("send");
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read") > 0,
            "daemon closed mid-plan"
        );
        lines.push(line.trim_end().to_string());
    }
    lines
}

#[test]
fn pipelined_burst_is_byte_identical_to_sequential_golden_path() {
    // Shared on-disk ci models so both daemons serve from the same
    // artifact (train once, load twice).
    train_models_cached(
        &PathBuf::from(MODELS_DIR).join("ci.json"),
        &PipelineConfig::ci(),
    )
    .expect("ci models");
    let plan = request_plan();

    let (golden_service, golden_addr, golden_server) = spawn_daemon();
    let golden = run_sequential(golden_addr, &plan);

    let (service, addr, server) = spawn_daemon();
    let pipelined = run_pipelined(addr, &plan);

    assert_eq!(pipelined.len(), 64, "every frame answered");

    // In request order: response i answers request i (ids 1..=64 in
    // send order), even though 64 frames were in flight at once.
    for (i, line) in pipelined.iter().enumerate() {
        let response = decode_response(line).expect("decodable");
        assert_eq!(
            response.id(),
            Some(i as u64 + 1),
            "response {i} out of order: {line}"
        );
    }

    // Byte-identical to the sequential golden path, frame by frame —
    // including the session baselines, the fleet batches, and the
    // unknown-session error after the close.
    for (i, (p, g)) in pipelined.iter().zip(golden.iter()).enumerate() {
        assert_eq!(p, g, "frame {} diverged from golden path", i + 1);
    }

    // The error frame really was an error (the plan exercised one).
    match decode_response(&pipelined[54]).expect("decodable") {
        Response::Error { id, .. } => assert_eq!(id, Some(55)),
        other => panic!("frame 55 should be unknown-session, got {other:?}"),
    }

    // The transport observed actual pipelining; the golden daemon (one
    // request in flight at a time) observed none.
    let stats = service.stats();
    assert!(
        stats.frames_pipelined > 0,
        "burst must be seen as pipelined, stats: {stats:?}"
    );
    assert_eq!(golden_service.stats().frames_pipelined, 0);
    assert_eq!(stats.completed, golden_service.stats().completed);

    shutdown(addr);
    shutdown(golden_addr);
    server.join().expect("server exits");
    golden_server.join().expect("golden server exits");
}
