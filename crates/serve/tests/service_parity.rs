//! The service acceptance test: one daemon, eight concurrent clients,
//! 104 mixed c17/c499/c1355 requests — and every response bit-identical
//! to direct harness calls with the same seeds.
//!
//! Also asserts the resident-artifact guarantees: the model registry
//! loads exactly once (registry counter), and warm-cache requests skip
//! parsing (cache-hit counter matches the number of repeated sources).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigserve::protocol::{
    decode_response, encode_request, CacheOutcome, CircuitSource, Request, Response, SimRequest,
    SimResult,
};
use sigserve::{serve_tcp, Service, ServiceConfig};
use sigsim::{
    compare_circuit, digital_to_sigmoid, random_stimuli, simulate_sigmoid, train_models_cached,
    HarnessConfig, PipelineConfig, StimulusSpec,
};

// The workspace target dir (tests run with cwd = crates/serve): shares
// the ci model cache with every other test and the CI smoke job.
const MODELS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sigmodels");
const MU: f64 = 60e-12;
const SIGMA: f64 = 25e-12;
const TRANSITIONS: usize = 3;

fn sim(circuit: CircuitSource, seed: u64, compare: bool) -> SimRequest {
    SimRequest {
        circuit,
        models: "ci".to_string(),
        library: "nor-only".to_string(),
        seed,
        mu: MU,
        sigma: SIGMA,
        transitions: TRANSITIONS,
        compare,
        timing: false,
        timings: false,
    }
}

/// The request mix: 26 distinct simulations, repeated to 104 total so
/// warm-cache behavior and response determinism are both exercised.
fn request_plan() -> Vec<SimRequest> {
    let c17_inline = sigcircuit::to_bench(
        &sigcircuit::Benchmark::by_name("c17")
            .expect("benchmark")
            .nor_mapped,
    );
    let mut distinct: Vec<(SimRequest, usize)> = Vec::new();
    for seed in 0..18u64 {
        distinct.push((sim(CircuitSource::Name("c17".into()), seed, true), 4));
    }
    for seed in 0..2u64 {
        distinct.push((
            sim(CircuitSource::Inline(c17_inline.clone()), 100 + seed, true),
            4,
        ));
    }
    for seed in 0..2u64 {
        distinct.push((sim(CircuitSource::Name("c499".into()), 200 + seed, true), 2));
    }
    for seed in 0..2u64 {
        distinct.push((
            sim(CircuitSource::Name("c1355".into()), 300 + seed, true),
            2,
        ));
    }
    for seed in 0..4u64 {
        distinct.push((sim(CircuitSource::Name("c17".into()), 400 + seed, false), 4));
    }
    let mut plan = Vec::new();
    for (request, reps) in distinct {
        for _ in 0..reps {
            plan.push(request.clone());
        }
    }
    assert_eq!(plan.len(), 104);
    plan
}

/// A stable signature for grouping repeated requests.
fn signature(sim: &SimRequest) -> (String, u64, bool) {
    let circuit = match &sim.circuit {
        CircuitSource::Name(n) => format!("name:{n}"),
        CircuitSource::Inline(t) => {
            format!("inline:{:016x}", sigcircuit::content_hash(t.as_bytes()))
        }
    };
    (circuit, sim.seed, sim.compare)
}

/// One client: its own connection, requests pipelined, responses
/// collected by id.
fn run_client(
    addr: std::net::SocketAddr,
    requests: Vec<(u64, SimRequest)>,
) -> Vec<(u64, SimResult)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for (id, sim) in &requests {
        writeln!(
            stream,
            "{}",
            encode_request(&Request::Sim {
                id: *id,
                sim: sim.clone()
            })
        )
        .expect("send");
    }
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut results = Vec::new();
    for line in reader.lines() {
        let line = line.expect("read");
        match decode_response(&line).expect("decodable response") {
            Response::Sim { id, result } => results.push((id, result)),
            other => panic!("unexpected response {other:?}"),
        }
        if results.len() == requests.len() {
            break;
        }
    }
    results
}

/// The direct-harness reference for one request (no service anywhere).
fn direct_reference(sim: &SimRequest, artifacts: &DirectArtifacts) -> SimResult {
    let circuit = match &sim.circuit {
        CircuitSource::Name(n) => {
            sigcircuit::Benchmark::by_name(n)
                .expect("benchmark")
                .nor_mapped
        }
        CircuitSource::Inline(t) => sigcircuit::parse_bench(t).expect("bench text"),
    };
    let spec = StimulusSpec::new(sim.mu, sim.sigma, sim.transitions);
    let mut rng = StdRng::seed_from_u64(sim.seed);
    let stimuli = random_stimuli(&circuit, &spec, &mut rng);
    let threshold = sigwave::VDD_DEFAULT / 2.0;
    let outputs;
    let compare;
    if sim.compare {
        let outcome = compare_circuit(
            &circuit,
            &stimuli,
            &artifacts.models,
            &artifacts.delays,
            &HarnessConfig::default(),
        )
        .expect("direct compare");
        outputs = outcome
            .bundles
            .iter()
            .map(|b| {
                let d = b.sigmoid.digitize(threshold);
                sigserve::protocol::OutputTrace {
                    net: b.net.clone(),
                    initial_high: d.initial().is_high(),
                    toggles: d.toggles().to_vec(),
                }
            })
            .collect();
        compare = Some(sigserve::protocol::CompareStats {
            t_err_digital: outcome.t_err_digital,
            t_err_sigmoid: outcome.t_err_sigmoid,
            error_ratio: outcome.error_ratio(),
        });
    } else {
        let sigmoid_stimuli: HashMap<_, _> = stimuli
            .iter()
            .map(|(&net, trace)| {
                (
                    net,
                    Arc::new(digital_to_sigmoid(trace, sigwave::VDD_DEFAULT)),
                )
            })
            .collect();
        let result = simulate_sigmoid(
            &circuit,
            &sigmoid_stimuli,
            &artifacts.models,
            sigtom::TomOptions::default(),
        )
        .expect("direct sigmoid sim");
        outputs = circuit
            .outputs()
            .iter()
            .map(|&o| {
                let d = result.trace(o).digitize(threshold);
                sigserve::protocol::OutputTrace {
                    net: circuit.net_name(o).to_string(),
                    initial_high: d.initial().is_high(),
                    toggles: d.toggles().to_vec(),
                }
            })
            .collect();
        compare = None;
    }
    SimResult {
        fingerprint: sigserve::protocol::hex64(circuit.fingerprint()),
        library: "nor-only".to_string(),
        // The cache field is scheduling metadata; parity below compares
        // it separately (first request per source = miss, rest = hits).
        cache: CacheOutcome::Miss,
        outputs,
        compare,
        timing: None,
        timings: None,
    }
}

struct DirectArtifacts {
    models: sigsim::GateModels,
    delays: sigchar::DelayTable,
}

/// `sim.batch` parity: entry `r` of a fleet execution is bit-identical
/// to the individual `sim` request with seed `seed + r`, and the fleet
/// counters account for it.
#[test]
fn sim_batch_matches_individual_requests() {
    train_models_cached(
        &PathBuf::from(MODELS_DIR).join("ci.json"),
        &PipelineConfig::ci(),
    )
    .expect("ci models");
    let service = Service::new(ServiceConfig {
        models_dir: PathBuf::from(MODELS_DIR),
        ..ServiceConfig::default()
    });
    let base = sim(CircuitSource::Name("c17".into()), 700, false);
    let runs = 5;
    let batch = service.execute_sim_batch(&base, runs).expect("batch");
    assert_eq!(batch.len(), runs);
    for (r, got) in batch.iter().enumerate() {
        let single = service
            .execute_sim(&SimRequest {
                seed: base.seed + r as u64,
                ..base.clone()
            })
            .expect("individual run");
        assert_eq!(got.fingerprint, single.fingerprint, "run {r}");
        // Bit-identical traces: exact f64 equality, fleet vs solo.
        assert_eq!(got.outputs, single.outputs, "run {r} diverged");
    }
    let stats = service.stats();
    assert_eq!(stats.fleet_runs, runs as u64);
    assert!(stats.fleet_rows > 0, "fleet batches merged rows");
    assert!(
        ["scalar", "sse2", "avx2"].contains(&stats.simd_level.as_str()),
        "stats report the active SIMD level, got {:?}",
        stats.simd_level
    );
}

#[test]
fn daemon_matches_direct_harness_bit_for_bit() {
    // Train (or load) the shared ci models *before* the daemon starts so
    // both sides read the same on-disk artifact.
    let trained = train_models_cached(
        &PathBuf::from(MODELS_DIR).join("ci.json"),
        &PipelineConfig::ci(),
    )
    .expect("ci models");
    let artifacts = DirectArtifacts {
        models: trained.gate_models(),
        delays: sigchar::DelayTable::measure(
            1..=6,
            &sigchar::AnalogOptions::default(),
            &nanospice::EngineConfig::default(),
        )
        .expect("delay table"),
    };

    let service = Service::new(ServiceConfig {
        workers: 0,
        queue_capacity: 256,
        cache_capacity: 16,
        models_dir: PathBuf::from(MODELS_DIR),
        ..ServiceConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
    };

    // ---- the storm: 8 clients × 13 requests ------------------------------
    let plan = request_plan();
    let ids: Vec<(u64, SimRequest)> = plan
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, sim)| (i as u64, sim))
        .collect();
    let chunks: Vec<Vec<(u64, SimRequest)>> = ids.chunks(13).map(<[_]>::to_vec).collect();
    assert_eq!(chunks.len(), 8, "eight concurrent clients");
    let responses: Vec<(u64, SimResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || run_client(addr, chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(responses.len(), 104, "every request answered");

    // ---- resident-artifact guarantees ------------------------------------
    let stats = service.stats();
    assert_eq!(stats.model_loads, 1, "models loaded exactly once");
    assert_eq!(stats.model_requests, 104);
    assert_eq!(
        stats.cache_misses, 4,
        "4 distinct circuit sources parse once each"
    );
    assert_eq!(stats.cache_hits, 100, "warm-cache requests skip parsing");
    assert_eq!(stats.completed, 104);
    assert_eq!(stats.rejected, 0, "queue sized for the storm");

    // Per response: the first completion of a source is the miss; all
    // repeats are hits. Across the plan that is 4 misses total.
    let miss_count = responses
        .iter()
        .filter(|(_, r)| r.cache == CacheOutcome::Miss)
        .count();
    assert_eq!(miss_count, 4);

    // ---- bit-identical parity with direct harness calls ------------------
    let by_id: HashMap<u64, &SimResult> = responses.iter().map(|(id, r)| (*id, r)).collect();
    let mut references: HashMap<(String, u64, bool), SimResult> = HashMap::new();
    for (id, sim) in &ids {
        let service_result = by_id[id];
        let reference = references
            .entry(signature(sim))
            .or_insert_with(|| direct_reference(sim, &artifacts));
        assert_eq!(
            service_result.fingerprint, reference.fingerprint,
            "request {id}: circuit identity"
        );
        // Bit-identical: exact f64 equality on every numeric field.
        assert_eq!(
            service_result.outputs, reference.outputs,
            "request {id}: output traces differ from direct call"
        );
        assert_eq!(
            service_result.compare, reference.compare,
            "request {id}: t_err statistics differ from direct call"
        );
    }

    // Repeated requests are byte-identical to each other (cache state
    // must not leak into numerics) — compare full results per signature.
    let mut groups: HashMap<(String, u64, bool), Vec<&SimResult>> = HashMap::new();
    for (id, sim) in &ids {
        groups.entry(signature(sim)).or_default().push(by_id[id]);
    }
    for (sig, group) in &groups {
        for r in &group[1..] {
            assert_eq!(
                r.outputs, group[0].outputs,
                "{sig:?}: repeated request diverged"
            );
            assert_eq!(r.compare, group[0].compare);
        }
    }

    // ---- graceful shutdown ------------------------------------------------
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(
        stream,
        "{}",
        encode_request(&Request::Shutdown { id: 9999 })
    )
    .expect("send");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("ack");
    assert_eq!(
        decode_response(line.trim()).expect("response"),
        Response::ShuttingDown { id: 9999 }
    );
    server.join().expect("server exits after shutdown");
}
