//! `sigctl` — client and tooling for the `sigserve` daemon.
//!
//! ```text
//! sigctl request [sim flags]                  # print a request frame
//! sigctl send    --addr HOST:PORT [sim flags] [--vcd PATH]
//! sigctl golden  [sim flags] [--models-dir PATH] [--edit SPEC]...
//! sigctl session open  --session N [sim flags] [--print]
//! sigctl session delta --session N [--edit SPEC]... [--print]
//! sigctl session close --session N [--print]
//! sigctl ping|stats|shutdown --addr HOST:PORT
//! sigctl stats --json [--addr HOST:PORT]
//! sigctl trace [--out PATH] [--addr HOST:PORT]
//! sigctl verify --circuit <name|path> --library <lib> [--json]
//! ```
//!
//! Sim flags: `--circuit <name|path>` (an existing file is sent inline —
//! `.bench` or JSON, auto-detected), `--models NAME`,
//! `--library nor-only|native` (cell library + mapping policy), `--seed
//! N`, `--mu SECONDS`, `--sigma SECONDS`, `--transitions N`,
//! `--compare`, `--no-timing`, `--timings` (per-phase breakdown echoed
//! on the response), `--id N`, `--runs K`.
//!
//! `stats --json` prints the bare stats object (stable key order,
//! shortest-round-trip floats) instead of the full response frame —
//! the scripting-friendly form, including the latency quantiles
//! (`sim_p50_s`, `sim_p99_s`, ...) and the daemon's `obs_mode`.
//!
//! `trace` drains the daemon's span journal (populated when it runs
//! with `SIG_OBS=trace` or `--trace`) and writes a Chrome trace-event
//! JSON document to `--out` (stdout by default) — load it in
//! `chrome://tracing` or Perfetto.
//!
//! `--runs K` (K > 1) switches `request`/`send` to the batched
//! `sim.batch` op: the daemon executes K runs as one fleet, run `r`
//! seeded `seed + r`, and `send` explodes the reply into K individual
//! `sim` frames — byte-comparable (with `--no-timing`) to the K frames
//! `golden --runs K` prints by looping the reference path over the same
//! derived seeds.
//!
//! `golden` computes the response **without any service**: it builds the
//! circuit and models directly and calls the same harness entry points a
//! library user would. Because the service is a scheduling layer and
//! never a numerics layer, `sigserve --stdio` fed the matching `request`
//! frame must produce the byte-identical response (the CI smoke job
//! diffs exactly that; use `--no-timing` so no wall-clock field varies).
//!
//! `session` drives the incremental engine: `open` settles a baseline
//! and leaves it resident, `delta` replaces the stimuli of named inputs
//! (`--edit NET=LEVEL[,t1,t2,...]` where `LEVEL` is `0`/`low` or
//! `1`/`high` and the times are toggle seconds), `close` releases it.
//! Sessions live on one connection, so a one-shot `session delta` over
//! TCP answers `unknown-session` — pipe a whole open/delta/close script
//! into `sigserve --stdio` instead, printing each frame with `--print`.
//! A delta response must equal `golden` run with the same `--edit` flags
//! on the session's sim parameters (modulo the cache hit/miss echo);
//! `stats` reports `sessions_open`/`delta_hits`/`gates_reeval`.
//!
//! `verify` runs **no service at all**: it maps the circuit exactly the
//! way the daemon would for the given `--library` (benchmark names use
//! the precomputed mapped artifact, inline files go through
//! `map_for_simulation`) and then *proves* the mapped circuit
//! boolean-equivalent to the original with the `sigcheck` SAT pipeline
//! (Tseitin miter + simulation-guided sweeping). Human output is a
//! per-output attribution summary; `--json` prints one machine-readable
//! object. Exit status: `0` proven equivalent, `1` inequivalent (the
//! counterexample input assignment is printed), `3` undecided within
//! the conflict budget.
//!
//! `send --vcd PATH` additionally writes the response's output traces as
//! a VCD file for waveform viewers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use sigserve::protocol::{
    decode_response, encode_request, encode_response, CacheOutcome, CircuitSource, Request,
    Response, SessionEdit, SimRequest,
};
use sigserve::{run_sim_edited, ModelSet};
use sigwave::{DigitalTrace, Level, VcdSignal};

fn usage() -> ! {
    eprintln!(
        "usage: sigctl <request|send|golden|verify|session|ping|stats|trace|shutdown> \
         [open|delta|close] [--addr HOST:PORT] [--circuit NAME|PATH] \
         [--models NAME] [--library nor-only|native] [--seed N] [--mu S] \
         [--sigma S] [--transitions N] [--compare] [--no-timing] [--timings] \
         [--id N] [--runs K] [--session N] [--edit NET=LEVEL[,T1,T2,...]] \
         [--print] [--json] [--out PATH] [--models-dir PATH] [--vcd PATH]"
    );
    std::process::exit(2);
}

struct Options {
    addr: String,
    id: u64,
    sim: SimRequest,
    runs: usize,
    session: u64,
    edits: Vec<SessionEdit>,
    print: bool,
    json: bool,
    out: Option<std::path::PathBuf>,
    models_dir: std::path::PathBuf,
    vcd: Option<std::path::PathBuf>,
}

fn parse_options(mut args: sigserve::cli::CliArgs) -> Options {
    let mut o = Options {
        addr: "127.0.0.1:4715".to_string(),
        id: 1,
        sim: SimRequest::default(),
        runs: 1,
        session: 1,
        edits: Vec::new(),
        print: false,
        json: false,
        out: None,
        models_dir: std::path::PathBuf::from("target/sigmodels"),
        vcd: None,
    };
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--addr" => o.addr = require(args.value()),
            "--id" => o.id = parse(args.parse()),
            "--circuit" => {
                let v = require(args.value());
                o.sim.circuit = if std::path::Path::new(&v).is_file() {
                    let text = std::fs::read_to_string(&v).unwrap_or_else(|e| {
                        eprintln!("sigctl: cannot read {v}: {e}");
                        std::process::exit(1);
                    });
                    CircuitSource::Inline(text)
                } else {
                    CircuitSource::Name(v)
                };
            }
            "--models" => o.sim.models = require(args.value()),
            "--library" => o.sim.library = require(args.value()),
            "--seed" => o.sim.seed = parse(args.parse()),
            "--mu" => o.sim.mu = parse(args.parse()),
            "--sigma" => o.sim.sigma = parse(args.parse()),
            "--transitions" => o.sim.transitions = parse(args.parse()),
            "--compare" => o.sim.compare = true,
            "--no-timing" => o.sim.timing = false,
            "--timings" => o.sim.timings = true,
            "--runs" => o.runs = parse(args.parse()),
            "--session" => o.session = parse(args.parse()),
            "--edit" => o.edits.push(parse_edit(&require(args.value()))),
            "--print" => o.print = true,
            "--json" => o.json = true,
            "--out" => o.out = Some(require(args.value()).into()),
            "--models-dir" => o.models_dir = require(args.value()).into(),
            "--vcd" => o.vcd = Some(require(args.value()).into()),
            _ => usage(),
        }
    }
    o
}

fn parse<T>(value: Option<T>) -> T {
    value.unwrap_or_else(|| usage())
}

/// Parses one `--edit` value: `NET=LEVEL[,T1,T2,...]` with `LEVEL` in
/// `0`/`low`/`1`/`high` and strictly increasing toggle times in seconds
/// (an omitted tail means the input is held constant at `LEVEL`).
fn parse_edit(spec: &str) -> SessionEdit {
    let malformed = || -> ! {
        eprintln!("sigctl: --edit expects NET=LEVEL[,T1,T2,...], got {spec:?}");
        std::process::exit(2);
    };
    let Some((net, rest)) = spec.split_once('=') else {
        malformed()
    };
    if net.is_empty() {
        malformed();
    }
    let mut tokens = rest.split(',');
    let initial_high = match tokens.next() {
        Some("1" | "high") => true,
        Some("0" | "low") => false,
        _ => malformed(),
    };
    let toggles = tokens
        .map(|t| match t.parse::<f64>() {
            Ok(v) => v,
            Err(_) => malformed(),
        })
        .collect();
    SessionEdit {
        net: net.to_string(),
        initial_high,
        toggles,
    }
}

fn main() {
    let mut args = sigserve::cli::CliArgs::from_env();
    let Some(command) = args.next_arg() else {
        usage()
    };
    let command = command.as_str();
    // `session` has a subcommand word before the flags.
    let sub = (command == "session").then(|| parse(args.next_arg()));
    let o = parse_options(args);
    match command {
        "session" => {
            let request = match sub.as_deref() {
                Some("open") => Request::SessionOpen {
                    id: o.id,
                    session: o.session,
                    sim: o.sim.clone(),
                },
                Some("delta") => Request::SessionDelta {
                    id: o.id,
                    session: o.session,
                    edits: o.edits.clone(),
                },
                Some("close") => Request::SessionClose {
                    id: o.id,
                    session: o.session,
                },
                _ => usage(),
            };
            if o.print {
                println!("{}", encode_request(&request));
            } else {
                finish(&exchange(&o.addr, &request));
            }
        }
        "request" => {
            println!("{}", encode_request(&sim_request(&o)));
        }
        "golden" => golden(&o),
        "send" => {
            let response = exchange(&o.addr, &sim_request(&o));
            if let Response::SimBatch { id, results } = response {
                // Explode the fleet reply into one `sim` frame per run,
                // byte-comparable to the frames `golden --runs K` prints.
                for result in results {
                    println!("{}", encode_response(&Response::Sim { id, result }));
                }
                return;
            }
            if let (Some(path), Response::Sim { result, .. }) = (&o.vcd, &response) {
                write_vcd_file(path, result);
            }
            finish(&response);
        }
        "ping" => finish(&exchange(&o.addr, &Request::Ping { id: o.id })),
        "stats" => {
            let response = exchange(&o.addr, &Request::Stats { id: o.id });
            if o.json {
                print_stats_json(&response);
            } else {
                finish(&response);
            }
        }
        "trace" => trace(&o),
        "verify" => verify(&o),
        "shutdown" => finish(&exchange(&o.addr, &Request::Shutdown { id: o.id })),
        _ => usage(),
    }
}

/// Prints the bare `stats` object of a stats response: the encoder's
/// stable key order and shortest-round-trip floats, without the frame
/// envelope — one parseable JSON object for scripts and dashboards.
fn print_stats_json(response: &Response) {
    if !matches!(response, Response::Stats { .. }) {
        finish(response);
        return;
    }
    let frame = encode_response(response);
    let value: serde::Value = serde_json::from_str(&frame).unwrap_or_else(|e| {
        eprintln!("sigctl: stats frame unparseable: {e}");
        std::process::exit(1);
    });
    let stats = value.get_field("stats").unwrap_or_else(|e| {
        eprintln!("sigctl: stats frame malformed: {e}");
        std::process::exit(1);
    });
    match serde_json::to_string(stats) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("sigctl: stats re-encode failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Fetches the daemon's span journal and writes it as a Chrome
/// trace-event JSON document (`--out PATH`, stdout by default).
fn trace(o: &Options) {
    let response = exchange(&o.addr, &Request::Trace { id: o.id });
    let Response::Trace { spans, dropped, .. } = response else {
        finish(&response);
        return;
    };
    let events: Vec<sigobs::ChromeEvent> = spans
        .into_iter()
        .map(|s| sigobs::ChromeEvent {
            name: s.name,
            tid: s.tid,
            start_ns: (s.start_us * 1000.0).round() as u64,
            dur_ns: (s.dur_us * 1000.0).round() as u64,
            arg: s.arg,
        })
        .collect();
    let json = sigobs::chrome_trace_json(&events, dropped);
    match &o.out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("sigctl: cannot write {}: {e}", path.display());
                std::process::exit(1);
            });
            eprintln!(
                "sigctl: wrote {} spans ({dropped} dropped) to {}",
                events.len(),
                path.display()
            );
        }
        None => println!("{json}"),
    }
}

/// The stateless sim request `request`/`send` issue: plain `sim` for a
/// single run, `sim.batch` when `--runs` asks for a fleet.
fn sim_request(o: &Options) -> Request {
    if o.runs > 1 {
        Request::SimBatch {
            id: o.id,
            sim: o.sim.clone(),
            runs: o.runs,
        }
    } else {
        Request::Sim {
            id: o.id,
            sim: o.sim.clone(),
        }
    }
}

/// Prints the response and exits nonzero on protocol-level errors.
fn finish(response: &Response) {
    println!("{}", encode_response(response));
    if matches!(response, Response::Error { .. }) {
        std::process::exit(1);
    }
}

/// Sends one request and waits for the response with the matching id
/// (other responses on the stream are printed as they pass).
fn exchange(addr: &str, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("sigctl: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    writeln!(stream, "{}", encode_request(request)).unwrap_or_else(|e| {
        eprintln!("sigctl: send failed: {e}");
        std::process::exit(1);
    });
    let reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("sigctl: stream clone failed: {e}");
        std::process::exit(1);
    }));
    for line in reader.lines() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("sigctl: read failed: {e}");
            std::process::exit(1);
        });
        match decode_response(&line) {
            Ok(r) if r.id() == Some(request.id()) || r.id().is_none() => return r,
            Ok(other) => println!("{}", encode_response(&other)),
            Err(e) => {
                eprintln!("sigctl: undecodable response {line:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("sigctl: connection closed before a response arrived");
    std::process::exit(1);
}

/// The no-service reference path: build everything directly, run the
/// same numerics, print the response frame.
fn golden(o: &Options) {
    let Some(policy) = sigcircuit::MappingPolicy::from_name(&o.sim.library) else {
        eprintln!(
            "sigctl: golden supports libraries {} only, not {:?}",
            sigserve::registry::LIBRARIES.join("/"),
            o.sim.library
        );
        std::process::exit(1);
    };
    let circuit = match &o.sim.circuit {
        CircuitSource::Name(name) => sigcircuit::Benchmark::by_name(name)
            .map(|b| b.circuit_for(policy).clone())
            .unwrap_or_else(|n| {
                eprintln!("sigctl: unknown benchmark {n:?}");
                std::process::exit(1);
            }),
        CircuitSource::Inline(text) => {
            let parsed = sigcircuit::parse_circuit(text, sigcircuit::sniff_format(text))
                .unwrap_or_else(|e| {
                    eprintln!("sigctl: {e}");
                    std::process::exit(1);
                });
            sigserve::service::map_for_simulation(parsed, policy)
        }
    };
    // The exact preset table the daemon's registry uses, so golden loads
    // the identical on-disk artifact.
    let Some((config, cache_file)) = sigserve::preset_config(&o.sim.models) else {
        eprintln!(
            "sigctl: golden supports preset models only ({}), not {:?}",
            sigserve::registry::PRESETS.join("/"),
            o.sim.models
        );
        std::process::exit(1);
    };
    let fail = |e: sigsim::PipelineError| -> ! {
        eprintln!("sigctl: model pipeline failed: {e}");
        std::process::exit(1);
    };
    let (trained, cells) = match policy {
        sigcircuit::MappingPolicy::NorOnly => {
            let trained = sigsim::train_models_cached(&o.models_dir.join(cache_file), &config)
                .unwrap_or_else(|e| fail(e));
            let cells = Arc::new(sigsim::CellModels::nor_only(&trained.gate_models()));
            (Some(Arc::new(trained)), cells)
        }
        sigcircuit::MappingPolicy::Native => {
            let library = sigsim::train_cell_library_cached(
                &sigsim::native_cache_path(&o.models_dir.join(cache_file)),
                &sigsim::LibrarySpec::native(),
                &config,
            )
            .unwrap_or_else(|e| fail(e));
            (None, Arc::new(library.cell_models()))
        }
    };
    let set = ModelSet {
        name: o.sim.models.clone(),
        library: o.sim.library.clone(),
        policy,
        trained,
        cells,
        // Lazy like the daemon's registry sets: measured only when the
        // request actually compares, with the policy's cell classes.
        delays: sigserve::registry::DelaySource::for_policy(policy),
        options: sigtom::TomOptions::default(),
    };
    // A fresh daemon's first request is always a cache miss; golden
    // mirrors that so the frames compare byte-for-byte. `--edit` flags
    // replace the seeded stimuli of named inputs first, producing the
    // full-run reference a `session.delta` response must match. With
    // `--runs K` the reference loops over the fleet's derived seeds
    // (`seed + r`), printing the K frames a `send --runs K` explosion
    // must equal.
    for r in 0..o.runs.max(1) as u64 {
        let run = SimRequest {
            seed: o.sim.seed + r,
            ..o.sim.clone()
        };
        match run_sim_edited(&circuit, &set, &run, &o.edits, CacheOutcome::Miss) {
            Ok(result) => finish(&Response::Sim { id: o.id, result }),
            Err((kind, message)) => finish(&Response::Error {
                id: Some(o.id),
                kind,
                message,
            }),
        }
    }
}

/// `sigctl verify`: prove the `--library` mapping of `--circuit`
/// boolean-equivalent to the original circuit, no daemon involved.
fn verify(o: &Options) {
    let Some(policy) = sigcircuit::MappingPolicy::from_name(&o.sim.library) else {
        eprintln!(
            "sigctl: verify supports libraries {} only, not {:?}",
            sigserve::registry::LIBRARIES.join("/"),
            o.sim.library
        );
        std::process::exit(2);
    };
    // Verify the artifact the daemon would actually simulate: the
    // precomputed mapped benchmark for names, `map_for_simulation` for
    // inline files.
    let (label, original, mapped) = match &o.sim.circuit {
        CircuitSource::Name(name) => {
            let bench = sigcircuit::Benchmark::by_name(name).unwrap_or_else(|n| {
                eprintln!("sigctl: unknown benchmark {n:?}");
                std::process::exit(1);
            });
            (
                name.clone(),
                bench.original.clone(),
                bench.circuit_for(policy).clone(),
            )
        }
        CircuitSource::Inline(text) => {
            let parsed = sigcircuit::parse_circuit(text, sigcircuit::sniff_format(text))
                .unwrap_or_else(|e| {
                    eprintln!("sigctl: {e}");
                    std::process::exit(1);
                });
            let mapped = sigserve::service::map_for_simulation(parsed.clone(), policy);
            ("<inline>".to_string(), parsed, mapped)
        }
    };
    let result = sigcheck::verify_mapping(&original, &mapped).unwrap_or_else(|e| {
        eprintln!("sigctl: verify cannot tie interfaces: {e}");
        std::process::exit(1);
    });
    if o.json {
        println!(
            "{}",
            verify_json(&label, &o.sim.library, &original, &result)
        );
    } else {
        print_verify_human(&label, &o.sim.library, &original, &mapped, &result);
    }
    match result.verdict {
        sigcheck::EquivVerdict::Equivalent => {}
        sigcheck::EquivVerdict::Inequivalent => std::process::exit(1),
        sigcheck::EquivVerdict::Unknown => std::process::exit(3),
    }
}

fn print_verify_human(
    label: &str,
    library: &str,
    original: &sigcircuit::Circuit,
    mapped: &sigcircuit::Circuit,
    result: &sigcheck::EquivResult,
) {
    let proven = count_verdict(result, sigcheck::OutputVerdict::Proven);
    let refuted = count_verdict(result, sigcheck::OutputVerdict::Refuted);
    let unknown = count_verdict(result, sigcheck::OutputVerdict::Unknown);
    println!(
        "verify {label} vs {library}: {} ({} -> {} gates)",
        result.verdict.as_str().to_uppercase(),
        original.gates().len(),
        mapped.gates().len(),
    );
    println!("  outputs: {proven} proven, {refuted} refuted, {unknown} unknown");
    println!(
        "  sweep: {}/{} internal equivalences proven",
        result.proven_pairs, result.candidates
    );
    println!(
        "  search: {} decisions, {} propagations, {} conflicts over {} solver calls",
        result.stats.decisions,
        result.stats.propagations,
        result.stats.conflicts,
        result.stats.solves,
    );
    for check in &result.outputs {
        if check.verdict != sigcheck::OutputVerdict::Proven {
            println!(
                "  output {}: {} ({} conflicts)",
                check.name,
                check.verdict.as_str(),
                check.conflicts
            );
        }
    }
    if let Some(cex) = &result.counterexample {
        println!(
            "  counterexample: output {} is {} in the original but {} when mapped, under:",
            cex.output_name,
            u8::from(cex.original_value),
            u8::from(cex.mapped_value),
        );
        let assignment: Vec<String> = original
            .inputs()
            .iter()
            .zip(&cex.inputs)
            .map(|(&net, &bit)| format!("{}={}", original.net_name(net), u8::from(bit)))
            .collect();
        println!("    {}", assignment.join(" "));
    }
}

fn count_verdict(result: &sigcheck::EquivResult, v: sigcheck::OutputVerdict) -> usize {
    result.outputs.iter().filter(|c| c.verdict == v).count()
}

/// One machine-readable JSON object for `verify --json` (the encoder's
/// stable key order; counterexample `null` when equivalent).
fn verify_json(
    label: &str,
    library: &str,
    original: &sigcircuit::Circuit,
    result: &sigcheck::EquivResult,
) -> String {
    use serde::Value;
    let outputs = Value::Arr(
        result
            .outputs
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    (
                        "verdict".to_string(),
                        Value::Str(c.verdict.as_str().to_string()),
                    ),
                    ("conflicts".to_string(), Value::Num(c.conflicts as f64)),
                ])
            })
            .collect(),
    );
    let counterexample = match &result.counterexample {
        None => Value::Null,
        Some(cex) => Value::Obj(vec![
            (
                "inputs".to_string(),
                Value::Obj(
                    original
                        .inputs()
                        .iter()
                        .zip(&cex.inputs)
                        .map(|(&net, &bit)| (original.net_name(net).to_string(), Value::Bool(bit)))
                        .collect(),
                ),
            ),
            ("output".to_string(), Value::Str(cex.output_name.clone())),
            ("original".to_string(), Value::Bool(cex.original_value)),
            ("mapped".to_string(), Value::Bool(cex.mapped_value)),
        ]),
    };
    let value = Value::Obj(vec![
        ("circuit".to_string(), Value::Str(label.to_string())),
        ("library".to_string(), Value::Str(library.to_string())),
        (
            "verdict".to_string(),
            Value::Str(result.verdict.as_str().to_string()),
        ),
        ("outputs".to_string(), outputs),
        ("counterexample".to_string(), counterexample),
        (
            "candidates".to_string(),
            Value::Num(result.candidates as f64),
        ),
        (
            "proven_pairs".to_string(),
            Value::Num(result.proven_pairs as f64),
        ),
        (
            "stats".to_string(),
            Value::Obj(vec![
                (
                    "decisions".to_string(),
                    Value::Num(result.stats.decisions as f64),
                ),
                (
                    "propagations".to_string(),
                    Value::Num(result.stats.propagations as f64),
                ),
                (
                    "conflicts".to_string(),
                    Value::Num(result.stats.conflicts as f64),
                ),
                ("solves".to_string(), Value::Num(result.stats.solves as f64)),
            ]),
        ),
    ]);
    serde_json::to_string(&value).unwrap_or_else(|e| {
        eprintln!("sigctl: verify JSON encode failed: {e}");
        std::process::exit(1);
    })
}

fn write_vcd_file(path: &std::path::Path, result: &sigserve::SimResult) {
    let signals: Vec<VcdSignal> = result
        .outputs
        .iter()
        .map(|o| {
            let trace = DigitalTrace::new(Level::from_bool(o.initial_high), o.toggles.clone())
                .unwrap_or_else(|e| {
                    eprintln!("sigctl: response trace for {} invalid: {e}", o.net);
                    std::process::exit(1);
                });
            VcdSignal::digital(o.net.clone(), &trace)
        })
        .collect();
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("sigctl: cannot create {}: {e}", path.display());
        std::process::exit(1);
    });
    sigwave::write_vcd(&mut file, &signals).unwrap_or_else(|e| {
        eprintln!("sigctl: VCD write failed: {e}");
        std::process::exit(1);
    });
    eprintln!("sigctl: wrote {}", path.display());
}
