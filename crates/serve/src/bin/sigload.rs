//! `sigload` — load generator for a running `sigserve` daemon, with a
//! closed-loop mode (fixed request count, next request sent when the
//! previous response arrives) and an open-loop saturation mode
//! (`--duration`, each connection keeps `--pipeline` requests in
//! flight for a fixed wall-clock window).
//!
//! ```text
//! sigload [--addr HOST:PORT] [--connections N] [--requests M]
//!         [--circuit NAME|PATH] [--models NAME] [--library L]
//!         [--seed N] [--runs K] [--batch-every B]
//!         [--sweep N,N,...] [--duration SECS] [--pipeline D]
//!         [--label NAME] [--inline] [--json]
//! ```
//!
//! The mix is plain `sim` requests with every `--batch-every`-th
//! request (default 8, `0` disables) switched to a `sim.batch` fleet of
//! `--runs` runs. Run `r` of connection `c` perturbs the base seed so
//! the daemon sees distinct stimuli while the program cache stays warm
//! — the steady-state serving regime.
//!
//! `--sweep 1,4,16,64` repeats the measurement at each connection
//! count and reports one row per count; with `--json` the rows come
//! out as one machine-readable object (the shape committed to
//! `BENCH_service.json` by `scripts/bench-service.sh`). `--pipeline D`
//! keeps up to `D` requests in flight per connection (default 1 —
//! classic closed loop); combined with `--duration` this saturates the
//! daemon, and **throughput counts successful responses only**
//! (goodput): admission rejects and overload errors are reported in
//! `errors` but do not inflate the rate.
//!
//! Round-trip latencies are recorded in [`sigobs`] histograms (the same
//! fixed-bucket log2 scheme the daemon serves from), so the printed
//! p50/p90/p99 quantiles are exact bucket upper bounds, not samples of
//! samples. `--json` prints one machine-readable summary object instead
//! of the human table.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use sigserve::protocol::{
    decode_response, encode_request, CircuitSource, Request, Response, SimRequest,
};

/// Client-side round-trip latency per request kind (send to matching
/// response, queue and transport included).
static RTT_SIM: sigobs::Hist = sigobs::Hist::new("load.sim");
static RTT_BATCH: sigobs::Hist = sigobs::Hist::new("load.sim_batch");

fn usage() -> ! {
    eprintln!(
        "usage: sigload [--addr HOST:PORT] [--connections N] [--requests M] \
         [--circuit NAME|PATH] [--models NAME] [--library nor-only|native] \
         [--seed N] [--runs K] [--batch-every B] [--sweep N,N,...] \
         [--duration SECS] [--pipeline D] [--label NAME] [--inline] [--json]"
    );
    std::process::exit(2);
}

struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    sim: SimRequest,
    runs: usize,
    batch_every: usize,
    sweep: Vec<usize>,
    duration_s: f64,
    pipeline: usize,
    label: String,
    inline: bool,
    json: bool,
}

fn parse<T>(value: Option<T>) -> T {
    value.unwrap_or_else(|| usage())
}

fn parse_options() -> Options {
    let mut o = Options {
        addr: "127.0.0.1:4715".to_string(),
        connections: 4,
        requests: 32,
        sim: SimRequest {
            timing: false,
            ..SimRequest::default()
        },
        runs: 4,
        batch_every: 8,
        sweep: Vec::new(),
        duration_s: 0.0,
        pipeline: 1,
        label: String::new(),
        inline: false,
        json: false,
    };
    let mut args = sigserve::cli::CliArgs::from_env();
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--addr" => o.addr = require(args.value()),
            "--connections" => o.connections = parse(args.parse()),
            "--requests" => o.requests = parse(args.parse()),
            "--circuit" => {
                let v = require(args.value());
                o.sim.circuit = if std::path::Path::new(&v).is_file() {
                    let text = std::fs::read_to_string(&v).unwrap_or_else(|e| {
                        eprintln!("sigload: cannot read {v}: {e}");
                        std::process::exit(1);
                    });
                    CircuitSource::Inline(text)
                } else {
                    CircuitSource::Name(v)
                };
            }
            "--models" => o.sim.models = require(args.value()),
            "--library" => o.sim.library = require(args.value()),
            "--seed" => o.sim.seed = parse(args.parse()),
            "--runs" => o.runs = parse(args.parse()),
            "--batch-every" => o.batch_every = parse(args.parse()),
            "--sweep" => {
                o.sweep = require(args.value())
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--duration" => o.duration_s = parse(args.parse()),
            "--pipeline" => o.pipeline = parse(args.parse()),
            "--label" => o.label = require(args.value()),
            "--inline" => o.inline = true,
            "--json" => o.json = true,
            _ => usage(),
        }
    }
    if o.connections == 0 || o.requests == 0 || o.pipeline == 0 {
        usage();
    }
    if o.sweep.contains(&0) || o.duration_s < 0.0 || o.duration_s.is_nan() {
        usage();
    }
    // `--inline` ships the named benchmark's netlist in every frame —
    // the realistic CAD-client shape, where the daemon sees inline
    // `.bench` text it must at least decode (cache-hot via content
    // hash). The saturation rows in BENCH_service.json use this.
    if o.inline {
        if let CircuitSource::Name(name) = &o.sim.circuit {
            let bench = sigcircuit::Benchmark::by_name(name).unwrap_or_else(|e| {
                eprintln!("sigload: --inline needs a benchmark name: {e}");
                std::process::exit(1);
            });
            o.sim.circuit = CircuitSource::Inline(sigcircuit::to_bench(&bench.nor_mapped));
        }
    }
    o
}

/// Per-connection shared state of the windowed (pipelined) driver: the
/// send times of in-flight requests keyed by id, plus coordination
/// flags between the writer and reader halves.
struct Window {
    /// id → (send time, was a `sim.batch`).
    inflight: Mutex<HashMap<u64, (Instant, bool)>>,
    /// Signals window-slot frees and state flips.
    changed: Condvar,
    /// Writer finished (deadline or request cap hit).
    done: Mutex<bool>,
}

/// Totals from one connection's drive.
#[derive(Default, Clone, Copy)]
struct DriveTotals {
    sent: u64,
    ok: u64,
    errors: u64,
}

/// Pre-encodes a request with placeholder id `0` and strips the leading
/// `{"id":0,` so the per-send cost is one small `format!` splicing the
/// real id back in (the wire encoder emits `id` first — pinned by the
/// protocol round-trip tests).
fn frame_template(request: &Request) -> String {
    let encoded = encode_request(request);
    encoded
        .strip_prefix("{\"id\":0,")
        .unwrap_or_else(|| {
            eprintln!("sigload: unexpected frame encoding {encoded:.40}");
            std::process::exit(1);
        })
        .to_string()
}

/// One connection's windowed drive: keeps up to `pipeline` requests in
/// flight until `deadline` passes (open-loop) or `cap` frames have been
/// sent (closed-loop with pipelining). Responses are matched by id on a
/// reader thread, so request `i + 1` does not wait for response `i`.
fn drive_windowed(
    o: &Options,
    conn: usize,
    cap: Option<u64>,
    deadline: Option<Instant>,
) -> DriveTotals {
    let stream = TcpStream::connect(&o.addr).unwrap_or_else(|e| {
        eprintln!("sigload: cannot connect to {}: {e}", o.addr);
        std::process::exit(1);
    });
    let read_half = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("sigload: stream clone failed: {e}");
        std::process::exit(1);
    });
    let window = Window {
        inflight: Mutex::new(HashMap::new()),
        changed: Condvar::new(),
        done: Mutex::new(false),
    };
    let mut totals = DriveTotals::default();

    std::thread::scope(|scope| {
        // Reader: match responses to send times, free window slots.
        let reader_totals = scope.spawn(|| {
            let mut reader = BufReader::new(read_half);
            let mut ok = 0u64;
            let mut errors = 0u64;
            loop {
                let mut line = String::new();
                let n = reader.read_line(&mut line).unwrap_or(0);
                if n == 0 {
                    break; // Connection closed under us.
                }
                let response = match decode_response(line.trim_end()) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("sigload: undecodable response {line:?}: {e}");
                        std::process::exit(1);
                    }
                };
                if matches!(response, Response::Error { .. }) {
                    errors += 1;
                } else {
                    ok += 1;
                }
                let drained = {
                    let mut inflight = window.inflight.lock().expect("window poisoned");
                    let entry = response.id().and_then(|id| inflight.remove(&id));
                    if let Some((sent_at, batch)) = entry {
                        let hist = if batch { &RTT_BATCH } else { &RTT_SIM };
                        hist.record_duration(sent_at.elapsed());
                    }
                    inflight.is_empty()
                };
                window.changed.notify_all();
                if drained && *window.done.lock().expect("window poisoned") {
                    break;
                }
            }
            // Unstick a writer still waiting for a window slot.
            *window.done.lock().expect("window poisoned") = true;
            window.changed.notify_all();
            (ok, errors)
        });

        // Writer: fill the window until the cap or the deadline. Frames
        // are pre-encoded once per kind and only the id is spliced per
        // send: the generator's job is to saturate the daemon, and on a
        // shared-core test box re-escaping an inline netlist per frame
        // would throttle the offered load well below what 64 real
        // (remote) clients produce. The seed is fixed per connection —
        // the daemon has no result cache, so every accepted frame still
        // costs a full simulation.
        let sim_template = frame_template(&Request::Sim {
            id: 0,
            sim: SimRequest {
                seed: o.sim.seed + conn as u64,
                ..o.sim.clone()
            },
        });
        let batch_template = frame_template(&Request::SimBatch {
            id: 0,
            sim: SimRequest {
                seed: o.sim.seed + conn as u64,
                ..o.sim.clone()
            },
            runs: o.runs,
        });
        let mut stream = stream;
        let mut i: u64 = 0;
        'send: loop {
            if cap.is_some_and(|c| i >= c) || deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
            // Wait for a free window slot (bounded wait so the deadline
            // is honoured even if no response arrives).
            {
                let mut inflight = window.inflight.lock().expect("window poisoned");
                while inflight.len() >= o.pipeline {
                    if *window.done.lock().expect("window poisoned") {
                        break 'send;
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break 'send;
                    }
                    let (guard, _) = window
                        .changed
                        .wait_timeout(inflight, Duration::from_millis(50))
                        .expect("window poisoned");
                    inflight = guard;
                }
                let id = (conn as u64) * 1_000_000_000 + i + 1;
                let batch = o.batch_every > 0 && (i + 1).is_multiple_of(o.batch_every as u64);
                inflight.insert(id, (Instant::now(), batch));
            }
            let id = (conn as u64) * 1_000_000_000 + i + 1;
            let batch = o.batch_every > 0 && (i + 1).is_multiple_of(o.batch_every as u64);
            let template = if batch {
                &batch_template
            } else {
                &sim_template
            };
            let line = format!("{{\"id\":{id},{template}");
            if stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                window.inflight.lock().expect("window poisoned").remove(&id);
                break;
            }
            i += 1;
        }
        totals.sent = i;
        *window.done.lock().expect("window poisoned") = true;
        window.changed.notify_all();
        // If nothing is in flight the reader may be blocked on
        // read_line with no response coming — close the stream.
        if window.inflight.lock().expect("window poisoned").is_empty() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let (ok, errors) = reader_totals.join().expect("reader panicked");
        totals.ok = ok;
        totals.errors = errors;
    });
    totals
}

/// One connection's classic closed loop: `requests` frames back to
/// back, each awaited before the next.
fn drive_closed(o: &Options, conn: usize) -> DriveTotals {
    let mut stream = TcpStream::connect(&o.addr).unwrap_or_else(|e| {
        eprintln!("sigload: cannot connect to {}: {e}", o.addr);
        std::process::exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("sigload: stream clone failed: {e}");
        std::process::exit(1);
    }));
    let mut totals = DriveTotals::default();
    for i in 0..o.requests {
        let id = (conn * o.requests + i + 1) as u64;
        // Distinct seeds per frame keep stimuli fresh while the circuit
        // and compiled program stay cache-hot.
        let sim = SimRequest {
            seed: o.sim.seed + id,
            ..o.sim.clone()
        };
        let batch = o.batch_every > 0 && (i + 1) % o.batch_every == 0;
        let request = if batch {
            Request::SimBatch {
                id,
                sim,
                runs: o.runs,
            }
        } else {
            Request::Sim { id, sim }
        };
        let start = Instant::now();
        let response = exchange_on(&mut stream, &mut reader, &request);
        let hist = if batch { &RTT_BATCH } else { &RTT_SIM };
        hist.record_duration(start.elapsed());
        totals.sent += 1;
        if matches!(response, Response::Error { .. }) {
            totals.errors += 1;
        } else {
            totals.ok += 1;
        }
    }
    totals
}

/// Sends one request on an open connection and reads frames until the
/// response with the matching id arrives.
fn exchange_on(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Response {
    writeln!(stream, "{}", encode_request(request)).unwrap_or_else(|e| {
        eprintln!("sigload: send failed: {e}");
        std::process::exit(1);
    });
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or_else(|e| {
            eprintln!("sigload: read failed: {e}");
            std::process::exit(1);
        });
        if n == 0 {
            eprintln!("sigload: connection closed before a response arrived");
            std::process::exit(1);
        }
        match decode_response(line.trim_end()) {
            Ok(r) if r.id() == Some(request.id()) || r.id().is_none() => return r,
            Ok(_) => continue,
            Err(e) => {
                eprintln!("sigload: undecodable response {line:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The hist counts attributable to one measurement: `after - before`,
/// bucket by bucket, so sweep points report isolated quantiles from the
/// shared process-wide histograms.
fn hist_delta(before: &sigobs::HistSnapshot, after: &sigobs::HistSnapshot) -> sigobs::HistSnapshot {
    let mut delta = after.clone();
    delta.count = after.count.wrapping_sub(before.count);
    delta.sum = after.sum.wrapping_sub(before.sum);
    for (d, b) in delta.buckets.iter_mut().zip(before.buckets.iter()) {
        *d = d.wrapping_sub(*b);
    }
    delta
}

/// One kind's summary line / JSON object from its histogram snapshot.
fn quantiles(snapshot: &sigobs::HistSnapshot) -> (u64, f64, f64, f64) {
    (
        snapshot.count,
        snapshot.quantile_secs(0.50),
        snapshot.quantile_secs(0.90),
        snapshot.quantile_secs(0.99),
    )
}

/// One measured sweep point.
struct Row {
    connections: usize,
    totals: DriveTotals,
    wall_s: f64,
    sim: sigobs::HistSnapshot,
    batch: sigobs::HistSnapshot,
}

impl Row {
    /// Goodput: successful responses per second.
    fn throughput(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let ok = self.totals.ok as f64;
        ok / self.wall_s.max(f64::MIN_POSITIVE)
    }

    fn json(&self) -> String {
        let (sim_n, sim_p50, sim_p90, sim_p99) = quantiles(&self.sim);
        let (batch_n, batch_p50, batch_p90, batch_p99) = quantiles(&self.batch);
        format!(
            "{{\"connections\":{},\"sent\":{},\"ok\":{},\"errors\":{},\"wall_s\":{},\
             \"throughput_rps\":{},\"sim\":{{\"count\":{},\"p50_s\":{},\
             \"p90_s\":{},\"p99_s\":{}}},\"sim_batch\":{{\"count\":{},\
             \"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}}}",
            self.connections,
            self.totals.sent,
            self.totals.ok,
            self.totals.errors,
            self.wall_s,
            self.throughput(),
            sim_n,
            sim_p50,
            sim_p90,
            sim_p99,
            batch_n,
            batch_p50,
            batch_p90,
            batch_p99,
        )
    }

    fn human(&self) -> String {
        let (_, sim_p50, _, sim_p99) = quantiles(&self.sim);
        format!(
            "  {:>4} conns: {:>8.1} ok/s  ({} sent, {} ok, {} errors, {:.3}s; \
             sim p50 {:.6}s p99 {:.6}s)",
            self.connections,
            self.throughput(),
            self.totals.sent,
            self.totals.ok,
            self.totals.errors,
            self.wall_s,
            sim_p50,
            sim_p99,
        )
    }
}

/// Runs one sweep point at `connections` concurrent connections.
fn run_point(o: &Options, connections: usize) -> Row {
    let sim_before = RTT_SIM.snapshot();
    let batch_before = RTT_BATCH.snapshot();
    let open_loop = o.duration_s > 0.0;
    let deadline = open_loop.then(|| Instant::now() + Duration::from_secs_f64(o.duration_s));
    let cap = (!open_loop).then_some(o.requests as u64);
    let start = Instant::now();
    let totals: Vec<DriveTotals> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                scope.spawn(move || {
                    if !open_loop && o.pipeline == 1 {
                        drive_closed(o, conn)
                    } else {
                        drive_windowed(o, conn, cap, deadline)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut sum = DriveTotals::default();
    for t in totals {
        sum.sent += t.sent;
        sum.ok += t.ok;
        sum.errors += t.errors;
    }
    Row {
        connections,
        totals: sum,
        wall_s,
        sim: hist_delta(&sim_before, &RTT_SIM.snapshot()),
        batch: hist_delta(&batch_before, &RTT_BATCH.snapshot()),
    }
}

fn main() {
    let o = parse_options();
    // The histograms must record regardless of the SIG_OBS environment —
    // they are this tool's whole output.
    sigobs::set_mode(sigobs::ObsMode::Counters);

    if o.sweep.is_empty() {
        // Single measurement: the original output shape (scripts and CI
        // parse it), with `sent`/`ok` alongside the legacy fields.
        let row = run_point(&o, o.connections);
        let (sim_n, sim_p50, sim_p90, sim_p99) = quantiles(&row.sim);
        let (batch_n, batch_p50, batch_p90, batch_p99) = quantiles(&row.batch);
        if o.json {
            println!(
                "{{\"connections\":{},\"requests\":{},\"errors\":{},\"wall_s\":{},\
                 \"throughput_rps\":{},\"ok\":{},\"sim\":{{\"count\":{},\"p50_s\":{},\
                 \"p90_s\":{},\"p99_s\":{}}},\"sim_batch\":{{\"count\":{},\
                 \"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}}}",
                row.connections,
                row.totals.sent,
                row.totals.errors,
                row.wall_s,
                row.throughput(),
                row.totals.ok,
                sim_n,
                sim_p50,
                sim_p90,
                sim_p99,
                batch_n,
                batch_p50,
                batch_p90,
                batch_p99,
            );
        } else {
            println!(
                "sigload: {} conns, {} sent in {:.3}s ({:.1} ok/s, {} errors)",
                row.connections,
                row.totals.sent,
                row.wall_s,
                row.throughput(),
                row.totals.errors
            );
            println!(
                "  sim        {sim_n:>6}  p50 {sim_p50:.6}s  p90 {sim_p90:.6}s  \
                 p99 {sim_p99:.6}s"
            );
            println!(
                "  sim.batch  {batch_n:>6}  p50 {batch_p50:.6}s  p90 {batch_p90:.6}s  \
                 p99 {batch_p99:.6}s"
            );
        }
        if row.totals.ok == 0 {
            std::process::exit(1);
        }
        return;
    }

    // Sweep: one row per connection count, same traffic settings.
    let rows: Vec<Row> = o.sweep.iter().map(|&c| run_point(&o, c)).collect();
    let mode = if o.duration_s > 0.0 {
        "open-loop"
    } else {
        "closed-loop"
    };
    if o.json {
        let body: Vec<String> = rows.iter().map(Row::json).collect();
        println!(
            "{{\"label\":\"{}\",\"mode\":\"{}\",\"pipeline\":{},\"duration_s\":{},\
             \"rows\":[{}]}}",
            o.label.replace('"', ""),
            mode,
            o.pipeline,
            o.duration_s,
            body.join(",")
        );
    } else {
        println!(
            "sigload sweep ({mode}, pipeline {}, {}):",
            o.pipeline,
            if o.duration_s > 0.0 {
                format!("{}s per point", o.duration_s)
            } else {
                format!("{} reqs per conn", o.requests)
            }
        );
        for row in &rows {
            println!("{}", row.human());
        }
    }
    if rows.iter().any(|r| r.totals.ok == 0) {
        std::process::exit(1);
    }
}
