//! `sigload` — closed-loop load generator for a running `sigserve`
//! daemon.
//!
//! ```text
//! sigload [--addr HOST:PORT] [--connections N] [--requests M]
//!         [--circuit NAME|PATH] [--models NAME] [--library L]
//!         [--seed N] [--runs K] [--batch-every B] [--json]
//! ```
//!
//! Opens `--connections` TCP connections and drives `--requests` frames
//! down each, back to back (closed loop: the next request is sent when
//! the previous response arrives). The mix is plain `sim` requests with
//! every `--batch-every`-th request (default 8, `0` disables) switched
//! to a `sim.batch` fleet of `--runs` runs. Run `r` of connection `c`
//! perturbs the base seed so the daemon sees distinct stimuli while the
//! program cache stays warm — the steady-state serving regime.
//!
//! Round-trip latencies are recorded in [`sigobs`] histograms (the same
//! fixed-bucket log2 scheme the daemon serves from), so the printed
//! p50/p90/p99 quantiles are exact bucket upper bounds, not samples of
//! samples. `--json` prints one machine-readable summary object instead
//! of the human table.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use sigserve::protocol::{
    decode_response, encode_request, CircuitSource, Request, Response, SimRequest,
};

/// Client-side round-trip latency per request kind (send to matching
/// response, queue and transport included).
static RTT_SIM: sigobs::Hist = sigobs::Hist::new("load.sim");
static RTT_BATCH: sigobs::Hist = sigobs::Hist::new("load.sim_batch");

fn usage() -> ! {
    eprintln!(
        "usage: sigload [--addr HOST:PORT] [--connections N] [--requests M] \
         [--circuit NAME|PATH] [--models NAME] [--library nor-only|native] \
         [--seed N] [--runs K] [--batch-every B] [--json]"
    );
    std::process::exit(2);
}

struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    sim: SimRequest,
    runs: usize,
    batch_every: usize,
    json: bool,
}

fn parse<T>(value: Option<T>) -> T {
    value.unwrap_or_else(|| usage())
}

fn parse_options() -> Options {
    let mut o = Options {
        addr: "127.0.0.1:4715".to_string(),
        connections: 4,
        requests: 32,
        sim: SimRequest {
            timing: false,
            ..SimRequest::default()
        },
        runs: 4,
        batch_every: 8,
        json: false,
    };
    let mut args = sigserve::cli::CliArgs::from_env();
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--addr" => o.addr = require(args.value()),
            "--connections" => o.connections = parse(args.parse()),
            "--requests" => o.requests = parse(args.parse()),
            "--circuit" => {
                let v = require(args.value());
                o.sim.circuit = if std::path::Path::new(&v).is_file() {
                    let text = std::fs::read_to_string(&v).unwrap_or_else(|e| {
                        eprintln!("sigload: cannot read {v}: {e}");
                        std::process::exit(1);
                    });
                    CircuitSource::Inline(text)
                } else {
                    CircuitSource::Name(v)
                };
            }
            "--models" => o.sim.models = require(args.value()),
            "--library" => o.sim.library = require(args.value()),
            "--seed" => o.sim.seed = parse(args.parse()),
            "--runs" => o.runs = parse(args.parse()),
            "--batch-every" => o.batch_every = parse(args.parse()),
            "--json" => o.json = true,
            _ => usage(),
        }
    }
    if o.connections == 0 || o.requests == 0 {
        usage();
    }
    o
}

/// One connection's closed loop: `requests` frames back to back.
/// Returns the number of error responses.
fn drive_connection(o: &Options, conn: usize) -> u64 {
    let mut stream = TcpStream::connect(&o.addr).unwrap_or_else(|e| {
        eprintln!("sigload: cannot connect to {}: {e}", o.addr);
        std::process::exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("sigload: stream clone failed: {e}");
        std::process::exit(1);
    }));
    let mut errors = 0;
    for i in 0..o.requests {
        let id = (conn * o.requests + i + 1) as u64;
        // Distinct seeds per frame keep stimuli fresh while the circuit
        // and compiled program stay cache-hot.
        let sim = SimRequest {
            seed: o.sim.seed + id,
            ..o.sim.clone()
        };
        let batch = o.batch_every > 0 && (i + 1) % o.batch_every == 0;
        let request = if batch {
            Request::SimBatch {
                id,
                sim,
                runs: o.runs,
            }
        } else {
            Request::Sim { id, sim }
        };
        let start = Instant::now();
        let response = exchange_on(&mut stream, &mut reader, &request);
        let hist = if batch { &RTT_BATCH } else { &RTT_SIM };
        hist.record_duration(start.elapsed());
        if matches!(response, Response::Error { .. }) {
            errors += 1;
        }
    }
    errors
}

/// Sends one request on an open connection and reads frames until the
/// response with the matching id arrives.
fn exchange_on(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Response {
    writeln!(stream, "{}", encode_request(request)).unwrap_or_else(|e| {
        eprintln!("sigload: send failed: {e}");
        std::process::exit(1);
    });
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or_else(|e| {
            eprintln!("sigload: read failed: {e}");
            std::process::exit(1);
        });
        if n == 0 {
            eprintln!("sigload: connection closed before a response arrived");
            std::process::exit(1);
        }
        match decode_response(line.trim_end()) {
            Ok(r) if r.id() == Some(request.id()) || r.id().is_none() => return r,
            Ok(_) => continue,
            Err(e) => {
                eprintln!("sigload: undecodable response {line:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// One kind's summary line / JSON object from its histogram snapshot.
fn quantiles(snapshot: &sigobs::HistSnapshot) -> (u64, f64, f64, f64) {
    (
        snapshot.count,
        snapshot.quantile_secs(0.50),
        snapshot.quantile_secs(0.90),
        snapshot.quantile_secs(0.99),
    )
}

fn main() {
    let o = parse_options();
    // The histograms must record regardless of the SIG_OBS environment —
    // they are this tool's whole output.
    sigobs::set_mode(sigobs::ObsMode::Counters);
    let start = Instant::now();
    let errors: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.connections)
            .map(|conn| {
                scope.spawn({
                    let o = &o;
                    move || drive_connection(o, conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .sum()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let total = (o.connections * o.requests) as u64;
    let throughput = total as f64 / wall_s.max(f64::MIN_POSITIVE);
    let (sim_n, sim_p50, sim_p90, sim_p99) = quantiles(&RTT_SIM.snapshot());
    let (batch_n, batch_p50, batch_p90, batch_p99) = quantiles(&RTT_BATCH.snapshot());
    if o.json {
        println!(
            "{{\"connections\":{},\"requests\":{},\"errors\":{},\"wall_s\":{},\
             \"throughput_rps\":{},\"sim\":{{\"count\":{},\"p50_s\":{},\
             \"p90_s\":{},\"p99_s\":{}}},\"sim_batch\":{{\"count\":{},\
             \"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}}}",
            o.connections,
            total,
            errors,
            wall_s,
            throughput,
            sim_n,
            sim_p50,
            sim_p90,
            sim_p99,
            batch_n,
            batch_p50,
            batch_p90,
            batch_p99,
        );
    } else {
        println!(
            "sigload: {} conns x {} reqs in {:.3}s ({:.1} req/s, {} errors)",
            o.connections, o.requests, wall_s, throughput, errors
        );
        println!(
            "  sim        {sim_n:>6}  p50 {:.6}s  p90 {:.6}s  p99 {:.6}s",
            sim_p50, sim_p90, sim_p99
        );
        println!(
            "  sim.batch  {batch_n:>6}  p50 {:.6}s  p90 {:.6}s  p99 {:.6}s",
            batch_p50, batch_p90, batch_p99
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
