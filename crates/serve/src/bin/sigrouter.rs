//! The `sigrouter` front door: consistent-hash scale-out across N
//! `sigserve` shards.
//!
//! ```text
//! sigrouter --shards HOST:PORT,HOST:PORT[,...] [--addr 127.0.0.1:4714]
//! ```
//!
//! Clients speak the normal sigserve wire protocol to the router;
//! `sim`/`sim.batch`/`session.open` frames are forwarded byte-for-byte
//! to the shard that owns the request's circuit (jump consistent hash
//! over the circuit fingerprint), so every shard's circuit and program
//! caches stay hot and disjoint. `stats` aggregates across the fleet,
//! `trace` concatenates every shard's spans, and `shutdown` brings the
//! shards down before the router acknowledges and exits. See
//! `docs/architecture.md` § Async transport & sharding.

use std::net::TcpListener;

use sigserve::router::serve_router;

fn usage() -> ! {
    eprintln!("usage: sigrouter --shards HOST:PORT,... [--addr HOST:PORT]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:4714".to_string();
    let mut shards: Vec<String> = Vec::new();

    let mut args = sigserve::cli::CliArgs::from_env();
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--addr" => addr = require(args.value()),
            "--shards" => {
                shards.extend(
                    require(args.value())
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                );
            }
            _ => usage(),
        }
    }
    if shards.is_empty() {
        usage();
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sigrouter: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "sigrouter: listening on {addr}, routing to {} shard(s): {}",
        shards.len(),
        shards.join(", ")
    );
    if let Err(e) = serve_router(listener, shards) {
        eprintln!("sigrouter: accept loop failed: {e}");
        std::process::exit(1);
    }
}
