//! The `sigserve` daemon: a resident simulation service speaking
//! newline-delimited JSON over TCP or stdio.
//!
//! ```text
//! sigserve [--addr 127.0.0.1:4715 | --stdio]
//!          [--workers N] [--queue N] [--cache N] [--sessions N]
//!          [--models-dir PATH] [--max-frame BYTES]
//!          [--transport epoll|blocking] [--io-threads N]
//!          [--max-inflight N] [--admission N]
//!          [--preload NAME[/LIBRARY][,NAME...]] [--trace PATH]
//! ```
//!
//! The default TCP transport is the epoll readiness loop (pipelined
//! requests, in-order responses, admission control; `--io-threads`
//! reactors). `--transport blocking` selects the original
//! thread-per-connection transport — the baseline the saturation rows
//! in `BENCH_service.json` are measured against. `--max-inflight`
//! bounds the per-connection pipelining window and `--admission` the
//! daemon-wide heavy requests in flight; both only affect the epoll
//! transport.
//!
//! `--trace PATH` forces `SIG_OBS=trace` (span journaling on) and writes
//! whatever the journal still holds at exit as a Chrome trace-event JSON
//! file — open it in `chrome://tracing` or Perfetto. Live traffic can
//! also be captured without restarting via `sigctl trace`, which drains
//! the same journal over the wire.
//!
//! `--stdio` reads requests from stdin and writes responses to stdout
//! (one JSON object per line) — the CI smoke mode. Otherwise the daemon
//! listens on `--addr` (default `127.0.0.1:4715`) and serves until a
//! client sends a `shutdown` request; in-flight work drains first.
//! `--preload` warms the model registry before accepting traffic so the
//! first request doesn't pay the training/loading cost; each entry is a
//! preset name, optionally suffixed with `/native` (or `/nor-only`, the
//! default) to select the cell library — e.g. `--preload ci,ci/native`.

use std::net::TcpListener;

use sigserve::{serve_stdio, serve_tcp, serve_tcp_blocking, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sigserve [--addr HOST:PORT | --stdio] [--workers N] [--queue N] \
         [--cache N] [--sessions N] [--models-dir PATH] [--max-frame BYTES] \
         [--transport epoll|blocking] [--io-threads N] [--max-inflight N] \
         [--admission N] [--preload NAME,...] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig::default();
    let mut addr = "127.0.0.1:4715".to_string();
    let mut stdio = false;
    let mut blocking = false;
    let mut preload: Vec<String> = Vec::new();
    let mut trace: Option<std::path::PathBuf> = None;

    let mut args = sigserve::cli::CliArgs::from_env();
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--addr" => addr = require(args.value()),
            "--workers" => config.workers = parse(args.parse()),
            "--queue" => config.queue_capacity = parse(args.parse()),
            "--cache" => config.cache_capacity = parse(args.parse()),
            "--sessions" => config.session_capacity = parse(args.parse()),
            "--max-frame" => config.max_frame = parse(args.parse()),
            "--io-threads" => config.io_threads = parse(args.parse()),
            "--max-inflight" => config.max_inflight = parse(args.parse()),
            "--admission" => config.admission_budget = parse(args.parse()),
            "--transport" => match require(args.value()).as_str() {
                "epoll" => blocking = false,
                "blocking" => blocking = true,
                _ => usage(),
            },
            "--models-dir" => config.models_dir = require(args.value()).into(),
            "--trace" => trace = Some(require(args.value()).into()),
            "--preload" => {
                preload.extend(
                    require(args.value())
                        .split(',')
                        .map(|s| s.trim().to_string()),
                );
            }
            _ => usage(),
        }
    }

    if trace.is_some() {
        // The flag implies full tracing regardless of SIG_OBS.
        sigobs::set_mode(sigobs::ObsMode::Trace);
    }

    let service = Service::new(config);
    for entry in &preload {
        let (name, library) = match entry.split_once('/') {
            Some((n, l)) => (n, l),
            None => (entry.as_str(), "nor-only"),
        };
        if let Err(e) = service.registry().get_or_load(name, library) {
            eprintln!("sigserve: preload {entry:?} failed: {e}");
            std::process::exit(1);
        }
    }

    if stdio {
        serve_stdio(&service);
    } else {
        let listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("sigserve: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("sigserve: listening on {addr}");
        let served = if blocking {
            serve_tcp_blocking(&service, listener)
        } else {
            serve_tcp(&service, listener)
        };
        if let Err(e) = served {
            eprintln!("sigserve: accept loop failed: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &trace {
        if let Err(e) = sigobs::write_chrome_trace(path) {
            eprintln!("sigserve: cannot write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("sigserve: wrote trace {}", path.display());
    }
}

fn parse<T>(value: Option<T>) -> T {
    value.unwrap_or_else(|| usage())
}
