//! The `sigserve` daemon: a resident simulation service speaking
//! newline-delimited JSON over TCP or stdio.
//!
//! ```text
//! sigserve [--addr 127.0.0.1:4715 | --stdio]
//!          [--workers N] [--queue N] [--cache N] [--sessions N]
//!          [--models-dir PATH] [--max-frame BYTES]
//!          [--preload NAME[/LIBRARY][,NAME...]] [--trace PATH]
//! ```
//!
//! `--trace PATH` forces `SIG_OBS=trace` (span journaling on) and writes
//! whatever the journal still holds at exit as a Chrome trace-event JSON
//! file — open it in `chrome://tracing` or Perfetto. Live traffic can
//! also be captured without restarting via `sigctl trace`, which drains
//! the same journal over the wire.
//!
//! `--stdio` reads requests from stdin and writes responses to stdout
//! (one JSON object per line) — the CI smoke mode. Otherwise the daemon
//! listens on `--addr` (default `127.0.0.1:4715`) and serves until a
//! client sends a `shutdown` request; in-flight work drains first.
//! `--preload` warms the model registry before accepting traffic so the
//! first request doesn't pay the training/loading cost; each entry is a
//! preset name, optionally suffixed with `/native` (or `/nor-only`, the
//! default) to select the cell library — e.g. `--preload ci,ci/native`.

use std::net::TcpListener;

use sigserve::{serve_stdio, serve_tcp, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sigserve [--addr HOST:PORT | --stdio] [--workers N] [--queue N] \
         [--cache N] [--sessions N] [--models-dir PATH] [--max-frame BYTES] \
         [--preload NAME,...] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServiceConfig::default();
    let mut addr = "127.0.0.1:4715".to_string();
    let mut stdio = false;
    let mut preload: Vec<String> = Vec::new();
    let mut trace: Option<std::path::PathBuf> = None;

    let mut args = sigserve::cli::CliArgs::from_env();
    let require = |v: Option<String>| v.unwrap_or_else(|| usage());
    while let Some(flag) = args.next_arg() {
        match flag.as_str() {
            "--stdio" => stdio = true,
            "--addr" => addr = require(args.value()),
            "--workers" => config.workers = parse(args.parse()),
            "--queue" => config.queue_capacity = parse(args.parse()),
            "--cache" => config.cache_capacity = parse(args.parse()),
            "--sessions" => config.session_capacity = parse(args.parse()),
            "--max-frame" => config.max_frame = parse(args.parse()),
            "--models-dir" => config.models_dir = require(args.value()).into(),
            "--trace" => trace = Some(require(args.value()).into()),
            "--preload" => {
                preload.extend(
                    require(args.value())
                        .split(',')
                        .map(|s| s.trim().to_string()),
                );
            }
            _ => usage(),
        }
    }

    if trace.is_some() {
        // The flag implies full tracing regardless of SIG_OBS.
        sigobs::set_mode(sigobs::ObsMode::Trace);
    }

    let service = Service::new(config);
    for entry in &preload {
        let (name, library) = match entry.split_once('/') {
            Some((n, l)) => (n, l),
            None => (entry.as_str(), "nor-only"),
        };
        if let Err(e) = service.registry().get_or_load(name, library) {
            eprintln!("sigserve: preload {entry:?} failed: {e}");
            std::process::exit(1);
        }
    }

    if stdio {
        serve_stdio(&service);
    } else {
        let listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("sigserve: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("sigserve: listening on {addr}");
        if let Err(e) = serve_tcp(&service, listener) {
            eprintln!("sigserve: accept loop failed: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &trace {
        if let Err(e) = sigobs::write_chrome_trace(path) {
            eprintln!("sigserve: cannot write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("sigserve: wrote trace {}", path.display());
    }
}

fn parse<T>(value: Option<T>) -> T {
    value.unwrap_or_else(|| usage())
}
