//! `sigserve` — the resident simulation service.
//!
//! Every earlier entry point (the experiment bins, the examples, the
//! harness tests) re-loaded gate models and re-parsed circuits per
//! invocation. This crate gives the expensive artifacts a resident home
//! and puts a wire protocol in front of the PR-2 batched engine:
//!
//! * [`ModelRegistry`] — model sets keyed by `(preset, library)`: the
//!   `nor-only` library loads the paper's four-variant
//!   [`sigsim::TrainedModels`], the `native` library a full
//!   [`sigsim::CellLibrary`] (NAND2/AND2/OR2/INV/NOR as first-class
//!   cells); each loads once and is shared as `Arc` across all requests,
//! * [`CircuitCache`] — an LRU keyed by content hash *and* mapping
//!   policy, so repeated requests skip `.bench`/JSON parsing,
//!   validation, technology mapping and levelization,
//! * [`Service`] — a bounded scheduler over the long-lived
//!   [`sigwave::parallel::WorkerPool`]: requests stream in over
//!   newline-delimited JSON ([`protocol`]), run concurrently, and stream
//!   back per-request results with ids, explicit `overloaded`
//!   backpressure, and drain-on-shutdown,
//! * [`server`] — TCP (`std::net`) and stdio transports; the `sigserve`
//!   daemon and `sigctl` client binaries wrap them.
//!
//! The service is a **scheduling layer, never a numerics layer**:
//! responses are bit-identical to direct [`sigsim::compare_circuit`] /
//! [`sigsim::simulate_sigmoid`] calls with the same seed (enforced by
//! `tests/service_parity.rs`). The protocol grammar is normatively
//! specified in `docs/protocol.md`; cache keys and backpressure
//! semantics are documented in `docs/architecture.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use cache::{CacheKey, CircuitCache, ProgramCache};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, CacheOutcome, CircuitSource,
    ErrorKind, FrameReader, ProtocolError, Request, Response, SimRequest, SimResult, StatsReply,
    MAX_FRAME_BYTES,
};
pub use registry::{preset_config, DelaySource, ModelRegistry, ModelSet, RegistryError};
pub use server::{run_connection, serve_stdio, serve_tcp};
pub use service::{run_sim, Handled, Service, ServiceConfig};

#[cfg(test)]
mod service_tests {
    use super::*;
    use crate::registry::synthetic_set;
    use std::sync::{Arc, Condvar, Mutex};

    fn collecting() -> (
        Arc<Mutex<Vec<Response>>>,
        impl Fn(Response) + Send + Sync + 'static,
    ) {
        let sink: Arc<Mutex<Vec<Response>>> = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&sink);
        (sink, move |r| s.lock().expect("sink").push(r))
    }

    fn sim_request(id: u64) -> Request {
        Request::Sim {
            id,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                seed: id,
                timing: false,
                ..SimRequest::default()
            },
        }
    }

    #[test]
    fn overload_rejects_instead_of_buffering() {
        let service = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        service.registry().insert(synthetic_set("synth"));
        // Occupy the single worker with a gate job, then fill the queue.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            service.pool_for_tests().execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().expect("gate");
                while !*open {
                    open = cv.wait(open).expect("gate");
                }
            });
        }
        while service.pool_for_tests().queued() > 0 {
            std::thread::yield_now();
        }
        let (sink, respond) = collecting();
        assert_eq!(
            service.handle_request(sim_request(1), respond),
            Handled::Continue
        );
        // Queue now holds request 1; request 2 must be rejected at once.
        let (sink2, respond2) = collecting();
        service.handle_request(sim_request(2), respond2);
        let rejected = sink2.lock().expect("sink").clone();
        assert_eq!(rejected.len(), 1, "rejection must be immediate");
        assert!(
            matches!(
                rejected[0],
                Response::Error {
                    id: Some(2),
                    kind: ErrorKind::Overloaded,
                    ..
                }
            ),
            "{rejected:?}"
        );
        assert_eq!(service.stats().rejected, 1);
        // Open the gate: the accepted request still completes.
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate") = true;
            cv.notify_all();
        }
        service.drain();
        let done = sink.lock().expect("sink").clone();
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0], Response::Sim { id: 1, .. }));
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn unknown_models_and_circuits_are_structured_errors() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let (sink, respond) = collecting();
        let respond = Arc::new(respond);
        for (id, circuit, models) in [
            (1, CircuitSource::Name("c17".into()), "ghost"),
            (2, CircuitSource::Name("c9999".into()), "synth"),
            (3, CircuitSource::Inline("y = FROB(a)\n".into()), "synth"),
        ] {
            let respond = Arc::clone(&respond);
            service.handle_request(
                Request::Sim {
                    id,
                    sim: SimRequest {
                        circuit,
                        models: models.into(),
                        ..SimRequest::default()
                    },
                },
                move |r| respond(r),
            );
        }
        service.drain();
        let mut got: Vec<(Option<u64>, ErrorKind)> = sink
            .lock()
            .expect("sink")
            .iter()
            .map(|r| match r {
                Response::Error { id, kind, .. } => (*id, *kind),
                other => panic!("expected error, got {other:?}"),
            })
            .collect();
        got.sort_unstable_by_key(|(id, _)| *id);
        assert_eq!(
            got,
            vec![
                (Some(1), ErrorKind::UnknownModels),
                (Some(2), ErrorKind::Circuit),
                (Some(3), ErrorKind::Circuit),
            ]
        );
        // Failed builds never pollute the cache.
        assert_eq!(service.cache().entries(), 0);
    }

    /// A synthetic native-library model set for service-level tests.
    fn synthetic_native_set(name: &str) -> ModelSet {
        use sigcircuit::GateKind;
        use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};

        struct Inverting;
        impl TransferFunction for Inverting {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: -q.a_in.signum() * 14.0,
                    delay: 0.05,
                }
            }
            fn backend_name(&self) -> &'static str {
                "inverting"
            }
        }
        struct Buffering;
        impl TransferFunction for Buffering {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: q.a_in.signum() * 14.0,
                    delay: 0.07,
                }
            }
            fn backend_name(&self) -> &'static str {
                "buffering"
            }
        }

        let mut cells = sigsim::CellModels::empty("native");
        for kind in [GateKind::Inv, GateKind::Nor, GateKind::Nand] {
            let slot = cells.push(GateModel::new(Arc::new(Inverting)));
            let single = kind == GateKind::Inv;
            cells.bind(slot, kind, single, false);
            cells.bind(slot, kind, single, true);
            if single {
                // The inverter cell also answers 1-input NORs.
                cells.bind(slot, GateKind::Nor, true, false);
                cells.bind(slot, GateKind::Nor, true, true);
            }
        }
        for kind in [GateKind::And, GateKind::Or] {
            let slot = cells.push(GateModel::new(Arc::new(Buffering)));
            cells.bind(slot, kind, false, false);
            cells.bind(slot, kind, false, true);
        }
        ModelSet {
            name: name.to_string(),
            library: "native".to_string(),
            policy: sigcircuit::MappingPolicy::Native,
            trained: None,
            cells: Arc::new(cells),
            delays: crate::registry::DelaySource::none(),
            options: sigtom::TomOptions::default(),
        }
    }

    #[test]
    fn native_library_requests_keep_native_cells() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        service.registry().insert(synthetic_native_set("synth"));
        // One netlist, both libraries: the native request reports its
        // library, caches separately, and answers with the same settled
        // levels as the NOR-mapped run.
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n".to_string();
        let request = |library: &str| SimRequest {
            circuit: CircuitSource::Inline(text.clone()),
            models: "synth".into(),
            library: library.into(),
            timing: false,
            ..SimRequest::default()
        };
        let nor = service.execute_sim(&request("nor-only")).unwrap();
        let native = service.execute_sim(&request("native")).unwrap();
        assert_eq!(nor.library, "nor-only");
        assert_eq!(native.library, "native");
        assert_ne!(
            nor.fingerprint, native.fingerprint,
            "policies simulate different mapped circuits"
        );
        assert_eq!(service.cache().misses(), 2, "policies cache separately");
        // Same boolean behaviour: settled output levels agree.
        assert_eq!(nor.outputs.len(), native.outputs.len());
        for (a, b) in nor.outputs.iter().zip(&native.outputs) {
            assert_eq!(a.final_high(), b.final_high(), "settled levels differ");
        }
        // Stats name both resident sets.
        let stats = service.stats();
        assert_eq!(
            stats.model_sets,
            vec!["synth/native".to_string(), "synth/nor-only".to_string()]
        );
    }

    #[test]
    fn repeated_requests_hit_the_program_cache_with_identical_results() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let sim = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 9,
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 0),
            "first request compiles the program"
        );
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 1),
            "warm request reuses the compiled program"
        );
        assert_eq!(service.programs().entries(), 1);
        // Identical payloads modulo the circuit-cache field.
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        // And identical to the fused no-program reference path (what
        // `sigctl golden` runs): the program is a pure accelerator.
        let set = service.registry().get_or_load("synth", "nor-only").unwrap();
        let circuit = sigcircuit::Benchmark::by_name("c17")
            .unwrap()
            .nor_mapped
            .clone();
        let golden = run_sim(&circuit, &set, &sim, CacheOutcome::Miss).unwrap();
        assert_eq!(golden, first, "program path must match the fused path");
        // A different seed reuses the program (stimulus is bind-time
        // input, not part of the key) but changes the outputs.
        let reseeded = service
            .execute_sim(&SimRequest { seed: 10, ..sim })
            .unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 2)
        );
        assert_ne!(reseeded.outputs, first.outputs, "seed must matter");
    }

    #[test]
    fn reinserted_model_set_never_serves_a_stale_program() {
        use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};
        struct Slow;
        impl TransferFunction for Slow {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: -q.a_in.signum() * 14.0,
                    delay: 0.45,
                }
            }
            fn backend_name(&self) -> &'static str {
                "slow"
            }
        }
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let sim = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 4,
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        // An embedder swaps the set under the same (name, library) key
        // with different models: the cached program compiled against the
        // old cells must not answer for the new set.
        let mut swapped = synthetic_set("synth");
        swapped.cells = Arc::new(sigsim::CellModels::nor_only(&sigsim::GateModels::uniform(
            GateModel::new(Arc::new(Slow)),
        )));
        service.registry().insert(swapped);
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(
            service.programs().misses(),
            2,
            "new cells allocation must compile a new program"
        );
        assert_ne!(
            first.outputs, second.outputs,
            "responses must reflect the re-registered models"
        );
    }

    #[test]
    fn compare_requests_do_not_touch_the_program_cache() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        // The synthetic set has no delay table, so compare errors — but
        // the point here is the program-cache counters stay untouched
        // either way (compare mode keeps the fused harness path).
        let err = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                compare: true,
                ..SimRequest::default()
            })
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Simulation);
        assert_eq!(service.programs().misses(), 0);
        assert_eq!(service.programs().hits(), 0);
        let stats = service.stats();
        assert_eq!(stats.program_entries, 0);
        assert_eq!(stats.cache_misses, 1, "the circuit itself was cached");
    }

    #[test]
    fn compare_without_delay_table_is_rejected() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let err = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                compare: true,
                ..SimRequest::default()
            })
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Simulation);
        assert!(err.1.contains("delay table"), "{}", err.1);
    }

    #[test]
    fn inline_bench_text_simulates_and_caches_by_content() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let bench =
            sigcircuit::to_bench(&sigcircuit::Benchmark::by_name("c17").unwrap().nor_mapped);
        let sim = SimRequest {
            circuit: CircuitSource::Inline(bench.clone()),
            models: "synth".into(),
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(
            first.outputs, second.outputs,
            "results identical across cache states"
        );
        // The same netlist through a *name* source is a different cache
        // key (and a structurally renumbered circuit after the
        // `.bench` round trip), but inputs/outputs keep their names and
        // order, so the predictions are identical.
        let by_name = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                timing: false,
                ..SimRequest::default()
            })
            .unwrap();
        assert_eq!(by_name.outputs, first.outputs);
        assert_eq!(service.cache().misses(), 2);
        assert_eq!(service.cache().hits(), 1);
        // Non-NOR inline netlists are NOR-mapped before simulation.
        let non_nor = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Inline(
                    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n".into(),
                ),
                models: "synth".into(),
                timing: false,
                ..SimRequest::default()
            })
            .unwrap();
        assert_eq!(non_nor.outputs.len(), 1);
    }
}
