//! `sigserve` — the resident simulation service.
//!
//! Every earlier entry point (the experiment bins, the examples, the
//! harness tests) re-loaded gate models and re-parsed circuits per
//! invocation. This crate gives the expensive artifacts a resident home
//! and puts a wire protocol in front of the PR-2 batched engine:
//!
//! * [`ModelRegistry`] — model sets keyed by `(preset, library)`: the
//!   `nor-only` library loads the paper's four-variant
//!   [`sigsim::TrainedModels`], the `native` library a full
//!   [`sigsim::CellLibrary`] (NAND2/AND2/OR2/INV/NOR as first-class
//!   cells); each loads once and is shared as `Arc` across all requests,
//! * [`CircuitCache`] — an LRU keyed by content hash *and* mapping
//!   policy, so repeated requests skip `.bench`/JSON parsing,
//!   validation, technology mapping and levelization,
//! * [`Service`] — a bounded scheduler over the long-lived
//!   [`sigwave::parallel::WorkerPool`]: requests stream in over
//!   newline-delimited JSON ([`protocol`]), run concurrently, and stream
//!   back per-request results with ids, explicit `overloaded`
//!   backpressure, and drain-on-shutdown,
//! * [`server`] — TCP (`std::net`) and stdio transports; the `sigserve`
//!   daemon and `sigctl` client binaries wrap them.
//!
//! The service is a **scheduling layer, never a numerics layer**:
//! responses are bit-identical to direct [`sigsim::compare_circuit`] /
//! [`sigsim::simulate_sigmoid`] calls with the same seed (enforced by
//! `tests/service_parity.rs`). The protocol grammar is normatively
//! specified in `docs/protocol.md`; cache keys and backpressure
//! semantics are documented in `docs/architecture.md`.

// `deny` rather than `forbid` so the one FFI module ([`reactor`], which
// wraps the three epoll syscalls) can opt in; every other module stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod mux;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod router;
pub mod server;
pub mod service;
pub mod session;

pub use cache::{CacheKey, CircuitCache, ProgramCache};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, CacheOutcome, CircuitSource,
    ErrorKind, FrameReader, ProtocolError, Request, Response, SessionEdit, SimRequest, SimResult,
    StatsReply, MAX_FRAME_BYTES,
};
pub use registry::{preset_config, DelaySource, ModelRegistry, ModelSet, RegistryError};
pub use server::{run_connection, serve_stdio, serve_tcp, serve_tcp_blocking};
pub use service::{run_sim, run_sim_edited, Handled, Service, ServiceConfig};
pub use session::SessionTable;

#[cfg(test)]
mod service_tests {
    use super::*;
    use crate::registry::synthetic_set;
    use std::sync::{Arc, Condvar, Mutex};

    fn collecting() -> (
        Arc<Mutex<Vec<Response>>>,
        impl Fn(Response) + Send + Sync + 'static,
    ) {
        let sink: Arc<Mutex<Vec<Response>>> = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&sink);
        (sink, move |r| s.lock().expect("sink").push(r))
    }

    fn sim_request(id: u64) -> Request {
        Request::Sim {
            id,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                seed: id,
                timing: false,
                ..SimRequest::default()
            },
        }
    }

    #[test]
    fn overload_rejects_instead_of_buffering() {
        let service = Service::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        service.registry().insert(synthetic_set("synth"));
        // Occupy the single worker with a gate job, then fill the queue.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            service.pool_for_tests().execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().expect("gate");
                while !*open {
                    open = cv.wait(open).expect("gate");
                }
            });
        }
        while service.pool_for_tests().queued() > 0 {
            std::thread::yield_now();
        }
        let (sink, respond) = collecting();
        assert_eq!(
            service.handle_request(sim_request(1), respond),
            Handled::Continue
        );
        // Queue now holds request 1; request 2 must be rejected at once.
        let (sink2, respond2) = collecting();
        service.handle_request(sim_request(2), respond2);
        let rejected = sink2.lock().expect("sink").clone();
        assert_eq!(rejected.len(), 1, "rejection must be immediate");
        assert!(
            matches!(
                rejected[0],
                Response::Error {
                    id: Some(2),
                    kind: ErrorKind::Overloaded,
                    ..
                }
            ),
            "{rejected:?}"
        );
        assert_eq!(service.stats().rejected, 1);
        // Open the gate: the accepted request still completes.
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate") = true;
            cv.notify_all();
        }
        service.drain();
        let done = sink.lock().expect("sink").clone();
        assert_eq!(done.len(), 1);
        assert!(matches!(done[0], Response::Sim { id: 1, .. }));
        assert_eq!(service.stats().completed, 1);
    }

    #[test]
    fn unknown_models_and_circuits_are_structured_errors() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let (sink, respond) = collecting();
        let respond = Arc::new(respond);
        for (id, circuit, models) in [
            (1, CircuitSource::Name("c17".into()), "ghost"),
            (2, CircuitSource::Name("c9999".into()), "synth"),
            (3, CircuitSource::Inline("y = FROB(a)\n".into()), "synth"),
        ] {
            let respond = Arc::clone(&respond);
            service.handle_request(
                Request::Sim {
                    id,
                    sim: SimRequest {
                        circuit,
                        models: models.into(),
                        ..SimRequest::default()
                    },
                },
                move |r| respond(r),
            );
        }
        service.drain();
        let mut got: Vec<(Option<u64>, ErrorKind)> = sink
            .lock()
            .expect("sink")
            .iter()
            .map(|r| match r {
                Response::Error { id, kind, .. } => (*id, *kind),
                other => panic!("expected error, got {other:?}"),
            })
            .collect();
        got.sort_unstable_by_key(|(id, _)| *id);
        assert_eq!(
            got,
            vec![
                (Some(1), ErrorKind::UnknownModels),
                (Some(2), ErrorKind::Circuit),
                (Some(3), ErrorKind::Circuit),
            ]
        );
        // Failed builds never pollute the cache.
        assert_eq!(service.cache().entries(), 0);
    }

    /// A synthetic native-library model set for service-level tests.
    fn synthetic_native_set(name: &str) -> ModelSet {
        use sigcircuit::GateKind;
        use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};

        struct Inverting;
        impl TransferFunction for Inverting {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: -q.a_in.signum() * 14.0,
                    delay: 0.05,
                }
            }
            fn backend_name(&self) -> &'static str {
                "inverting"
            }
        }
        struct Buffering;
        impl TransferFunction for Buffering {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: q.a_in.signum() * 14.0,
                    delay: 0.07,
                }
            }
            fn backend_name(&self) -> &'static str {
                "buffering"
            }
        }

        let mut cells = sigsim::CellModels::empty("native");
        for kind in [GateKind::Inv, GateKind::Nor, GateKind::Nand] {
            let slot = cells.push(GateModel::new(Arc::new(Inverting)));
            let single = kind == GateKind::Inv;
            cells.bind(slot, kind, single, false);
            cells.bind(slot, kind, single, true);
            if single {
                // The inverter cell also answers 1-input NORs.
                cells.bind(slot, GateKind::Nor, true, false);
                cells.bind(slot, GateKind::Nor, true, true);
            }
        }
        for kind in [GateKind::And, GateKind::Or] {
            let slot = cells.push(GateModel::new(Arc::new(Buffering)));
            cells.bind(slot, kind, false, false);
            cells.bind(slot, kind, false, true);
        }
        ModelSet {
            name: name.to_string(),
            library: "native".to_string(),
            policy: sigcircuit::MappingPolicy::Native,
            trained: None,
            cells: Arc::new(cells),
            delays: crate::registry::DelaySource::none(),
            options: sigtom::TomOptions::default(),
        }
    }

    #[test]
    fn native_library_requests_keep_native_cells() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        service.registry().insert(synthetic_native_set("synth"));
        // One netlist, both libraries: the native request reports its
        // library, caches separately, and answers with the same settled
        // levels as the NOR-mapped run.
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n".to_string();
        let request = |library: &str| SimRequest {
            circuit: CircuitSource::Inline(text.clone()),
            models: "synth".into(),
            library: library.into(),
            timing: false,
            ..SimRequest::default()
        };
        let nor = service.execute_sim(&request("nor-only")).unwrap();
        let native = service.execute_sim(&request("native")).unwrap();
        assert_eq!(nor.library, "nor-only");
        assert_eq!(native.library, "native");
        assert_ne!(
            nor.fingerprint, native.fingerprint,
            "policies simulate different mapped circuits"
        );
        assert_eq!(service.cache().misses(), 2, "policies cache separately");
        // Same boolean behaviour: settled output levels agree.
        assert_eq!(nor.outputs.len(), native.outputs.len());
        for (a, b) in nor.outputs.iter().zip(&native.outputs) {
            assert_eq!(a.final_high(), b.final_high(), "settled levels differ");
        }
        // Stats name both resident sets.
        let stats = service.stats();
        assert_eq!(
            stats.model_sets,
            vec!["synth/native".to_string(), "synth/nor-only".to_string()]
        );
    }

    #[test]
    fn repeated_requests_hit_the_program_cache_with_identical_results() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let sim = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 9,
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 0),
            "first request compiles the program"
        );
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 1),
            "warm request reuses the compiled program"
        );
        assert_eq!(service.programs().entries(), 1);
        // Identical payloads modulo the circuit-cache field.
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        // And identical to the fused no-program reference path (what
        // `sigctl golden` runs): the program is a pure accelerator.
        let set = service.registry().get_or_load("synth", "nor-only").unwrap();
        let circuit = sigcircuit::Benchmark::by_name("c17")
            .unwrap()
            .nor_mapped
            .clone();
        let golden = run_sim(&circuit, &set, &sim, CacheOutcome::Miss).unwrap();
        assert_eq!(golden, first, "program path must match the fused path");
        // A different seed reuses the program (stimulus is bind-time
        // input, not part of the key) but changes the outputs.
        let reseeded = service
            .execute_sim(&SimRequest { seed: 10, ..sim })
            .unwrap();
        assert_eq!(
            (service.programs().misses(), service.programs().hits()),
            (1, 2)
        );
        assert_ne!(reseeded.outputs, first.outputs, "seed must matter");
    }

    #[test]
    fn pooled_fleet_arena_counters_reset_between_requests() {
        // Regression: `FleetScratch` accumulates `runs`/`rows_merged`
        // across executions, and `FleetPool` reuses arenas. Without the
        // reset on acquire, a warm request's counters included the
        // arena's whole history, so the daemon's `fleet_rows` stat grew
        // quadratically instead of linearly.
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let sim = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 3,
            timing: false,
            ..SimRequest::default()
        };
        service.execute_sim_batch(&sim, 3).unwrap();
        let first = service.stats();
        assert!(first.fleet_rows > 0, "fleet must merge rows");
        assert_eq!(first.fleet_runs, 3);
        // Identical warm request through the pooled arena: stats must
        // grow by exactly one request's worth, not the arena's history.
        service.execute_sim_batch(&sim, 3).unwrap();
        let second = service.stats();
        assert_eq!(second.fleet_runs, 6);
        assert_eq!(
            second.fleet_rows,
            2 * first.fleet_rows,
            "pooled arena must not double-count its history"
        );
    }

    #[test]
    fn timings_opt_in_reports_phases_and_golden_path_stays_silent() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let plain = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 11,
            timing: false,
            ..SimRequest::default()
        };
        // Without the opt-in, no breakdown is attached (byte parity with
        // the golden transcripts depends on this).
        let silent = service.execute_sim(&plain).unwrap();
        assert!(silent.timings.is_none());
        // With it, resolve and execute phases are filled by the service;
        // queue wait and the total belong to the dispatch boundary and
        // stay zero on this direct call.
        let timed = service
            .execute_sim(&SimRequest {
                timings: true,
                ..plain.clone()
            })
            .unwrap();
        let t = timed.timings.expect("opt-in must attach timings");
        assert!(t.resolve_s >= 0.0);
        assert!(t.execute_s > 0.0, "execution takes nonzero time");
        assert_eq!(t.queue_s, 0.0);
        assert_eq!(t.total_s, 0.0);
        // Fleet entries each echo the one shared breakdown.
        let fleet = service
            .execute_sim_batch(
                &SimRequest {
                    timings: true,
                    ..plain
                },
                2,
            )
            .unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[0].timings, fleet[1].timings);
        assert!(fleet[0].timings.as_ref().expect("fleet timings").execute_s > 0.0);
    }

    #[test]
    fn reinserted_model_set_never_serves_a_stale_program() {
        use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};
        struct Slow;
        impl TransferFunction for Slow {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: -q.a_in.signum() * 14.0,
                    delay: 0.45,
                }
            }
            fn backend_name(&self) -> &'static str {
                "slow"
            }
        }
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let sim = SimRequest {
            circuit: CircuitSource::Name("c17".into()),
            models: "synth".into(),
            seed: 4,
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        // An embedder swaps the set under the same (name, library) key
        // with different models: the cached program compiled against the
        // old cells must not answer for the new set.
        let mut swapped = synthetic_set("synth");
        swapped.cells = Arc::new(sigsim::CellModels::nor_only(&sigsim::GateModels::uniform(
            GateModel::new(Arc::new(Slow)),
        )));
        service.registry().insert(swapped);
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(
            service.programs().misses(),
            2,
            "new cells allocation must compile a new program"
        );
        assert_ne!(
            first.outputs, second.outputs,
            "responses must reflect the re-registered models"
        );
    }

    #[test]
    fn compare_requests_do_not_touch_the_program_cache() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        // The synthetic set has no delay table, so compare errors — but
        // the point here is the program-cache counters stay untouched
        // either way (compare mode keeps the fused harness path).
        let err = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                compare: true,
                ..SimRequest::default()
            })
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Simulation);
        assert_eq!(service.programs().misses(), 0);
        assert_eq!(service.programs().hits(), 0);
        let stats = service.stats();
        assert_eq!(stats.program_entries, 0);
        assert_eq!(stats.cache_misses, 1, "the circuit itself was cached");
    }

    #[test]
    fn compare_without_delay_table_is_rejected() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let err = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                compare: true,
                ..SimRequest::default()
            })
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Simulation);
        assert!(err.1.contains("delay table"), "{}", err.1);
    }

    /// Collects responses from session-aware dispatch and drains, so a
    /// test reads one request's complete outcome.
    fn roundtrip(
        service: &Arc<Service>,
        table: &Arc<SessionTable>,
        request: Request,
    ) -> Vec<Response> {
        let (sink, respond) = collecting();
        service.handle_connection_request(request, Some(table), respond);
        service.drain();
        let responses = std::mem::take(&mut *sink.lock().expect("sink"));
        responses
    }

    #[test]
    fn session_delta_matches_cold_execute_of_final_stimuli() {
        use sigwave::{DigitalTrace, Level};
        use std::collections::HashMap;

        let service = Service::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        service.registry().insert(synthetic_set("synth"));
        let table = SessionTable::new(Arc::clone(&service));
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n".to_string();
        let open_sim = SimRequest {
            circuit: CircuitSource::Inline(text.clone()),
            models: "synth".into(),
            seed: 7,
            timing: false,
            ..SimRequest::default()
        };
        let opened = roundtrip(
            &service,
            &table,
            Request::SessionOpen {
                id: 1,
                session: 9,
                sim: open_sim.clone(),
            },
        );
        let baseline = match opened.as_slice() {
            [Response::Session {
                id: 1,
                session: 9,
                result,
            }] => result.clone(),
            other => panic!("expected session response, got {other:?}"),
        };
        // The baseline is exactly what a plain sim of the same request
        // answers (modulo the circuit-cache outcome of the second run).
        let plain = service.execute_sim(&open_sim).expect("plain sim");
        assert_eq!(baseline.outputs, plain.outputs);
        assert_eq!(baseline.fingerprint, plain.fingerprint);
        assert_eq!(service.stats().sessions_open, 1);

        // Apply a delta, then independently rebuild the *final* stimulus
        // set (baseline seed-derived stimuli with net `a` replaced) and
        // run it cold through the fused engine: bit parity is the
        // incremental engine's contract.
        let edit = SessionEdit {
            net: "a".into(),
            initial_high: true,
            toggles: vec![2.0e-10, 3.5e-10],
        };
        let deltad = roundtrip(
            &service,
            &table,
            Request::SessionDelta {
                id: 2,
                session: 9,
                edits: vec![edit.clone()],
            },
        );
        let delta = match deltad.as_slice() {
            [Response::Sim { id: 2, result }] => result.clone(),
            other => panic!("expected sim response, got {other:?}"),
        };
        assert_eq!(delta.cache, CacheOutcome::Hit, "deltas reuse the session");
        assert_eq!(delta.fingerprint, baseline.fingerprint);

        let set = service.registry().get_or_load("synth", "nor-only").unwrap();
        let circuit = crate::service::map_for_simulation(
            sigcircuit::parse_circuit(&text, sigcircuit::sniff_format(&text)).unwrap(),
            set.policy,
        );
        let spec = sigsim::StimulusSpec::new(open_sim.mu, open_sim.sigma, open_sim.transitions);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(open_sim.seed);
        let mut digital = sigsim::random_stimuli(&circuit, &spec, &mut rng);
        let a = circuit.find_net("a").expect("input a");
        digital.insert(
            a,
            DigitalTrace::new(Level::High, edit.toggles.clone()).unwrap(),
        );
        let vdd = set.options.vdd;
        let sigmoid: HashMap<_, _> = digital
            .iter()
            .map(|(&net, t)| (net, Arc::new(sigsim::digital_to_sigmoid(t, vdd))))
            .collect();
        let cold = sigsim::simulate_cells_with(
            &circuit,
            &sigmoid,
            &set.cells,
            set.options,
            &sigsim::SigmoidSimConfig::default(),
        )
        .expect("cold execute");
        let expected: Vec<_> = circuit
            .outputs()
            .iter()
            .map(|&o| {
                let d = cold.trace(o).digitize(vdd / 2.0);
                crate::protocol::OutputTrace {
                    net: circuit.net_name(o).to_string(),
                    initial_high: d.initial().is_high(),
                    toggles: d.toggles().to_vec(),
                }
            })
            .collect();
        assert_eq!(delta.outputs, expected, "delta must match cold execute");

        // Re-sending the identical edit is a no-op: byte-identical
        // response, zero gates re-evaluated.
        let before = service.stats().gates_reeval;
        let again = roundtrip(
            &service,
            &table,
            Request::SessionDelta {
                id: 3,
                session: 9,
                edits: vec![edit],
            },
        );
        let repeat = match again.as_slice() {
            [Response::Sim { id: 3, result }] => result.clone(),
            other => panic!("expected sim response, got {other:?}"),
        };
        assert_eq!(repeat, delta, "identical edit must answer identically");
        assert_eq!(
            service.stats().gates_reeval,
            before,
            "identical edit re-evaluates nothing"
        );
        assert_eq!(service.stats().delta_hits, 2);

        // Close releases the session; a second close is unknown.
        let closed = roundtrip(
            &service,
            &table,
            Request::SessionClose { id: 4, session: 9 },
        );
        assert_eq!(closed, vec![Response::SessionClosed { id: 4, session: 9 }]);
        assert_eq!(service.stats().sessions_open, 0);
        let reclosed = roundtrip(
            &service,
            &table,
            Request::SessionClose { id: 5, session: 9 },
        );
        assert!(
            matches!(
                reclosed.as_slice(),
                [Response::Error {
                    kind: ErrorKind::UnknownSession,
                    ..
                }]
            ),
            "{reclosed:?}"
        );
    }

    #[test]
    fn session_capacity_evicts_this_connections_lru() {
        let service = Service::new(ServiceConfig {
            workers: 1,
            session_capacity: 2,
            ..ServiceConfig::default()
        });
        service.registry().insert(synthetic_set("synth"));
        let table = SessionTable::new(Arc::clone(&service));
        let open = |session: u64, id: u64| Request::SessionOpen {
            id,
            session,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                seed: session,
                timing: false,
                ..SimRequest::default()
            },
        };
        for (session, id) in [(1, 1), (2, 2)] {
            let got = roundtrip(&service, &table, open(session, id));
            assert!(
                matches!(got.as_slice(), [Response::Session { .. }]),
                "{got:?}"
            );
        }
        assert_eq!(service.stats().sessions_open, 2);
        // Touch session 1 so session 2 becomes the LRU victim.
        let touched = roundtrip(
            &service,
            &table,
            Request::SessionDelta {
                id: 3,
                session: 1,
                edits: vec![],
            },
        );
        assert!(
            matches!(touched.as_slice(), [Response::Sim { .. }]),
            "{touched:?}"
        );
        let third = roundtrip(&service, &table, open(3, 4));
        assert!(
            matches!(third.as_slice(), [Response::Session { .. }]),
            "{third:?}"
        );
        assert_eq!(service.stats().sessions_open, 2, "cap holds after evict");
        // Session 2 was evicted; 1 and 3 still answer.
        for (session, id, open_expected) in [(2u64, 5u64, false), (1, 6, true), (3, 7, true)] {
            let got = roundtrip(
                &service,
                &table,
                Request::SessionDelta {
                    id,
                    session,
                    edits: vec![],
                },
            );
            if open_expected {
                assert!(matches!(got.as_slice(), [Response::Sim { .. }]), "{got:?}");
            } else {
                assert!(
                    matches!(
                        got.as_slice(),
                        [Response::Error {
                            kind: ErrorKind::UnknownSession,
                            ..
                        }]
                    ),
                    "{got:?}"
                );
            }
        }
    }

    #[test]
    fn failed_open_releases_its_slot() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let table = SessionTable::new(Arc::clone(&service));
        let got = roundtrip(
            &service,
            &table,
            Request::SessionOpen {
                id: 1,
                session: 4,
                sim: SimRequest {
                    circuit: CircuitSource::Name("c17".into()),
                    models: "ghost".into(),
                    ..SimRequest::default()
                },
            },
        );
        assert!(
            matches!(
                got.as_slice(),
                [Response::Error {
                    id: Some(1),
                    kind: ErrorKind::UnknownModels,
                    ..
                }]
            ),
            "{got:?}"
        );
        assert_eq!(service.stats().sessions_open, 0, "failed open frees budget");
        let delta = roundtrip(
            &service,
            &table,
            Request::SessionDelta {
                id: 2,
                session: 4,
                edits: vec![],
            },
        );
        assert!(
            matches!(
                delta.as_slice(),
                [Response::Error {
                    kind: ErrorKind::UnknownSession,
                    ..
                }]
            ),
            "{delta:?}"
        );
    }

    #[test]
    fn session_requests_need_a_connection_table() {
        let service = Service::new(ServiceConfig::default());
        let (sink, respond) = collecting();
        let respond = Arc::new(respond);
        for request in [
            Request::SessionOpen {
                id: 1,
                session: 1,
                sim: SimRequest::default(),
            },
            Request::SessionDelta {
                id: 2,
                session: 1,
                edits: vec![],
            },
            Request::SessionClose { id: 3, session: 1 },
        ] {
            let respond = Arc::clone(&respond);
            // The table-less back-compat entry point rejects session ops.
            service.handle_request(request, move |r| respond(r));
        }
        service.drain();
        let got = sink.lock().expect("sink").clone();
        assert_eq!(got.len(), 3);
        assert!(
            got.iter().all(|r| matches!(
                r,
                Response::Error {
                    kind: ErrorKind::Protocol,
                    ..
                }
            )),
            "{got:?}"
        );
    }

    #[test]
    fn inline_bench_text_simulates_and_caches_by_content() {
        let service = Service::new(ServiceConfig::default());
        service.registry().insert(synthetic_set("synth"));
        let bench =
            sigcircuit::to_bench(&sigcircuit::Benchmark::by_name("c17").unwrap().nor_mapped);
        let sim = SimRequest {
            circuit: CircuitSource::Inline(bench.clone()),
            models: "synth".into(),
            timing: false,
            ..SimRequest::default()
        };
        let first = service.execute_sim(&sim).unwrap();
        let second = service.execute_sim(&sim).unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert_eq!(
            first.outputs, second.outputs,
            "results identical across cache states"
        );
        // The same netlist through a *name* source is a different cache
        // key (and a structurally renumbered circuit after the
        // `.bench` round trip), but inputs/outputs keep their names and
        // order, so the predictions are identical.
        let by_name = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                timing: false,
                ..SimRequest::default()
            })
            .unwrap();
        assert_eq!(by_name.outputs, first.outputs);
        assert_eq!(service.cache().misses(), 2);
        assert_eq!(service.cache().hits(), 1);
        // Non-NOR inline netlists are NOR-mapped before simulation.
        let non_nor = service
            .execute_sim(&SimRequest {
                circuit: CircuitSource::Inline(
                    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n".into(),
                ),
                models: "synth".into(),
                timing: false,
                ..SimRequest::default()
            })
            .unwrap();
        assert_eq!(non_nor.outputs.len(), 1);
    }
}
