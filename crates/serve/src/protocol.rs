//! The `sigserve` wire protocol: newline-delimited JSON frames.
//!
//! One request or response per line, LF-terminated, UTF-8, at most
//! [`MAX_FRAME_BYTES`] per frame (the daemon may lower the limit). The
//! full grammar is normatively specified in `docs/protocol.md`; the shape is:
//!
//! ```text
//! → {"id":1,"op":"ping"}
//! ← {"id":1,"ok":true,"reply":"pong"}
//! → {"id":2,"op":"sim","circuit":{"name":"c17"},"models":"ci",
//!    "seed":7,"mu":6e-11,"sigma":2.5e-11,"transitions":4,
//!    "compare":true,"timing":false}
//! ← {"id":2,"ok":true,"reply":"sim","result":{...}}
//! ← {"id":3,"ok":false,"error":{"kind":"overloaded","message":"..."}}
//! ```
//!
//! Every malformed input — arbitrary bytes, truncated frames, oversized
//! frames, shape mismatches — yields a structured [`ProtocolError`]; the
//! decoder never panics (property-tested in `tests/protocol_proptests.rs`).
//!
//! Integers (`id`, `seed`, counters) travel as JSON numbers and are exact
//! up to `2^53` — the vendored JSON stub carries all numbers as `f64`.
//! Full-range `u64` values (circuit fingerprints) travel as fixed-width
//! hex strings instead.

use serde::{Deserialize, Serialize, Value};

/// Default hard cap on one frame's length in bytes, terminator included.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Exclusive upper bound on wire integers: values in `[0, 2^53)` are
/// exact in the all-numbers-are-`f64` JSON model; the boundary itself is
/// rejected because `2^53` and `2^53 + 1` parse to the same float.
pub const MAX_WIRE_INT: u64 = 1 << 53;

/// Hard cap on a sim request's `transitions` field. Table I's heaviest
/// setup uses 20; the cap leaves three orders of magnitude of headroom
/// while keeping one frame from demanding unbounded stimulus memory
/// (the daemon promises bounded memory under any input).
pub const MAX_TRANSITIONS: usize = 4096;

/// Hard cap on a `sim.batch` request's `runs` field. The paper's heaviest
/// Monte-Carlo campaign uses 50 runs per cell; the cap keeps one frame
/// from demanding an unbounded fleet while leaving generous headroom.
pub const MAX_BATCH_RUNS: usize = 256;

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Where the circuit of a [`SimRequest`] comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitSource {
    /// A built-in benchmark by name (`c17`, `c499`, `c1355`); the service
    /// simulates the form mapped for the request's library (NOR-only or
    /// native cells), exactly like the experiment bins.
    Name(String),
    /// An inline netlist: ISCAS `.bench` text or the JSON `Circuit`
    /// serialization (auto-detected). Netlists not conforming to the
    /// request's cell set are mapped with default options before
    /// simulation.
    Inline(String),
}

/// One simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// The circuit to simulate.
    pub circuit: CircuitSource,
    /// Model-registry key (`default`, `fast`, `ci`, `paper`, or a name
    /// pre-registered by the embedding process).
    pub models: String,
    /// Cell-library key (`nor-only` or `native`); selects both the
    /// trained models and the mapping policy applied to the circuit.
    /// Optional on the wire with back-compat default `nor-only`, so
    /// pre-library clients keep getting prototype behaviour.
    pub library: String,
    /// Seed of the per-request stimulus RNG (`< 2^53`).
    pub seed: u64,
    /// Mean inter-transition time µt in seconds ([`sigsim::StimulusSpec`]).
    pub mu: f64,
    /// Stddev σt of inter-transition times in seconds.
    pub sigma: f64,
    /// Transitions per input.
    pub transitions: usize,
    /// `true`: run the full three-way comparison ([`sigsim::compare_circuit`]
    /// — analog reference, digital baseline, sigmoid prototype) and report
    /// `t_err` statistics. `false`: sigmoid-only prediction (stimuli
    /// converted at the fixed same-stimulus slope), no analog run.
    pub compare: bool,
    /// Include wall-clock timing in the response. Off, responses are fully
    /// deterministic (byte-for-byte reproducible), which the CI smoke job
    /// relies on.
    pub timing: bool,
    /// Echo a service-side phase breakdown ([`PhaseTimings`]) on the
    /// response. Optional on the wire with back-compat default `false`
    /// (old clients see byte-identical responses); like `timing`, turning
    /// it on makes the response wall-clock-dependent.
    pub timings: bool,
}

impl Default for SimRequest {
    fn default() -> Self {
        Self {
            circuit: CircuitSource::Name("c17".to_string()),
            models: "default".to_string(),
            library: "nor-only".to_string(),
            seed: 1,
            mu: 60e-12,
            sigma: 25e-12,
            transitions: 4,
            compare: false,
            timing: true,
            timings: false,
        }
    }
}

/// One stimulus edit of a `session.delta` request: replaces the digital
/// stimulus on a named primary input (converted to a sigmoid trace with
/// the same fixed-slope rule full requests use, so a delta is equivalent
/// to re-sending the whole stimulus set with this input changed).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEdit {
    /// Primary-input net name.
    pub net: String,
    /// Initial logic level (`true` = high); optional on the wire with
    /// default `false` (matching [`OutputTrace`]'s convention).
    pub initial_high: bool,
    /// Toggle times in seconds: finite, positive, strictly increasing,
    /// at most [`MAX_TRANSITIONS`]. Empty means a constant level.
    pub toggles: Vec<f64>,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Request id, echoed in the response.
        id: u64,
    },
    /// Service counters (registry loads, cache hits, queue state).
    Stats {
        /// Request id.
        id: u64,
    },
    /// Drain and return the daemon's span journal ([`TraceSpan`]s).
    /// Empty unless the daemon runs with `SIG_OBS=trace` (or
    /// `sigserve --trace`); draining resets the journal.
    Trace {
        /// Request id.
        id: u64,
    },
    /// Graceful shutdown: stop accepting simulations, drain in-flight
    /// work, then confirm.
    Shutdown {
        /// Request id.
        id: u64,
    },
    /// Run a simulation.
    Sim {
        /// Request id.
        id: u64,
        /// The simulation parameters.
        sim: SimRequest,
    },
    /// Run `runs` sigmoid simulations of one circuit as a fleet: run `r`
    /// uses stimulus seed `sim.seed + r`, all runs execute in lockstep
    /// through one compiled program, and each result is byte-identical to
    /// the corresponding individual `sim` request. Sigmoid-only
    /// (`compare` is rejected at decode, like sessions).
    SimBatch {
        /// Request id.
        id: u64,
        /// The shared simulation parameters (`seed` is the base seed).
        sim: SimRequest,
        /// Fleet width: `1..=MAX_BATCH_RUNS`, with `seed + runs` still
        /// below `2^53` so every derived seed stays wire-exact.
        runs: usize,
    },
    /// Open an incremental session: run the baseline simulation and keep
    /// its state resident under the client-chosen session id. Sessions
    /// are sigmoid-only (`compare` is rejected at decode).
    SessionOpen {
        /// Request id.
        id: u64,
        /// Client-chosen session id, scoped to this connection.
        session: u64,
        /// The baseline simulation parameters.
        sim: SimRequest,
    },
    /// Apply stimulus edits to an open session and return the updated
    /// result (re-simulating only the affected cone).
    SessionDelta {
        /// Request id.
        id: u64,
        /// Session id from a prior `session.open`.
        session: u64,
        /// The stimulus edits.
        edits: Vec<SessionEdit>,
    },
    /// Close a session, releasing its resident state.
    SessionClose {
        /// Request id.
        id: u64,
        /// Session id to close.
        session: u64,
    },
}

impl Request {
    /// The request id (echoed on every response).
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Self::Ping { id }
            | Self::Stats { id }
            | Self::Trace { id }
            | Self::Shutdown { id }
            | Self::Sim { id, .. }
            | Self::SimBatch { id, .. }
            | Self::SessionOpen { id, .. }
            | Self::SessionDelta { id, .. }
            | Self::SessionClose { id, .. } => *id,
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One primary output's predicted trace in a [`SimResult`]: the sigmoid
/// prototype's output digitized at `VDD/2`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputTrace {
    /// Output net name.
    pub net: String,
    /// Initial logic level (`true` = high).
    pub initial_high: bool,
    /// Threshold-crossing times in seconds, strictly increasing.
    pub toggles: Vec<f64>,
}

impl OutputTrace {
    /// The settled level after all toggles.
    ///
    /// # Example
    ///
    /// ```
    /// use sigserve::protocol::OutputTrace;
    /// let t = OutputTrace {
    ///     net: "y".into(),
    ///     initial_high: false,
    ///     toggles: vec![1.0e-10, 2.5e-10, 4.0e-10],
    /// };
    /// assert!(t.final_high(), "odd toggle count flips the level");
    /// ```
    #[must_use]
    pub fn final_high(&self) -> bool {
        self.initial_high ^ (self.toggles.len() % 2 == 1)
    }
}

/// `t_err` accounting of a compare-mode request (mirrors
/// [`sigsim::ComparisonOutcome`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CompareStats {
    /// Total `t_err` of the digital baseline (seconds).
    pub t_err_digital: f64,
    /// Total `t_err` of the sigmoid prototype (seconds).
    pub t_err_sigmoid: f64,
    /// `t_err_sigmoid / t_err_digital` (the paper's error ratio).
    pub error_ratio: f64,
}

/// Service-side per-request phase breakdown (present only when the
/// request set `"timings": true`). Phases partition the request's time
/// inside the daemon: `queue_s` is scheduler queue wait, `resolve_s`
/// covers model/circuit/program resolution (cache hits make it small),
/// `execute_s` is engine execution, and `total_s` is the whole handled
/// interval (decode to encode, so `total_s >= queue_s + resolve_s +
/// execute_s`; the remainder is encode and bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTimings {
    /// Seconds spent waiting in the scheduler queue.
    pub queue_s: f64,
    /// Seconds resolving models, circuit, and compiled program.
    pub resolve_s: f64,
    /// Seconds executing the engine (bind + inference + finalize).
    pub execute_s: f64,
    /// Seconds from request acceptance to response construction.
    pub total_s: f64,
}

/// Wall-clock timings (present only when the request asked for them).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    /// Analog reference wall time in seconds (compare mode only, else 0).
    pub wall_analog_s: f64,
    /// Digital baseline wall time in seconds (compare mode only, else 0).
    pub wall_digital_s: f64,
    /// Sigmoid prototype wall time in seconds.
    pub wall_sigmoid_s: f64,
}

/// One completed span fetched from a daemon's journal by a `trace`
/// request. Times travel as fractional microseconds (`f64`, the JSON
/// number model) — nanosecond process-uptime stamps can exceed the
/// `2^53` wire-integer bound, microsecond floats cannot lose meaningful
/// precision at trace scale.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name (e.g. `program.execute`).
    pub name: String,
    /// Journal thread id (small sequential integer).
    pub tid: u64,
    /// Start in microseconds since the daemon's trace epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Optional numeric argument (e.g. `("rows", 128)`).
    pub arg: Option<(String, u64)>,
}

/// Whether a request's circuit came from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the circuit cache: no parsing or levelization ran.
    Hit,
    /// Parsed, validated and levelized on this request, then cached.
    Miss,
}

/// The payload of a successful simulation response.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Structural fingerprint of the simulated (mapped) circuit —
    /// [`sigcircuit::Circuit::fingerprint`] as fixed-width hex.
    pub fingerprint: String,
    /// The cell library that produced this result (`nor-only`/`native`),
    /// echoed so results are self-describing.
    pub library: String,
    /// Circuit-cache outcome for this request.
    pub cache: CacheOutcome,
    /// Per-output predicted traces, in circuit output order.
    pub outputs: Vec<OutputTrace>,
    /// `t_err` statistics (compare mode only).
    pub compare: Option<CompareStats>,
    /// Wall-clock timings (only when requested).
    pub timing: Option<TimingStats>,
    /// Service-side phase breakdown (only when the request set
    /// `"timings": true`).
    pub timings: Option<PhaseTimings>,
}

/// Machine-readable error category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame was not a valid request (bad JSON, bad shape, oversized,
    /// not UTF-8).
    Protocol,
    /// The scheduler queue is full — retry later (backpressure).
    Overloaded,
    /// The requested model-registry key does not exist.
    UnknownModels,
    /// The circuit could not be resolved (unknown name, parse failure).
    Circuit,
    /// The simulation itself failed (e.g. missing stimulus).
    Simulation,
    /// A `session.delta`/`session.close` named a session this connection
    /// does not have open (never opened, closed, or evicted by LRU).
    UnknownSession,
    /// The daemon is draining and no longer accepts simulations.
    ShuttingDown,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Protocol => "protocol",
            Self::Overloaded => "overloaded",
            Self::UnknownModels => "unknown-models",
            Self::Circuit => "circuit",
            Self::Simulation => "simulation",
            Self::UnknownSession => "unknown-session",
            Self::ShuttingDown => "shutting-down",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "protocol" => Self::Protocol,
            "overloaded" => Self::Overloaded,
            "unknown-models" => Self::UnknownModels,
            "circuit" => Self::Circuit,
            "simulation" => Self::Simulation,
            "unknown-session" => Self::UnknownSession,
            "shutting-down" => Self::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service counters reported by a stats request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReply {
    /// The resident model sets as `preset/library` keys (sorted), so
    /// `sigctl stats` reports which libraries produced the daemon's
    /// results.
    pub model_sets: Vec<String>,
    /// Model sets actually loaded/trained (not served from the registry).
    pub model_loads: u64,
    /// Model-set lookups, cached or not.
    pub model_requests: u64,
    /// Circuit-cache hits.
    pub cache_hits: u64,
    /// Circuit-cache misses (parses).
    pub cache_misses: u64,
    /// Circuits currently resident in the cache.
    pub cache_entries: u64,
    /// Program-cache hits (requests that skipped validation + planning).
    pub program_hits: u64,
    /// Program-cache misses (compiles).
    pub program_misses: u64,
    /// Compiled programs currently resident.
    pub program_entries: u64,
    /// Worker threads in the scheduler pool.
    pub workers: u64,
    /// Scheduler queue capacity (requests beyond this are rejected).
    pub queue_capacity: u64,
    /// Simulation requests completed (ok or error).
    pub completed: u64,
    /// Simulation requests rejected with `overloaded`.
    pub rejected: u64,
    /// Incremental sessions currently open across all connections.
    pub sessions_open: u64,
    /// `session.delta` requests served from resident session state.
    pub delta_hits: u64,
    /// Cumulative gates re-evaluated by delta requests (a full execution
    /// costs the whole gate count per run — the ratio is the measured
    /// incremental saving).
    pub gates_reeval: u64,
    /// The SIMD kernel level the daemon's inference runs at
    /// (`"scalar"`/`"sse2"`/`"avx2"`); empty when talking to a pre-SIMD
    /// daemon that doesn't report one.
    pub simd_level: String,
    /// Cumulative runs executed through the fleet path (`sim.batch`).
    pub fleet_runs: u64,
    /// Cumulative inference rows merged across fleet runs (how much
    /// batching the fleet path actually bought).
    pub fleet_rows: u64,
    /// The daemon's observability mode (`off`/`counters`/`trace`); empty
    /// when talking to a pre-observability daemon.
    pub obs_mode: String,
    /// Connections currently open on the daemon's multiplexed transport
    /// (`0` from pre-async daemons, which don't track the gauge).
    pub connections_open: u64,
    /// Frames read while their connection already had a request in
    /// flight — pipelining actually observed on the wire (`0` from
    /// pre-async daemons).
    pub frames_pipelined: u64,
    /// Heavy frames rejected by the daemon-wide admission budget before
    /// reaching the scheduler queue; a subset of `rejected` (`0` from
    /// pre-async daemons).
    pub admission_rejects: u64,
    /// p50 handled latency of `sim` requests in seconds (histogram
    /// bucket upper bound; `0` when none served or counters are off).
    pub sim_p50_s: f64,
    /// p99 handled latency of `sim` requests in seconds.
    pub sim_p99_s: f64,
    /// p50 handled latency of `sim.batch` requests in seconds.
    pub batch_p50_s: f64,
    /// p99 handled latency of `sim.batch` requests in seconds.
    pub batch_p99_s: f64,
    /// p50 handled latency of `session.delta` requests in seconds.
    pub delta_p50_s: f64,
    /// p99 handled latency of `session.delta` requests in seconds.
    pub delta_p99_s: f64,
    /// p50 scheduler queue wait of accepted simulation jobs in seconds.
    pub queue_p50_s: f64,
    /// p99 scheduler queue wait of accepted simulation jobs in seconds.
    pub queue_p99_s: f64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to ping.
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Successful simulation.
    Sim {
        /// Echoed request id.
        id: u64,
        /// The simulation payload.
        result: SimResult,
    },
    /// Successful fleet simulation: one payload per run, in run order
    /// (entry `r` is byte-identical to the `sim` response for seed
    /// `seed + r`).
    SimBatch {
        /// Echoed request id.
        id: u64,
        /// Per-run simulation payloads.
        results: Vec<SimResult>,
    },
    /// Service counters.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters.
        stats: StatsReply,
    },
    /// The drained span journal (empty unless the daemon traces).
    Trace {
        /// Echoed request id.
        id: u64,
        /// Completed spans, sorted by start time.
        spans: Vec<TraceSpan>,
        /// Spans lost to journal ring overflow since the last drain.
        dropped: u64,
    },
    /// Shutdown acknowledged; in-flight work has drained.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
    /// Session opened; carries the baseline simulation result.
    Session {
        /// Echoed request id.
        id: u64,
        /// Echoed session id.
        session: u64,
        /// The baseline simulation payload.
        result: SimResult,
    },
    /// Session closed; its resident state is released.
    SessionClosed {
        /// Echoed request id.
        id: u64,
        /// Echoed session id.
        session: u64,
    },
    /// Any failure. `id` is `None` when the frame was too malformed to
    /// carry one.
    Error {
        /// Echoed request id, if decodable.
        id: Option<u64>,
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed request id, if any.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        match self {
            Self::Pong { id }
            | Self::Sim { id, .. }
            | Self::SimBatch { id, .. }
            | Self::Stats { id, .. }
            | Self::Trace { id, .. }
            | Self::ShuttingDown { id }
            | Self::Session { id, .. }
            | Self::SessionClosed { id, .. } => Some(*id),
            Self::Error { id, .. } => *id,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A structured protocol failure (decoding direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame exceeded the size limit.
    Oversized {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The frame was not valid UTF-8.
    NotUtf8,
    /// The frame was not valid JSON or not the expected shape.
    Malformed {
        /// Parser/shape detail.
        message: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oversized { limit } => write!(f, "frame exceeds {limit} bytes"),
            Self::NotUtf8 => f.write_str("frame is not valid UTF-8"),
            Self::Malformed { message } => write!(f, "malformed frame: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// The error response this failure maps to. A best-effort `id` is
    /// recovered from the broken frame when possible so the client can
    /// correlate.
    #[must_use]
    pub fn to_response(&self, id: Option<u64>) -> Response {
        Response::Error {
            id,
            kind: ErrorKind::Protocol,
            message: self.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Value helpers (manual serde: the wire shape is a stable contract, kept
// independent of Rust field names and the stub derive's capabilities)
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::cast_possible_truncation
)]
fn u64_from(v: &Value, what: &str) -> Result<u64, serde::Error> {
    let n = f64::from_value(v)?;
    // Strictly below 2^53: at the boundary the nearest-f64 parse already
    // conflates 2^53 with 2^53+1, so accepting it would silently corrupt
    // the value instead of erroring.
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n < MAX_WIRE_INT as f64 {
        Ok(n as u64)
    } else {
        Err(serde::Error::new(format!(
            "{what} must be an integer in [0, 2^53), got {n}"
        )))
    }
}

fn get_u64(v: &Value, field: &str) -> Result<u64, serde::Error> {
    u64_from(v.get_field(field)?, &format!("field `{field}`"))
}

fn get_f64(v: &Value, field: &str) -> Result<f64, serde::Error> {
    f64::from_value(v.get_field(field)?)
}

fn get_str(v: &Value, field: &str) -> Result<String, serde::Error> {
    String::from_value(v.get_field(field)?)
}

fn get_bool_or(v: &Value, field: &str, default: bool) -> Result<bool, serde::Error> {
    match v.get_field(field) {
        Ok(f) => bool::from_value(f),
        Err(_) => Ok(default),
    }
}

fn get_u64_or(v: &Value, field: &str, default: u64) -> Result<u64, serde::Error> {
    match v.get_field(field) {
        Ok(f) => u64_from(f, &format!("field `{field}`")),
        Err(_) => Ok(default),
    }
}

fn get_f64_or(v: &Value, field: &str, default: f64) -> Result<f64, serde::Error> {
    match v.get_field(field) {
        Ok(f) => f64::from_value(f),
        Err(_) => Ok(default),
    }
}

/// Formats a full-range `u64` as the fixed-width hex string the wire
/// format uses for fingerprints.
///
/// # Example
///
/// ```
/// assert_eq!(sigserve::protocol::hex64(0xbeef), "000000000000beef");
/// ```
#[must_use]
pub fn hex64(x: u64) -> String {
    format!("{x:016x}")
}

/// Parses a [`hex64`] string.
///
/// # Errors
///
/// Returns a serde error unless the input is exactly 16 lowercase hex
/// digits.
pub fn parse_hex64(s: &str) -> Result<u64, serde::Error> {
    if s.len() == 16 && s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        u64::from_str_radix(s, 16).map_err(|e| serde::Error::new(e.to_string()))
    } else {
        Err(serde::Error::new(format!(
            "expected 16 lowercase hex digits, got {s:?}"
        )))
    }
}

/// Encodes a sim-shaped request (`sim`, `sim.batch` or `session.open`,
/// which all carry the same stimulus fields plus an op-specific extra).
fn sim_to_value(
    id: u64,
    op: &str,
    session: Option<u64>,
    runs: Option<u64>,
    sim: &SimRequest,
) -> Value {
    let circuit = match &sim.circuit {
        CircuitSource::Name(n) => obj(vec![("name", n.to_value())]),
        CircuitSource::Inline(t) => obj(vec![("inline", t.to_value())]),
    };
    let mut fields = vec![("id", id.to_value()), ("op", op.to_value())];
    if let Some(s) = session {
        fields.push(("session", s.to_value()));
    }
    if let Some(r) = runs {
        fields.push(("runs", r.to_value()));
    }
    fields.extend([
        ("circuit", circuit),
        ("models", sim.models.to_value()),
        ("library", sim.library.to_value()),
        ("seed", sim.seed.to_value()),
        ("mu", sim.mu.to_value()),
        ("sigma", sim.sigma.to_value()),
        ("transitions", (sim.transitions as u64).to_value()),
        ("compare", sim.compare.to_value()),
        ("timing", sim.timing.to_value()),
    ]);
    // Emitted only when set: requests from pre-observability clients (and
    // the default) stay byte-identical to what older daemons golden-test.
    if sim.timings {
        fields.push(("timings", true.to_value()));
    }
    obj(fields)
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Self::Ping { id } => obj(vec![("id", id.to_value()), ("op", "ping".to_value())]),
            Self::Stats { id } => obj(vec![("id", id.to_value()), ("op", "stats".to_value())]),
            Self::Trace { id } => obj(vec![("id", id.to_value()), ("op", "trace".to_value())]),
            Self::Shutdown { id } => {
                obj(vec![("id", id.to_value()), ("op", "shutdown".to_value())])
            }
            Self::Sim { id, sim } => sim_to_value(*id, "sim", None, None, sim),
            Self::SimBatch { id, sim, runs } => {
                sim_to_value(*id, "sim.batch", None, Some(*runs as u64), sim)
            }
            Self::SessionOpen { id, session, sim } => {
                sim_to_value(*id, "session.open", Some(*session), None, sim)
            }
            Self::SessionDelta { id, session, edits } => obj(vec![
                ("id", id.to_value()),
                ("op", "session.delta".to_value()),
                ("session", session.to_value()),
                ("edits", edits.to_value()),
            ]),
            Self::SessionClose { id, session } => obj(vec![
                ("id", id.to_value()),
                ("op", "session.close".to_value()),
                ("session", session.to_value()),
            ]),
        }
    }
}

impl Serialize for SessionEdit {
    fn to_value(&self) -> Value {
        obj(vec![
            ("net", self.net.to_value()),
            ("initial_high", self.initial_high.to_value()),
            ("toggles", self.toggles.to_value()),
        ])
    }
}

impl Deserialize for SessionEdit {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let toggles = Vec::<f64>::from_value(v.get_field("toggles")?)?;
        if toggles.len() > MAX_TRANSITIONS {
            return Err(serde::Error::new(format!(
                "field `toggles` must have at most {MAX_TRANSITIONS} entries"
            )));
        }
        // The same physical-trace invariants DigitalTrace enforces,
        // checked at decode so a bad edit fails in the protocol layer
        // instead of panicking in a worker.
        if !toggles.iter().all(|t| t.is_finite() && *t > 0.0) {
            return Err(serde::Error::new(
                "field `toggles` entries must be finite and positive",
            ));
        }
        if !toggles.windows(2).all(|w| w[0] < w[1]) {
            return Err(serde::Error::new(
                "field `toggles` must be strictly increasing",
            ));
        }
        Ok(Self {
            net: get_str(v, "net")?,
            initial_high: get_bool_or(v, "initial_high", false)?,
            toggles,
        })
    }
}

/// Decodes the sim-shaped stimulus fields shared by `sim` and
/// `session.open` requests.
fn sim_from_value(v: &Value) -> Result<SimRequest, serde::Error> {
    let cv = v.get_field("circuit")?;
    let circuit = if let Ok(name) = get_str(cv, "name") {
        CircuitSource::Name(name)
    } else if let Ok(text) = get_str(cv, "inline") {
        CircuitSource::Inline(text)
    } else {
        return Err(serde::Error::new(
            "field `circuit` needs `name` or `inline`",
        ));
    };
    let transitions = get_u64(v, "transitions")?;
    let transitions = usize::try_from(transitions)
        .ok()
        .filter(|&t| t <= MAX_TRANSITIONS)
        .ok_or_else(|| {
            serde::Error::new(format!(
                "field `transitions` must be at most {MAX_TRANSITIONS}"
            ))
        })?;
    let mu = get_f64(v, "mu")?;
    let sigma = get_f64(v, "sigma")?;
    if !(mu > 0.0 && sigma > 0.0 && mu.is_finite() && sigma.is_finite()) {
        return Err(serde::Error::new(
            "fields `mu` and `sigma` must be positive and finite",
        ));
    }
    // Optional with back-compat default: pre-library clients never send
    // it and must keep prototype behaviour.
    let library = match v.get_field("library") {
        Ok(f) => String::from_value(f)?,
        Err(_) => "nor-only".to_string(),
    };
    Ok(SimRequest {
        circuit,
        models: get_str(v, "models")?,
        library,
        seed: get_u64(v, "seed")?,
        mu,
        sigma,
        transitions,
        compare: get_bool_or(v, "compare", false)?,
        timing: get_bool_or(v, "timing", true)?,
        timings: get_bool_or(v, "timings", false)?,
    })
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let id = get_u64(v, "id")?;
        let op = get_str(v, "op")?;
        match op.as_str() {
            "ping" => Ok(Self::Ping { id }),
            "stats" => Ok(Self::Stats { id }),
            "trace" => Ok(Self::Trace { id }),
            "shutdown" => Ok(Self::Shutdown { id }),
            "sim" => Ok(Self::Sim {
                id,
                sim: sim_from_value(v)?,
            }),
            "sim.batch" => {
                let sim = sim_from_value(v)?;
                if sim.compare {
                    return Err(serde::Error::new(
                        "batches are sigmoid-only: `compare` is not supported",
                    ));
                }
                let runs = get_u64(v, "runs")?;
                let runs = usize::try_from(runs)
                    .ok()
                    .filter(|&r| (1..=MAX_BATCH_RUNS).contains(&r))
                    .ok_or_else(|| {
                        serde::Error::new(format!("field `runs` must be in [1, {MAX_BATCH_RUNS}]"))
                    })?;
                // Run r uses stimulus seed `seed + r`; every derived seed
                // must itself be a valid wire integer, or replaying run r
                // as an individual `sim` request would be impossible.
                if sim.seed.checked_add(runs as u64).is_none()
                    || sim.seed + runs as u64 > MAX_WIRE_INT
                {
                    return Err(serde::Error::new(format!(
                        "`seed + runs` must be at most 2^53 so per-run seeds \
                         stay wire-exact, got {} + {runs}",
                        sim.seed
                    )));
                }
                Ok(Self::SimBatch { id, sim, runs })
            }
            "session.open" => {
                let session = get_u64(v, "session")?;
                let sim = sim_from_value(v)?;
                if sim.compare {
                    return Err(serde::Error::new(
                        "sessions are sigmoid-only: `compare` is not supported",
                    ));
                }
                Ok(Self::SessionOpen { id, session, sim })
            }
            "session.delta" => Ok(Self::SessionDelta {
                id,
                session: get_u64(v, "session")?,
                edits: Vec::<SessionEdit>::from_value(v.get_field("edits")?)?,
            }),
            "session.close" => Ok(Self::SessionClose {
                id,
                session: get_u64(v, "session")?,
            }),
            other => Err(serde::Error::new(format!("unknown op {other:?}"))),
        }
    }
}

impl Serialize for OutputTrace {
    fn to_value(&self) -> Value {
        obj(vec![
            ("net", self.net.to_value()),
            ("initial_high", self.initial_high.to_value()),
            ("toggles", self.toggles.to_value()),
        ])
    }
}

impl Deserialize for OutputTrace {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            net: get_str(v, "net")?,
            initial_high: bool::from_value(v.get_field("initial_high")?)?,
            toggles: Vec::<f64>::from_value(v.get_field("toggles")?)?,
        })
    }
}

impl Serialize for SimResult {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("fingerprint", self.fingerprint.to_value()),
            ("library", self.library.to_value()),
            (
                "cache",
                match self.cache {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Miss => "miss",
                }
                .to_value(),
            ),
            ("outputs", self.outputs.to_value()),
        ];
        if let Some(c) = &self.compare {
            fields.push((
                "compare",
                obj(vec![
                    ("t_err_digital", c.t_err_digital.to_value()),
                    ("t_err_sigmoid", c.t_err_sigmoid.to_value()),
                    ("error_ratio", c.error_ratio.to_value()),
                ]),
            ));
        }
        if let Some(t) = &self.timing {
            fields.push((
                "timing",
                obj(vec![
                    ("wall_analog_s", t.wall_analog_s.to_value()),
                    ("wall_digital_s", t.wall_digital_s.to_value()),
                    ("wall_sigmoid_s", t.wall_sigmoid_s.to_value()),
                ]),
            ));
        }
        if let Some(p) = &self.timings {
            fields.push((
                "timings",
                obj(vec![
                    ("queue_s", p.queue_s.to_value()),
                    ("resolve_s", p.resolve_s.to_value()),
                    ("execute_s", p.execute_s.to_value()),
                    ("total_s", p.total_s.to_value()),
                ]),
            ));
        }
        obj(fields)
    }
}

impl Deserialize for SimResult {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let fingerprint = get_str(v, "fingerprint")?;
        parse_hex64(&fingerprint)?;
        // Absent only in pre-library responses: default like requests do.
        let library = match v.get_field("library") {
            Ok(f) => String::from_value(f)?,
            Err(_) => "nor-only".to_string(),
        };
        let cache = match get_str(v, "cache")?.as_str() {
            "hit" => CacheOutcome::Hit,
            "miss" => CacheOutcome::Miss,
            other => {
                return Err(serde::Error::new(format!(
                    "field `cache` must be hit/miss, got {other:?}"
                )))
            }
        };
        let compare = match v.get_field("compare") {
            Ok(c) => Some(CompareStats {
                t_err_digital: get_f64(c, "t_err_digital")?,
                t_err_sigmoid: get_f64(c, "t_err_sigmoid")?,
                error_ratio: get_f64(c, "error_ratio")?,
            }),
            Err(_) => None,
        };
        let timing = match v.get_field("timing") {
            Ok(t) => Some(TimingStats {
                wall_analog_s: get_f64(t, "wall_analog_s")?,
                wall_digital_s: get_f64(t, "wall_digital_s")?,
                wall_sigmoid_s: get_f64(t, "wall_sigmoid_s")?,
            }),
            Err(_) => None,
        };
        let timings = match v.get_field("timings") {
            Ok(p) => Some(PhaseTimings {
                queue_s: get_f64(p, "queue_s")?,
                resolve_s: get_f64(p, "resolve_s")?,
                execute_s: get_f64(p, "execute_s")?,
                total_s: get_f64(p, "total_s")?,
            }),
            Err(_) => None,
        };
        Ok(Self {
            fingerprint,
            library,
            cache,
            outputs: Vec::<OutputTrace>::from_value(v.get_field("outputs")?)?,
            compare,
            timing,
            timings,
        })
    }
}

impl Serialize for StatsReply {
    fn to_value(&self) -> Value {
        obj(vec![
            ("model_sets", self.model_sets.to_value()),
            ("model_loads", self.model_loads.to_value()),
            ("model_requests", self.model_requests.to_value()),
            ("cache_hits", self.cache_hits.to_value()),
            ("cache_misses", self.cache_misses.to_value()),
            ("cache_entries", self.cache_entries.to_value()),
            ("program_hits", self.program_hits.to_value()),
            ("program_misses", self.program_misses.to_value()),
            ("program_entries", self.program_entries.to_value()),
            ("workers", self.workers.to_value()),
            ("queue_capacity", self.queue_capacity.to_value()),
            ("completed", self.completed.to_value()),
            ("rejected", self.rejected.to_value()),
            ("sessions_open", self.sessions_open.to_value()),
            ("delta_hits", self.delta_hits.to_value()),
            ("gates_reeval", self.gates_reeval.to_value()),
            ("simd_level", self.simd_level.to_value()),
            ("fleet_runs", self.fleet_runs.to_value()),
            ("fleet_rows", self.fleet_rows.to_value()),
            ("obs_mode", self.obs_mode.to_value()),
            ("connections_open", self.connections_open.to_value()),
            ("frames_pipelined", self.frames_pipelined.to_value()),
            ("admission_rejects", self.admission_rejects.to_value()),
            ("sim_p50_s", self.sim_p50_s.to_value()),
            ("sim_p99_s", self.sim_p99_s.to_value()),
            ("batch_p50_s", self.batch_p50_s.to_value()),
            ("batch_p99_s", self.batch_p99_s.to_value()),
            ("delta_p50_s", self.delta_p50_s.to_value()),
            ("delta_p99_s", self.delta_p99_s.to_value()),
            ("queue_p50_s", self.queue_p50_s.to_value()),
            ("queue_p99_s", self.queue_p99_s.to_value()),
        ])
    }
}

impl Deserialize for StatsReply {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            model_sets: match v.get_field("model_sets") {
                Ok(f) => Vec::<String>::from_value(f)?,
                Err(_) => Vec::new(),
            },
            model_loads: get_u64(v, "model_loads")?,
            model_requests: get_u64(v, "model_requests")?,
            cache_hits: get_u64(v, "cache_hits")?,
            cache_misses: get_u64(v, "cache_misses")?,
            cache_entries: get_u64(v, "cache_entries")?,
            // Absent in pre-program-cache daemons: default to zero so a
            // newer `sigctl` can still read an older daemon's stats.
            program_hits: get_u64_or(v, "program_hits", 0)?,
            program_misses: get_u64_or(v, "program_misses", 0)?,
            program_entries: get_u64_or(v, "program_entries", 0)?,
            workers: get_u64(v, "workers")?,
            queue_capacity: get_u64(v, "queue_capacity")?,
            completed: get_u64(v, "completed")?,
            rejected: get_u64(v, "rejected")?,
            // Absent in pre-session daemons: default to zero, like the
            // program_* counters above.
            sessions_open: get_u64_or(v, "sessions_open", 0)?,
            delta_hits: get_u64_or(v, "delta_hits", 0)?,
            gates_reeval: get_u64_or(v, "gates_reeval", 0)?,
            // Absent in pre-SIMD/pre-fleet daemons: empty level, zero
            // counters.
            simd_level: match v.get_field("simd_level") {
                Ok(f) => String::from_value(f)?,
                Err(_) => String::new(),
            },
            fleet_runs: get_u64_or(v, "fleet_runs", 0)?,
            fleet_rows: get_u64_or(v, "fleet_rows", 0)?,
            // Absent in pre-observability daemons: empty mode, zero
            // quantiles — the same decode-defaults discipline as above.
            obs_mode: match v.get_field("obs_mode") {
                Ok(f) => String::from_value(f)?,
                Err(_) => String::new(),
            },
            // Absent in pre-async-transport daemons: zero, as above.
            connections_open: get_u64_or(v, "connections_open", 0)?,
            frames_pipelined: get_u64_or(v, "frames_pipelined", 0)?,
            admission_rejects: get_u64_or(v, "admission_rejects", 0)?,
            sim_p50_s: get_f64_or(v, "sim_p50_s", 0.0)?,
            sim_p99_s: get_f64_or(v, "sim_p99_s", 0.0)?,
            batch_p50_s: get_f64_or(v, "batch_p50_s", 0.0)?,
            batch_p99_s: get_f64_or(v, "batch_p99_s", 0.0)?,
            delta_p50_s: get_f64_or(v, "delta_p50_s", 0.0)?,
            delta_p99_s: get_f64_or(v, "delta_p99_s", 0.0)?,
            queue_p50_s: get_f64_or(v, "queue_p50_s", 0.0)?,
            queue_p99_s: get_f64_or(v, "queue_p99_s", 0.0)?,
        })
    }
}

impl Serialize for TraceSpan {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name", self.name.to_value()),
            ("tid", self.tid.to_value()),
            ("start_us", self.start_us.to_value()),
            ("dur_us", self.dur_us.to_value()),
        ];
        if let Some((key, value)) = &self.arg {
            fields.push(("arg", key.to_value()));
            fields.push(("arg_value", value.to_value()));
        }
        obj(fields)
    }
}

impl Deserialize for TraceSpan {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let arg = match v.get_field("arg") {
            Ok(key) => Some((String::from_value(key)?, get_u64(v, "arg_value")?)),
            Err(_) => None,
        };
        Ok(Self {
            name: get_str(v, "name")?,
            tid: get_u64(v, "tid")?,
            start_us: get_f64(v, "start_us")?,
            dur_us: get_f64(v, "dur_us")?,
            arg,
        })
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Self::Pong { id } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "pong".to_value()),
            ]),
            Self::Sim { id, result } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "sim".to_value()),
                ("result", result.to_value()),
            ]),
            Self::SimBatch { id, results } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "sim.batch".to_value()),
                ("results", results.to_value()),
            ]),
            Self::Stats { id, stats } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "stats".to_value()),
                ("stats", stats.to_value()),
            ]),
            Self::Trace { id, spans, dropped } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "trace".to_value()),
                ("spans", spans.to_value()),
                ("dropped", dropped.to_value()),
            ]),
            Self::ShuttingDown { id } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "shutting-down".to_value()),
            ]),
            Self::Session {
                id,
                session,
                result,
            } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "session".to_value()),
                ("session", session.to_value()),
                ("result", result.to_value()),
            ]),
            Self::SessionClosed { id, session } => obj(vec![
                ("id", id.to_value()),
                ("ok", true.to_value()),
                ("reply", "session-closed".to_value()),
                ("session", session.to_value()),
            ]),
            Self::Error { id, kind, message } => obj(vec![
                (
                    "id",
                    match id {
                        Some(id) => id.to_value(),
                        None => Value::Null,
                    },
                ),
                ("ok", false.to_value()),
                (
                    "error",
                    obj(vec![
                        ("kind", kind.as_str().to_value()),
                        ("message", message.to_value()),
                    ]),
                ),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let ok = bool::from_value(v.get_field("ok")?)?;
        if !ok {
            let id = match v.get_field("id")? {
                Value::Null => None,
                other => Some(u64_from(other, "field `id`")?),
            };
            let e = v.get_field("error")?;
            let kind_s = get_str(e, "kind")?;
            let kind = ErrorKind::from_str(&kind_s)
                .ok_or_else(|| serde::Error::new(format!("unknown error kind {kind_s:?}")))?;
            return Ok(Self::Error {
                id,
                kind,
                message: get_str(e, "message")?,
            });
        }
        let id = get_u64(v, "id")?;
        match get_str(v, "reply")?.as_str() {
            "pong" => Ok(Self::Pong { id }),
            "shutting-down" => Ok(Self::ShuttingDown { id }),
            "sim" => Ok(Self::Sim {
                id,
                result: SimResult::from_value(v.get_field("result")?)?,
            }),
            "sim.batch" => Ok(Self::SimBatch {
                id,
                results: Vec::<SimResult>::from_value(v.get_field("results")?)?,
            }),
            "stats" => Ok(Self::Stats {
                id,
                stats: StatsReply::from_value(v.get_field("stats")?)?,
            }),
            "trace" => Ok(Self::Trace {
                id,
                spans: Vec::<TraceSpan>::from_value(v.get_field("spans")?)?,
                dropped: get_u64(v, "dropped")?,
            }),
            "session" => Ok(Self::Session {
                id,
                session: get_u64(v, "session")?,
                result: SimResult::from_value(v.get_field("result")?)?,
            }),
            "session-closed" => Ok(Self::SessionClosed {
                id,
                session: get_u64(v, "session")?,
            }),
            other => Err(serde::Error::new(format!("unknown reply {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

/// Encodes a request as one frame line (no terminator).
///
/// # Example
///
/// ```
/// use sigserve::protocol::{decode_request, encode_request, Request};
/// let r = Request::Ping { id: 7 };
/// let line = encode_request(&r);
/// assert!(!line.contains('\n'), "frames are single lines");
/// assert_eq!(decode_request(&line).unwrap(), r);
/// ```
#[must_use]
pub fn encode_request(r: &Request) -> String {
    serde_json::to_string(r).expect("request serialization is infallible")
}

/// Encodes a response as one frame line (no terminator).
#[must_use]
pub fn encode_response(r: &Response) -> String {
    serde_json::to_string(r).expect("response serialization is infallible")
}

fn decode<T: Deserialize>(line: &str) -> Result<T, ProtocolError> {
    serde_json::from_str(line).map_err(|e| ProtocolError::Malformed {
        message: e.to_string(),
    })
}

/// Decodes one request frame.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] on any invalid input; never
/// panics.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    decode(line)
}

/// Decodes one response frame.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] on any invalid input; never
/// panics.
pub fn decode_response(line: &str) -> Result<Response, ProtocolError> {
    decode(line)
}

/// Best-effort extraction of the `id` field from a frame that failed full
/// decoding, so error responses can still be correlated.
#[must_use]
pub fn salvage_id(line: &str) -> Option<u64> {
    let v: Value = serde_json::from_str(line).ok()?;
    get_u64(&v, "id").ok()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Reads LF-terminated frames from a byte stream with a hard per-frame
/// size cap. An oversized frame is consumed (discarded) up to its
/// terminator so the stream recovers on the next frame; the memory used
/// is bounded by the cap regardless of input. Partially read frames are
/// kept across calls, so a transient I/O error (e.g. a read timeout on
/// a socket polled for shutdown) never corrupts the stream.
#[derive(Debug)]
pub struct FrameReader<R> {
    input: R,
    max_frame: usize,
    /// Bytes of the frame currently being assembled.
    buf: Vec<u8>,
    /// The current frame already blew the cap; discard until its LF.
    oversized: bool,
}

impl<R: std::io::BufRead> FrameReader<R> {
    /// Wraps a buffered reader with the given frame cap (bytes, LF
    /// included).
    #[must_use]
    pub fn new(input: R, max_frame: usize) -> Self {
        assert!(max_frame > 0, "frame cap must be positive");
        Self {
            input,
            max_frame,
            buf: Vec::new(),
            oversized: false,
        }
    }

    fn take_frame(&mut self) -> Result<String, ProtocolError> {
        let buf = std::mem::take(&mut self.buf);
        if std::mem::take(&mut self.oversized) {
            Err(ProtocolError::Oversized {
                limit: self.max_frame,
            })
        } else {
            finish_frame(buf)
        }
    }

    /// Reads the next frame. `Ok(None)` is end of stream; a final
    /// unterminated frame is returned as a normal frame (standard
    /// text-protocol tolerance).
    ///
    /// # Errors
    ///
    /// Outer `Err` is transport I/O failure — for `WouldBlock`/`TimedOut`
    /// the reader stays consistent and the call can simply be retried;
    /// inner `Err` is a per-frame protocol violation (the stream stays
    /// usable).
    #[allow(clippy::missing_panics_doc)] // buffer arithmetic cannot underflow
    pub fn next_frame(&mut self) -> std::io::Result<Option<Result<String, ProtocolError>>> {
        loop {
            let available = self.input.fill_buf()?;
            if available.is_empty() {
                // EOF.
                if self.buf.is_empty() && !self.oversized {
                    return Ok(None);
                }
                return Ok(Some(self.take_frame()));
            }
            let newline = available.iter().position(|&b| b == b'\n');
            let take = newline.map_or(available.len(), |i| i + 1);
            if !self.oversized {
                if self.buf.len() + take > self.max_frame {
                    self.oversized = true;
                    self.buf.clear();
                } else {
                    self.buf.extend_from_slice(&available[..take]);
                }
            }
            let done = newline.is_some();
            self.input.consume(take);
            if done {
                return Ok(Some(self.take_frame()));
            }
        }
    }
}

fn finish_frame(mut buf: Vec<u8>) -> Result<String, ProtocolError> {
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ProtocolError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(bytes: &[u8], cap: usize) -> Vec<Result<String, ProtocolError>> {
        let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()), cap);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame().expect("cursor I/O cannot fail") {
            out.push(frame);
        }
        out
    }

    #[test]
    fn frames_split_on_lf_and_tolerate_missing_terminator() {
        let got = frames(b"abc\ndef\r\nghi", 64);
        assert_eq!(
            got,
            vec![
                Ok("abc".to_string()),
                Ok("def".to_string()),
                Ok("ghi".to_string())
            ]
        );
    }

    #[test]
    fn oversized_frame_is_skipped_and_stream_recovers() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let got = frames(&data, 16);
        assert_eq!(
            got,
            vec![
                Err(ProtocolError::Oversized { limit: 16 }),
                Ok("ok".to_string())
            ]
        );
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_panic() {
        let got = frames(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n'], 64);
        assert_eq!(got[0], Err(ProtocolError::NotUtf8));
        assert_eq!(got[1], Ok("ok".to_string()));
    }

    #[test]
    fn request_round_trip_all_variants() {
        let requests = vec![
            Request::Ping { id: 1 },
            Request::Stats { id: 2 },
            Request::Trace { id: 12 },
            Request::Shutdown { id: 3 },
            Request::Sim {
                id: 4,
                sim: SimRequest {
                    circuit: CircuitSource::Name("c17".into()),
                    models: "ci".into(),
                    library: "native".into(),
                    seed: 42,
                    mu: 60e-12,
                    sigma: 25e-12,
                    transitions: 4,
                    compare: true,
                    timing: false,
                    timings: false,
                },
            },
            Request::Sim {
                id: 13,
                sim: SimRequest {
                    timings: true,
                    ..SimRequest::default()
                },
            },
            Request::Sim {
                id: 5,
                sim: SimRequest {
                    circuit: CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = NOR(a)\n".into()),
                    ..SimRequest::default()
                },
            },
            Request::SessionOpen {
                id: 6,
                session: 11,
                sim: SimRequest {
                    circuit: CircuitSource::Name("c17".into()),
                    library: "native".into(),
                    timing: false,
                    ..SimRequest::default()
                },
            },
            Request::SessionDelta {
                id: 7,
                session: 11,
                edits: vec![
                    SessionEdit {
                        net: "1".into(),
                        initial_high: true,
                        toggles: vec![1.0e-10, 2.5e-10],
                    },
                    SessionEdit {
                        net: "2".into(),
                        initial_high: false,
                        toggles: vec![],
                    },
                ],
            },
            Request::SessionClose { id: 8, session: 11 },
            Request::SimBatch {
                id: 9,
                sim: SimRequest {
                    circuit: CircuitSource::Name("c1355".into()),
                    library: "native".into(),
                    seed: 100,
                    timing: false,
                    ..SimRequest::default()
                },
                runs: 16,
            },
        ];
        for r in requests {
            let line = encode_request(&r);
            assert!(!line.contains('\n'), "frames must be single lines");
            assert_eq!(decode_request(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn response_round_trip_all_variants() {
        let responses = vec![
            Response::Pong { id: 1 },
            Response::ShuttingDown { id: 9 },
            Response::Stats {
                id: 2,
                stats: StatsReply {
                    model_sets: vec!["ci/nor-only".into(), "ci/native".into()],
                    model_loads: 1,
                    model_requests: 10,
                    cache_hits: 90,
                    cache_misses: 3,
                    cache_entries: 3,
                    program_hits: 88,
                    program_misses: 5,
                    program_entries: 5,
                    workers: 4,
                    queue_capacity: 64,
                    completed: 93,
                    rejected: 2,
                    sessions_open: 3,
                    delta_hits: 41,
                    gates_reeval: 977,
                    simd_level: "avx2".into(),
                    fleet_runs: 32,
                    fleet_rows: 4096,
                    obs_mode: "counters".into(),
                    connections_open: 17,
                    frames_pipelined: 4096,
                    admission_rejects: 11,
                    sim_p50_s: 0.000131071,
                    sim_p99_s: 0.001048575,
                    batch_p50_s: 0.002097151,
                    batch_p99_s: 0.004194303,
                    delta_p50_s: 0.000016383,
                    delta_p99_s: 0.000065535,
                    queue_p50_s: 0.000001023,
                    queue_p99_s: 0.000032767,
                },
            },
            Response::Sim {
                id: 3,
                result: SimResult {
                    fingerprint: hex64(0xdead_beef_0123_4567),
                    library: "native".into(),
                    cache: CacheOutcome::Hit,
                    outputs: vec![OutputTrace {
                        net: "y".into(),
                        initial_high: false,
                        toggles: vec![1.25e-10, 3.5e-10],
                    }],
                    compare: Some(CompareStats {
                        t_err_digital: 3.2e-12,
                        t_err_sigmoid: 1.1e-12,
                        error_ratio: 0.34375,
                    }),
                    timing: Some(TimingStats {
                        wall_analog_s: 0.015,
                        wall_digital_s: 0.0001,
                        wall_sigmoid_s: 0.0002,
                    }),
                    timings: Some(PhaseTimings {
                        queue_s: 0.00001,
                        resolve_s: 0.0002,
                        execute_s: 0.0015,
                        total_s: 0.0018,
                    }),
                },
            },
            Response::Trace {
                id: 14,
                spans: vec![
                    TraceSpan {
                        name: "program.execute".into(),
                        tid: 2,
                        start_us: 1234.567,
                        dur_us: 89.001,
                        arg: None,
                    },
                    TraceSpan {
                        name: "execute.infer".into(),
                        tid: 2,
                        start_us: 1250.0,
                        dur_us: 12.5,
                        arg: Some(("rows".into(), 128)),
                    },
                ],
                dropped: 3,
            },
            Response::Error {
                id: None,
                kind: ErrorKind::Protocol,
                message: "malformed frame: expected a JSON value at byte 0".into(),
            },
            Response::Error {
                id: Some(7),
                kind: ErrorKind::Overloaded,
                message: "queue full".into(),
            },
            Response::Session {
                id: 8,
                session: 11,
                result: SimResult {
                    fingerprint: hex64(0x1234_5678_9abc_def0),
                    library: "native".into(),
                    cache: CacheOutcome::Miss,
                    outputs: vec![OutputTrace {
                        net: "22".into(),
                        initial_high: true,
                        toggles: vec![2.0e-10],
                    }],
                    compare: None,
                    timing: None,
                    timings: None,
                },
            },
            Response::SessionClosed { id: 9, session: 11 },
            Response::Error {
                id: Some(10),
                kind: ErrorKind::UnknownSession,
                message: "session 12 is not open on this connection".into(),
            },
            Response::SimBatch {
                id: 11,
                results: vec![
                    SimResult {
                        fingerprint: hex64(0xfeed_f00d_0000_0001),
                        library: "nor-only".into(),
                        cache: CacheOutcome::Miss,
                        outputs: vec![OutputTrace {
                            net: "y".into(),
                            initial_high: false,
                            toggles: vec![1.0e-10],
                        }],
                        compare: None,
                        timing: None,
                        timings: None,
                    },
                    SimResult {
                        fingerprint: hex64(0xfeed_f00d_0000_0001),
                        library: "nor-only".into(),
                        cache: CacheOutcome::Hit,
                        outputs: vec![],
                        compare: None,
                        timing: None,
                        timings: None,
                    },
                ],
            },
        ];
        for r in responses {
            let line = encode_response(&r);
            assert!(!line.contains('\n'));
            assert_eq!(decode_response(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for bad in [
            "",
            "null",
            "42",
            "{}",
            "{\"id\":1}",
            "{\"id\":1,\"op\":\"warp\"}",
            "{\"id\":-3,\"op\":\"ping\"}",
            "{\"id\":1e300,\"op\":\"ping\"}",
            "{\"id\":1.5,\"op\":\"ping\"}",
            "{\"id\":1,\"op\":\"sim\"}",
            "{\"id\":1,\"op\":\"sim\",\"circuit\":{},\"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}",
            "{\"id\":1,\"op\":\"sim\",\"circuit\":{\"name\":\"c17\"},\"models\":\"x\",\"seed\":1,\"mu\":-1.0,\"sigma\":1e-11,\"transitions\":2}",
            "{\"id\":1,\"op\":\"sim\",\"circuit\":{\"name\":\"c17\"},\"models\":\"x\",\"seed\":1,\"mu\":NaN,\"sigma\":1e-11,\"transitions\":2}",
            // An absurd transition count must be rejected at decode, not
            // allowed to size stimulus allocations in a worker.
            "{\"id\":1,\"op\":\"sim\",\"circuit\":{\"name\":\"c17\"},\"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":1e15}",
        ] {
            assert!(
                matches!(decode_request(bad), Err(ProtocolError::Malformed { .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn malformed_session_requests_are_structured_errors() {
        for bad in [
            // session.open without a session id.
            "{\"id\":1,\"op\":\"session.open\",\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}",
            // Sessions are sigmoid-only: compare mode is rejected.
            "{\"id\":1,\"op\":\"session.open\",\"session\":3,\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2,\
             \"compare\":true}",
            // Delta without edits.
            "{\"id\":1,\"op\":\"session.delta\",\"session\":3}",
            // Non-increasing toggles.
            "{\"id\":1,\"op\":\"session.delta\",\"session\":3,\
             \"edits\":[{\"net\":\"a\",\"toggles\":[2e-10,1e-10]}]}",
            // Non-positive toggle.
            "{\"id\":1,\"op\":\"session.delta\",\"session\":3,\
             \"edits\":[{\"net\":\"a\",\"toggles\":[0.0]}]}",
            // Non-finite toggle.
            "{\"id\":1,\"op\":\"session.delta\",\"session\":3,\
             \"edits\":[{\"net\":\"a\",\"toggles\":[Infinity]}]}",
            // Close without a session id.
            "{\"id\":1,\"op\":\"session.close\"}",
        ] {
            assert!(
                matches!(decode_request(bad), Err(ProtocolError::Malformed { .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn malformed_batch_requests_are_structured_errors() {
        for bad in [
            // sim.batch without a runs field.
            "{\"id\":1,\"op\":\"sim.batch\",\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}",
            // Zero runs.
            "{\"id\":1,\"op\":\"sim.batch\",\"runs\":0,\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}",
            // Over the fleet cap.
            "{\"id\":1,\"op\":\"sim.batch\",\"runs\":257,\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}",
            // Batches are sigmoid-only: compare mode is rejected.
            "{\"id\":1,\"op\":\"sim.batch\",\"runs\":4,\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":1,\"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2,\
             \"compare\":true}",
            // seed + runs would push per-run seeds past 2^53.
            "{\"id\":1,\"op\":\"sim.batch\",\"runs\":16,\"circuit\":{\"name\":\"c17\"},\
             \"models\":\"x\",\"seed\":9007199254740984,\"mu\":1e-11,\"sigma\":1e-11,\
             \"transitions\":2}",
        ] {
            assert!(
                matches!(decode_request(bad), Err(ProtocolError::Malformed { .. })),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn session_edit_defaults_and_caps() {
        let line = "{\"id\":1,\"op\":\"session.delta\",\"session\":3,\
                    \"edits\":[{\"net\":\"a\",\"toggles\":[1e-10]}]}";
        let Request::SessionDelta { edits, .. } = decode_request(line).unwrap() else {
            panic!("expected session.delta");
        };
        assert!(!edits[0].initial_high, "initial_high defaults low");
        // A toggle list beyond MAX_TRANSITIONS is rejected at decode.
        let toggles: Vec<String> = (1..=MAX_TRANSITIONS + 1)
            .map(|i| format!("{i}e-12"))
            .collect();
        let oversized = format!(
            "{{\"id\":1,\"op\":\"session.delta\",\"session\":3,\
             \"edits\":[{{\"net\":\"a\",\"toggles\":[{}]}}]}}",
            toggles.join(",")
        );
        assert!(matches!(
            decode_request(&oversized),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn stats_without_session_fields_decodes_with_zeros() {
        // Pre-session daemons never send the session counters; a newer
        // client must read their stats as zeros, not error.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"stats\",\"stats\":{\
                    \"model_loads\":1,\"model_requests\":2,\"cache_hits\":3,\
                    \"cache_misses\":4,\"cache_entries\":1,\"workers\":2,\
                    \"queue_capacity\":64,\"completed\":5,\"rejected\":0}}";
        let Response::Stats { stats, .. } = decode_response(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(
            (stats.sessions_open, stats.delta_hits, stats.gates_reeval),
            (0, 0, 0)
        );
    }

    #[test]
    fn sim_defaults_apply_for_optional_fields() {
        let line = "{\"id\":1,\"op\":\"sim\",\"circuit\":{\"name\":\"c17\"},\
                    \"models\":\"ci\",\"seed\":1,\"mu\":6e-11,\"sigma\":2.5e-11,\
                    \"transitions\":4}";
        let Request::Sim { sim, .. } = decode_request(line).unwrap() else {
            panic!("expected sim");
        };
        assert!(!sim.compare, "compare defaults off");
        assert!(sim.timing, "timing defaults on");
        assert_eq!(sim.library, "nor-only", "library defaults to the prototype");
    }

    #[test]
    fn stats_without_program_fields_decodes_with_zeros() {
        // Pre-program-cache daemons never send the program_* counters; a
        // newer client must read their stats as zeros, not error.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"stats\",\"stats\":{\
                    \"model_loads\":1,\"model_requests\":2,\"cache_hits\":3,\
                    \"cache_misses\":4,\"cache_entries\":1,\"workers\":2,\
                    \"queue_capacity\":64,\"completed\":5,\"rejected\":0}}";
        let Response::Stats { stats, .. } = decode_response(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(
            (
                stats.program_hits,
                stats.program_misses,
                stats.program_entries
            ),
            (0, 0, 0)
        );
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn stats_without_fleet_fields_decodes_with_defaults() {
        // Pre-SIMD/pre-fleet daemons never send simd_level or the fleet
        // counters; a newer client must read them as empty/zero, not
        // error.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"stats\",\"stats\":{\
                    \"model_loads\":1,\"model_requests\":2,\"cache_hits\":3,\
                    \"cache_misses\":4,\"cache_entries\":1,\"workers\":2,\
                    \"queue_capacity\":64,\"completed\":5,\"rejected\":0}}";
        let Response::Stats { stats, .. } = decode_response(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.simd_level, "");
        assert_eq!((stats.fleet_runs, stats.fleet_rows), (0, 0));
    }

    #[test]
    fn stats_without_obs_fields_decodes_with_defaults() {
        // Pre-observability daemons never send obs_mode or the latency
        // quantiles; a newer client must read them as empty/zero, not
        // error.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"stats\",\"stats\":{\
                    \"model_loads\":1,\"model_requests\":2,\"cache_hits\":3,\
                    \"cache_misses\":4,\"cache_entries\":1,\"workers\":2,\
                    \"queue_capacity\":64,\"completed\":5,\"rejected\":0}}";
        let Response::Stats { stats, .. } = decode_response(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.obs_mode, "");
        assert_eq!(stats.sim_p50_s, 0.0);
        assert_eq!(stats.sim_p99_s, 0.0);
        assert_eq!(stats.batch_p99_s, 0.0);
        assert_eq!(stats.delta_p99_s, 0.0);
        assert_eq!(stats.queue_p99_s, 0.0);
    }

    #[test]
    fn stats_without_transport_fields_decodes_with_zeros() {
        // Pre-async-transport daemons never send the connection gauge,
        // pipelining counter, or admission rejects; a newer client must
        // read them as zeros, not error.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"stats\",\"stats\":{\
                    \"model_loads\":1,\"model_requests\":2,\"cache_hits\":3,\
                    \"cache_misses\":4,\"cache_entries\":1,\"workers\":2,\
                    \"queue_capacity\":64,\"completed\":5,\"rejected\":0}}";
        let Response::Stats { stats, .. } = decode_response(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(
            (
                stats.connections_open,
                stats.frames_pipelined,
                stats.admission_rejects
            ),
            (0, 0, 0)
        );
    }

    #[test]
    fn sim_result_without_timings_decodes_as_none() {
        // The timings breakdown is opt-in; replies that omit it must
        // decode with `timings: None` rather than erroring.
        let line = "{\"id\":1,\"ok\":true,\"reply\":\"sim\",\"result\":{\
                    \"fingerprint\":\"00000000deadbeef\",\"library\":\"native\",\
                    \"cache\":\"miss\",\"outputs\":[]}}";
        let Response::Sim { result, .. } = decode_response(line).unwrap() else {
            panic!("expected sim");
        };
        assert!(result.timings.is_none());
    }

    #[test]
    fn batch_boundary_runs_and_seeds_decode() {
        // The largest legal fleet at the largest legal base seed: runs at
        // the cap, with seed + runs landing exactly on 2^53.
        let seed = MAX_WIRE_INT - MAX_BATCH_RUNS as u64;
        let line = format!(
            "{{\"id\":1,\"op\":\"sim.batch\",\"runs\":{MAX_BATCH_RUNS},\
             \"circuit\":{{\"name\":\"c17\"}},\"models\":\"x\",\"seed\":{seed},\
             \"mu\":1e-11,\"sigma\":1e-11,\"transitions\":2}}"
        );
        let Request::SimBatch { sim, runs, .. } = decode_request(&line).unwrap() else {
            panic!("expected sim.batch");
        };
        assert_eq!(runs, MAX_BATCH_RUNS);
        assert_eq!(sim.seed, seed);
    }

    #[test]
    fn salvage_id_recovers_ids_from_bad_requests() {
        assert_eq!(salvage_id("{\"id\":9,\"op\":\"warp\"}"), Some(9));
        assert_eq!(salvage_id("{\"op\":\"ping\"}"), None);
        assert_eq!(salvage_id("not json"), None);
    }

    #[test]
    fn hex64_round_trip() {
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(parse_hex64(&hex64(x)).unwrap(), x);
        }
        assert!(parse_hex64("123").is_err());
        assert!(parse_hex64("ZZ23456789abcdef").is_err());
    }
}
