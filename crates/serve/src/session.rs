//! Per-connection session tables: resident incremental simulation state
//! keyed by client-chosen session ids.
//!
//! A [`SessionTable`] lives exactly as long as its connection
//! ([`crate::server::run_connection`] creates one per transport), so
//! sessions are invisible to other connections and released wholesale
//! when the connection ends. The table is bounded daemon-wide: every
//! connection draws from the shared
//! [`ServiceConfig::session_capacity`](crate::service::ServiceConfig::session_capacity)
//! budget, and a connection opening a session beyond it evicts its own
//! least-recently-used session first — it is rejected with `overloaded`
//! when it has none of its own to evict, never allowed to evict another
//! connection's session.
//!
//! Each session pins its compiled [`CircuitProgram`] and the
//! [`IncrementalState`] of the event-driven engine; `session.delta`
//! requests ride the same worker pool as full simulations and are
//! serialized per session by the slot's state lock (see
//! `docs/architecture.md` § Incremental engine).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use sigsim::{CircuitProgram, IncrementalState};

use crate::protocol::ErrorKind;
use crate::service::Service;

/// The resident core of one ready session: the pinned program, the
/// committed incremental state, and the response fields captured at open
/// so every delta response is constructed exactly like a full `sim`
/// response for the same artifacts.
pub(crate) struct SessionCore {
    /// The compiled program deltas execute against.
    pub(crate) program: Arc<CircuitProgram>,
    /// Committed traces plus the dirty-set bookkeeping.
    pub(crate) state: IncrementalState,
    /// Fingerprint of the session's (mapped) circuit, precomputed.
    pub(crate) fingerprint: String,
    /// Cell-library echo of the opening request.
    pub(crate) library: String,
    /// Supply voltage of the session's model set (digitization threshold
    /// is `vdd / 2`, edit conversion uses the full value).
    pub(crate) vdd: f64,
    /// Whether delta responses carry wall-clock timing.
    pub(crate) timing: bool,
    /// Whether delta responses carry the per-phase `timings` breakdown
    /// (inherited from the opening request, like `timing`).
    pub(crate) timings: bool,
}

/// Lifecycle of one session slot. Deltas that arrive while the baseline
/// is still computing wait on the slot's condvar instead of failing.
pub(crate) enum SlotState {
    /// The open job has not finished the baseline yet.
    Opening,
    /// The session is resident and accepts deltas.
    Ready(Box<SessionCore>),
    /// The open job failed; waiting deltas report the session unknown.
    Failed,
}

/// One session's synchronization cell. The state mutex doubles as the
/// per-session execution lock: concurrent deltas on one session apply
/// one at a time, in pool order.
pub(crate) struct SessionSlot {
    /// The slot's lifecycle state (and per-session delta lock).
    pub(crate) state: Mutex<SlotState>,
    /// Signalled when the slot leaves [`SlotState::Opening`].
    pub(crate) ready: Condvar,
}

impl SessionSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Opening),
            ready: Condvar::new(),
        })
    }

    /// Publishes the opened core and wakes waiting deltas.
    pub(crate) fn fulfill(&self, core: SessionCore) {
        *self.state.lock().expect("session slot poisoned") = SlotState::Ready(Box::new(core));
        self.ready.notify_all();
    }

    /// Marks the open as failed and wakes waiting deltas.
    pub(crate) fn abandon(&self) {
        *self.state.lock().expect("session slot poisoned") = SlotState::Failed;
        self.ready.notify_all();
    }
}

struct Entry {
    /// LRU tick of the last open/lookup touching this session.
    last_use: u64,
    slot: Arc<SessionSlot>,
}

struct Inner {
    slots: HashMap<u64, Entry>,
    /// Monotonic LRU clock (per table; sessions are per-connection).
    tick: u64,
}

/// The per-connection session id → slot map (see the module docs for
/// scoping, capacity and eviction semantics).
pub struct SessionTable {
    service: Arc<Service>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("session table poisoned");
        f.debug_struct("SessionTable")
            .field("sessions", &inner.slots.len())
            .finish_non_exhaustive()
    }
}

impl SessionTable {
    /// Creates the session table for one connection.
    #[must_use]
    pub fn new(service: Arc<Service>) -> Arc<Self> {
        Arc::new(Self {
            service,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
        })
    }

    /// Reserves a slot for `session` in the [`SlotState::Opening`] state.
    /// Re-opening an id that is already open replaces the previous
    /// session. At the daemon-wide capacity this connection's
    /// least-recently-used session is evicted to make room.
    ///
    /// # Errors
    ///
    /// Returns `overloaded` when the daemon-wide budget is exhausted and
    /// this connection has no session of its own to evict.
    pub(crate) fn open_reserve(
        &self,
        session: u64,
    ) -> Result<Arc<SessionSlot>, (ErrorKind, String)> {
        let mut inner = self.inner.lock().expect("session table poisoned");
        if inner.slots.remove(&session).is_some() {
            self.release_count(1);
        }
        let capacity = self.service.config().session_capacity as u64;
        let open = self.service.session_count();
        loop {
            let held = open.load(Ordering::SeqCst);
            if held < capacity {
                // CAS so two connections racing for the last budget slot
                // cannot both win it.
                if open
                    .compare_exchange(held, held + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            let lru = inner
                .slots
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&id, _)| id);
            let Some(lru) = lru else {
                return Err((
                    ErrorKind::Overloaded,
                    format!(
                        "session table is full ({capacity} open daemon-wide); \
                         close a session or retry later"
                    ),
                ));
            };
            // Eviction affects future lookups only: a delta job already
            // holding the evicted slot still completes against it.
            inner.slots.remove(&lru);
            self.release_count(1);
        }
        let slot = SessionSlot::new();
        let tick = inner.tick;
        inner.tick += 1;
        inner.slots.insert(
            session,
            Entry {
                last_use: tick,
                slot: Arc::clone(&slot),
            },
        );
        Ok(slot)
    }

    /// Looks up an open session, refreshing its LRU position.
    pub(crate) fn lookup(&self, session: u64) -> Option<Arc<SessionSlot>> {
        let mut inner = self.inner.lock().expect("session table poisoned");
        let tick = inner.tick;
        inner.tick += 1;
        let entry = inner.slots.get_mut(&session)?;
        entry.last_use = tick;
        Some(Arc::clone(&entry.slot))
    }

    /// Removes a session (the `session.close` path). Returns whether it
    /// was open.
    pub(crate) fn remove(&self, session: u64) -> bool {
        let removed = self
            .inner
            .lock()
            .expect("session table poisoned")
            .slots
            .remove(&session)
            .is_some();
        if removed {
            self.release_count(1);
        }
        removed
    }

    /// Releases a slot whose open failed — but only while `session` still
    /// maps to this very slot, so a concurrent re-open (which replaced
    /// the entry) never loses its fresh slot or its budget count.
    pub(crate) fn fail(&self, session: u64, slot: &Arc<SessionSlot>) {
        let mut inner = self.inner.lock().expect("session table poisoned");
        if inner
            .slots
            .get(&session)
            .is_some_and(|e| Arc::ptr_eq(&e.slot, slot))
        {
            inner.slots.remove(&session);
            drop(inner);
            self.release_count(1);
        }
    }

    fn release_count(&self, n: u64) {
        self.service.session_count().fetch_sub(n, Ordering::SeqCst);
    }
}

impl Drop for SessionTable {
    /// A closing connection releases every session it still holds.
    fn drop(&mut self) {
        let n = self
            .inner
            .lock()
            .expect("session table poisoned")
            .slots
            .len();
        if n > 0 {
            self.release_count(n as u64);
        }
    }
}
