//! Minimal argv walker shared by the `sigserve` and `sigctl` binaries
//! (kept here so a flag-parsing fix lands once; `sigbench::Args` serves
//! the experiment bins but would invert the crate DAG if reused here).

/// Sequential argument walker: [`CliArgs::next_arg`] yields the next raw
/// argument, [`CliArgs::value`]/[`CliArgs::parse`] consume a flag's
/// value. Missing or malformed values surface as `None`, letting each
/// binary route to its own usage message.
#[derive(Debug)]
pub struct CliArgs {
    argv: Vec<String>,
    pos: usize,
}

impl CliArgs {
    /// The process arguments, program name skipped.
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// From explicit arguments (tests).
    #[must_use]
    pub fn new(argv: Vec<String>) -> Self {
        Self { argv, pos: 0 }
    }

    /// The next argument, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        let arg = self.argv.get(self.pos).cloned();
        if arg.is_some() {
            self.pos += 1;
        }
        arg
    }

    /// The value following the flag just returned by [`CliArgs::next_arg`].
    pub fn value(&mut self) -> Option<String> {
        self.next_arg()
    }

    /// The parsed value following the current flag; `None` when missing
    /// or malformed.
    pub fn parse<T: std::str::FromStr>(&mut self) -> Option<T> {
        self.value().and_then(|v| v.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::new(list.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn walks_flags_and_values() {
        let mut a = args(&["--workers", "4", "--stdio", "--addr", "host:1"]);
        assert_eq!(a.next_arg().as_deref(), Some("--workers"));
        assert_eq!(a.parse::<usize>(), Some(4));
        assert_eq!(a.next_arg().as_deref(), Some("--stdio"));
        assert_eq!(a.next_arg().as_deref(), Some("--addr"));
        assert_eq!(a.value().as_deref(), Some("host:1"));
        assert_eq!(a.next_arg(), None);
    }

    #[test]
    fn missing_or_malformed_values_are_none() {
        let mut a = args(&["--workers"]);
        a.next_arg();
        assert_eq!(a.parse::<usize>(), None);
        let mut a = args(&["--workers", "abc"]);
        a.next_arg();
        assert_eq!(a.parse::<usize>(), None);
    }
}
