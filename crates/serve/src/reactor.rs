//! A std-only epoll readiness reactor: raw syscall bindings (no `libc`
//! crate — the same vendoring discipline as the rest of the workspace)
//! wrapped in a safe [`Poller`] plus a coalescing cross-thread [`Waker`].
//!
//! The kernel interface is three calls — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait` — declared here against the C library `std` already
//! links, so no new dependency is introduced. Everything else (sockets,
//! non-blocking mode, the wake channel) rides plain `std::net` /
//! `std::os::unix` types.
//!
//! The poller is **level-triggered**: an fd with unread input (or writable
//! space while write interest is armed) reports on every wait until the
//! condition clears. The transport in [`crate::mux`] therefore always
//! drains a readiness edge to `WouldBlock` before waiting again.
//!
//! [`Waker`] is how worker threads nudge a reactor blocked in
//! [`Poller::wait`]: one end of a `UnixStream` pair is registered with
//! the poller, the other is written by [`Waker::wake`]. A pending flag
//! coalesces bursts — completing a thousand responses costs one wake
//! byte, not a thousand syscalls.

// The whole point of this module is to confine the three unsafe FFI
// calls; the crate is `deny(unsafe_code)` everywhere else.
#![allow(unsafe_code)]

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
/// `EPOLL_CLOEXEC` == `O_CLOEXEC` (octal `02000000`).
const EPOLL_CLOEXEC: i32 = 0o2_000_000;

/// The kernel's `struct epoll_event`. x86-64 packs it to match the
/// 32-bit layout; every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout: i32) -> i32;
}

/// Which readiness conditions a registration subscribes to. Hang-up and
/// error conditions are always reported regardless of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has readable data (or a pending accept).
    pub readable: bool,
    /// Report when the fd's send buffer has space.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// No readiness interest: the fd stays registered (hang-ups still
    /// report) but neither read nor write readiness wakes the poller —
    /// the paused state admission control parks a connection in.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        // RDHUP rides the read interest: a paused (NONE) or write-only
        // registration must not be woken level-triggered forever by a
        // peer that half-closed — the hang-up is discovered when reads
        // resume (or as EPOLLHUP once both directions are down).
        let mut bits = 0;
        if self.readable {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (data, accept, or EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; the owner should drain and
    /// close. (Reads still succeed until the buffered data runs out.)
    pub closed: bool,
}

/// A safe wrapper over one epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Returns the OS error when the kernel refuses a new instance
    /// (fd limits, mostly).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 touches no caller memory; the flag is a
        // plain scalar, and the returned fd is checked before wrapping.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, owned epoll descriptor; the
        // OwnedFd takes over closing it exactly once.
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut RawEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), std::ptr::from_mut);
        // SAFETY: `ptr` is either null (DEL, where the kernel ignores it)
        // or points at a live, writable RawEvent on the caller's stack.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`EEXIST` for double registration, etc.).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = RawEvent {
            events: interest.bits(),
            data: token,
        };
        self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Changes the interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT` when the fd was never registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = RawEvent {
            events: interest.bits(),
            data: token,
        };
        self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Removes an fd from the poller. Dropping the fd also removes it;
    /// this exists for connections that outlive a pause/resume cycle.
    ///
    /// # Errors
    ///
    /// Returns the OS error (`ENOENT` when the fd was never registered).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// elapses), appending reports to `out`. `None` waits indefinitely —
    /// a truly idle reactor does **zero** periodic work. Returns the
    /// number of events appended (`0` on timeout).
    ///
    /// # Errors
    ///
    /// Returns the OS error from `epoll_wait` (`EINTR` is retried
    /// internally and never surfaces).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut raw = [RawEvent { events: 0, data: 0 }; CAPACITY];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
        };
        loop {
            // SAFETY: the buffer pointer/length describe a live stack
            // array the kernel fills with at most CAPACITY entries.
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    raw.as_mut_ptr(),
                    CAPACITY as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            #[allow(clippy::cast_sign_loss)]
            let n = n as usize;
            for ev in raw.iter().take(n) {
                // Copy out of the (possibly packed) struct first.
                let bits = ev.events;
                let token = ev.data;
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            return Ok(n);
        }
    }
}

/// The write side of a reactor's wake channel. Clone-free sharing via
/// `Arc`; any thread may call [`Waker::wake`] at any time.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    /// Set while a wake byte is in flight; cleared by
    /// [`WakeReceiver::rearm`] after the reactor drains the channel.
    pending: AtomicBool,
}

impl Waker {
    /// Nudges the reactor out of [`Poller::wait`]. Coalescing: while a
    /// previous wake is still undrained this is one relaxed RMW and no
    /// syscall.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // A full channel means wakes are already pending — the
            // reactor will drain and re-check; dropping the byte is fine.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// The read side of a wake channel: registered with the owning reactor's
/// poller and drained on every wake event.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: UnixStream,
}

impl WakeReceiver {
    /// The fd to register with the poller (read interest).
    #[must_use]
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Drains queued wake bytes and re-arms the waker. Call on a wake
    /// event **before** processing completion queues: a wake arriving
    /// after the rearm writes a fresh byte, so no completion is lost.
    pub fn rearm(&mut self, waker: &Waker) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        waker.pending.store(false, Ordering::Release);
    }
}

/// Creates a connected waker/receiver pair (both ends non-blocking).
///
/// # Errors
///
/// Returns the OS error when the socket pair cannot be created.
pub fn wake_channel() -> io::Result<(Arc<Waker>, WakeReceiver)> {
    let (rx, tx) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((
        Arc::new(Waker {
            tx,
            pending: AtomicBool::new(false),
        }),
        WakeReceiver { rx },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_listener_accept_readiness() {
        let poller = Poller::new().expect("epoll instance");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        // Nothing pending: a short wait times out with zero events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "no readiness before a client connects");
        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);
    }

    #[test]
    fn interest_modification_gates_events() {
        let poller = Poller::new().expect("epoll instance");
        let (a, b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        poller
            .register(a.as_raw_fd(), 1, Interest::NONE)
            .expect("register");
        (&b).write_all(b"x").expect("write");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "parked interest reports nothing despite data");
        poller
            .modify(a.as_raw_fd(), 1, Interest::READ)
            .expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1, "read interest surfaces the buffered byte");
        assert!(events[0].readable);
        poller.deregister(a.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn waker_coalesces_and_survives_rearm_cycles() {
        let poller = Poller::new().expect("epoll instance");
        let (waker, mut rx) = wake_channel().expect("wake channel");
        poller
            .register(rx.raw_fd(), 9, Interest::READ)
            .expect("register");
        // A burst of wakes lands as (at least) one event.
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        rx.rearm(&waker);
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "drained channel is quiet");
        // The cycle repeats after rearm.
        waker.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
    }
}
