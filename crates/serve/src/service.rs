//! The service core: request execution and scheduling, independent of
//! any transport (the TCP and stdio frontends in [`crate::server`] and
//! the in-process benches drive the same [`Service`]).
//!
//! The service is a **scheduling layer, never a numerics layer**: a sim
//! request resolves its artifacts (registry, cache), derives stimuli from
//! its seed exactly like a direct harness call, and then calls the very
//! same [`sigsim`] entry points. Responses are bit-identical to direct
//! calls with the same seed (property the integration test enforces).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigcircuit::{Benchmark, Circuit, MappingPolicy, NetId};
use sigsim::{
    compare_circuit_cells, digital_to_sigmoid, random_stimuli, simulate_cells_with, CircuitProgram,
    FleetScratch, HarnessConfig, SigmoidSimConfig, SigmoidSimResult, SimScratch, StimulusEdit,
    StimulusSpec,
};
use sigwave::parallel::WorkerPool;
use sigwave::{DigitalTrace, Level, SigmoidTrace};

use crate::cache::{CacheKey, CircuitCache, ProgramCache};
use crate::protocol::{
    CacheOutcome, CompareStats, ErrorKind, OutputTrace, PhaseTimings, Request, Response,
    SessionEdit, SimRequest, SimResult, StatsReply, TimingStats, TraceSpan,
};
use crate::registry::{ModelRegistry, ModelSet, RegistryError};
use crate::session::{SessionCore, SessionSlot, SessionTable, SlotState};

/// Per-operation service latencies (handle-to-response, measured on the
/// worker thread around the whole execution body). The `op.*` names
/// complement the engine-level `engine.*` histograms: an `op.sim` sample
/// covers artifact resolution and encoding-adjacent work that
/// `engine.execute` does not. The `stats` reply's `sim_p50_s`-family
/// quantiles read from these.
static OP_SIM: sigobs::Hist = sigobs::Hist::new("op.sim");
static OP_BATCH: sigobs::Hist = sigobs::Hist::new("op.sim_batch");
static OP_OPEN: sigobs::Hist = sigobs::Hist::new("op.session_open");
static OP_DELTA: sigobs::Hist = sigobs::Hist::new("op.session_delta");

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scheduler worker threads (`0` = auto-detect).
    pub workers: usize,
    /// Bounded queue depth; sim requests beyond it are rejected with
    /// `overloaded` (explicit backpressure, never unbounded buffering).
    pub queue_capacity: usize,
    /// Maximum circuits resident in the LRU cache.
    pub cache_capacity: usize,
    /// Directory for the model registry's on-disk preset caches.
    pub models_dir: std::path::PathBuf,
    /// Per-frame size cap in bytes for the wire transports.
    pub max_frame: usize,
    /// Daemon-wide cap on open incremental sessions. Sessions pin a
    /// compiled program and a full set of per-net traces, so the budget
    /// is explicit; a connection opening past it evicts its own
    /// least-recently-used session (see [`crate::session::SessionTable`]).
    pub session_capacity: usize,
    /// Reactor threads for the epoll transport (`0` treated as 1). One
    /// reactor comfortably multiplexes thousands of connections; extra
    /// threads shard accepted connections round-robin.
    pub io_threads: usize,
    /// Per-connection pipelining window: frames dispatched but not yet
    /// written back. Past it the reactor pauses the connection's reads
    /// (kernel-buffer backpressure) instead of buffering unboundedly.
    pub max_inflight: usize,
    /// Daemon-wide cap on heavy requests (sim / batch / session work)
    /// admitted but not yet answered. Past it new heavy frames are
    /// rejected with `overloaded` before touching the pool, so a flood
    /// never starves executing work with decode/reject churn.
    pub admission_budget: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 32,
            models_dir: std::path::PathBuf::from("target/sigmodels"),
            max_frame: crate::protocol::MAX_FRAME_BYTES,
            session_capacity: 32,
            io_threads: 1,
            max_inflight: 64,
            admission_budget: 512,
        }
    }
}

/// What [`Service::handle_request`] tells the transport to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handled {
    /// Keep reading frames.
    Continue,
    /// A shutdown was acknowledged: stop reading, drain, exit.
    Shutdown,
}

/// A bounded free-list of [`SimScratch`] arenas shared by the resident
/// workers: each executing request pops one (or starts fresh), runs, and
/// returns it, so steady-state traffic reuses grown buffers instead of
/// re-allocating per request. Bounded so a one-off burst cannot pin
/// memory forever.
#[derive(Debug, Default)]
struct ScratchPool {
    pool: Mutex<Vec<SimScratch>>,
}

/// Upper bound on pooled arenas (comfortably above any sane worker
/// count; beyond it, returned scratch is simply dropped).
const MAX_POOLED_SCRATCH: usize = 32;

/// Largest per-net slot capacity a returned arena may retain. An arena
/// grown by a one-off huge inline netlist is dropped instead of pooled,
/// so resident memory is bounded by count × this cap — not by the
/// largest circuit the daemon ever saw. 2^18 slots comfortably covers
/// every built-in benchmark (c1355 ≈ 2.6 k nets) while capping a pooled
/// arena's dominant allocation at a few megabytes.
const MAX_POOLED_NET_SLOTS: usize = 1 << 18;

impl ScratchPool {
    fn acquire(&self) -> SimScratch {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn release(&self, scratch: SimScratch) {
        if scratch.net_capacity() > MAX_POOLED_NET_SLOTS {
            return;
        }
        let mut pool = self.pool.lock().expect("scratch pool poisoned");
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
    }
}

/// The [`FleetScratch`] twin of [`ScratchPool`], pooling the fleet
/// arenas `sim.batch` requests execute with.
#[derive(Debug, Default)]
struct FleetPool {
    pool: Mutex<Vec<FleetScratch>>,
}

/// Largest retained fleet arena, in `runs × nets` slots. A fleet arena's
/// dominant allocation is one trace slot per run per net, so the cap
/// bounds pooled memory the way [`MAX_POOLED_NET_SLOTS`] does for solo
/// arenas — sized for a max-width fleet (256 runs) of every built-in
/// benchmark while dropping arenas grown by huge inline netlists.
const MAX_POOLED_FLEET_SLOTS: usize = 1 << 20;

impl FleetPool {
    fn acquire(&self) -> FleetScratch {
        let mut scratch = self
            .pool
            .lock()
            .expect("fleet pool poisoned")
            .pop()
            .unwrap_or_default();
        // The engine accumulates `runs`/`rows_merged` across executions;
        // a pooled arena must start every request at zero or the per-
        // request deltas (and the daemon's fleet counters) double-count
        // the arena's whole history.
        scratch.reset_counters();
        scratch
    }

    fn release(&self, scratch: FleetScratch) {
        if scratch.net_capacity() > MAX_POOLED_FLEET_SLOTS {
            return;
        }
        let mut pool = self.pool.lock().expect("fleet pool poisoned");
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
    }
}

/// The resident service: registry + caches + bounded scheduler.
pub struct Service {
    config: ServiceConfig,
    registry: ModelRegistry,
    cache: CircuitCache,
    programs: ProgramCache,
    scratch: ScratchPool,
    fleet: FleetPool,
    pool: WorkerPool,
    completed: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
    /// Incremental sessions currently open across all connections (the
    /// tables increment on reserve and decrement exactly once when a
    /// session leaves its table — close, eviction, failed open, or the
    /// connection dropping).
    sessions_open: AtomicU64,
    /// `session.delta` requests served from resident session state.
    delta_hits: AtomicU64,
    /// Cumulative gates re-evaluated by delta requests.
    gates_reeval: AtomicU64,
    /// Cumulative runs executed through the fleet path (`sim.batch`).
    fleet_runs: AtomicU64,
    /// Cumulative inference rows merged across fleet runs.
    fleet_rows: AtomicU64,
    /// Gauge: connections currently open on the epoll transport (the
    /// mux increments on accept, decrements on close).
    connections_open: AtomicU64,
    /// Frames read while the same connection already had a request in
    /// flight — i.e. actual pipelining observed on the wire.
    frames_pipelined: AtomicU64,
    /// Heavy frames rejected by the daemon-wide admission budget before
    /// reaching the pool (each also counts under `rejected`).
    admission_rejects: AtomicU64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Builds the service and spawns its worker pool.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        let pool = WorkerPool::new(config.workers, config.queue_capacity);
        Arc::new(Self {
            registry: ModelRegistry::new(config.models_dir.clone()),
            cache: CircuitCache::new(config.cache_capacity),
            programs: ProgramCache::new(config.cache_capacity),
            scratch: ScratchPool::default(),
            fleet: FleetPool::default(),
            pool,
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            sessions_open: AtomicU64::new(0),
            delta_hits: AtomicU64::new(0),
            gates_reeval: AtomicU64::new(0),
            fleet_runs: AtomicU64::new(0),
            fleet_rows: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            frames_pipelined: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            config,
        })
    }

    /// The open-connection gauge, owned by the epoll transport.
    pub(crate) fn connections_gauge(&self) -> &AtomicU64 {
        &self.connections_open
    }

    /// Counts one frame read while its connection already had a request
    /// in flight.
    pub(crate) fn note_pipelined(&self) {
        self.frames_pipelined.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission-budget rejection (also a `rejected`: the
    /// overloaded semantics are the same whether the pool queue or the
    /// admission budget said no).
    pub(crate) fn note_admission_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// The open-session counter, shared with the per-connection
    /// [`SessionTable`]s that own the increments/decrements.
    pub(crate) fn session_count(&self) -> &AtomicU64 {
        &self.sessions_open
    }

    /// The model registry (exposed so embedders — tests, benches — can
    /// pre-register synthetic model sets).
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The circuit cache (counters feed stats and tests).
    #[must_use]
    pub fn cache(&self) -> &CircuitCache {
        &self.cache
    }

    /// The compiled-program cache (counters feed stats and tests).
    #[must_use]
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current counters, plus latency quantiles from the process-wide
    /// observability histograms (zero until the matching operation has
    /// been served at least once with `SIG_OBS` at `counters` or above).
    #[must_use]
    pub fn stats(&self) -> StatsReply {
        let mut sim = (0.0, 0.0);
        let mut batch = (0.0, 0.0);
        let mut delta = (0.0, 0.0);
        let mut queue = (0.0, 0.0);
        for h in sigobs::snapshot_all() {
            let q = (h.quantile_secs(0.50), h.quantile_secs(0.99));
            match h.name {
                "op.sim" => sim = q,
                "op.sim_batch" => batch = q,
                "op.session_delta" => delta = q,
                "pool.queue_wait" => queue = q,
                _ => {}
            }
        }
        StatsReply {
            model_sets: self.registry.resident_keys(),
            model_loads: self.registry.loads(),
            model_requests: self.registry.requests(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.entries() as u64,
            program_hits: self.programs.hits(),
            program_misses: self.programs.misses(),
            program_entries: self.programs.entries() as u64,
            workers: self.pool.worker_count() as u64,
            queue_capacity: self.config.queue_capacity as u64,
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            sessions_open: self.sessions_open.load(Ordering::SeqCst),
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            gates_reeval: self.gates_reeval.load(Ordering::Relaxed),
            simd_level: signn::simd::active_level().as_str().to_string(),
            fleet_runs: self.fleet_runs.load(Ordering::Relaxed),
            fleet_rows: self.fleet_rows.load(Ordering::Relaxed),
            obs_mode: sigobs::mode().as_str().to_string(),
            connections_open: self.connections_open.load(Ordering::SeqCst),
            frames_pipelined: self.frames_pipelined.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            sim_p50_s: sim.0,
            sim_p99_s: sim.1,
            batch_p50_s: batch.0,
            batch_p99_s: batch.1,
            delta_p50_s: delta.0,
            delta_p99_s: delta.1,
            queue_p50_s: queue.0,
            queue_p99_s: queue.1,
        }
    }

    /// Blocks until all queued and running simulations finish.
    pub fn drain(&self) {
        self.pool.drain();
    }

    /// Direct pool access for deterministic scheduling tests.
    #[cfg(test)]
    pub(crate) fn pool_for_tests(&self) -> &WorkerPool {
        &self.pool
    }

    /// Handles one decoded request without a session table — the
    /// back-compat entry point for embedders (benches, tests) that only
    /// issue stateless requests. Session requests answer with a
    /// `protocol` error; everything else behaves exactly like
    /// [`Service::handle_connection_request`].
    pub fn handle_request(
        self: &Arc<Self>,
        request: Request,
        respond: impl Fn(Response) + Send + Sync + 'static,
    ) -> Handled {
        self.handle_connection_request(request, None, respond)
    }

    /// Handles one decoded request. Cheap requests (ping, stats,
    /// shutdown, session close) are answered inline via `respond`; sim,
    /// session-open and session-delta requests are scheduled on the pool
    /// and answered from a worker thread, so `respond` must be callable
    /// from any thread, and responses to different requests may
    /// interleave in any order (clients correlate by id). When the queue
    /// is full the request is rejected immediately with an `overloaded`
    /// error — backpressure is explicit, for session work exactly as for
    /// full simulations.
    ///
    /// `sessions` is the connection-scoped [`SessionTable`] (transports
    /// create one per connection); `None` means the caller cannot host
    /// sessions and session requests are rejected.
    pub fn handle_connection_request(
        self: &Arc<Self>,
        request: Request,
        sessions: Option<&Arc<SessionTable>>,
        respond: impl Fn(Response) + Send + Sync + 'static,
    ) -> Handled {
        match request {
            Request::Ping { id } => {
                respond(Response::Pong { id });
                Handled::Continue
            }
            Request::Stats { id } => {
                respond(Response::Stats {
                    id,
                    stats: self.stats(),
                });
                Handled::Continue
            }
            Request::Trace { id } => {
                // Draining the journal is cheap bookkeeping (it is empty
                // unless the daemon runs with `SIG_OBS=trace`), so the
                // reply is answered inline like `stats`.
                let (events, dropped) = sigobs::drain_chrome_trace();
                let spans = events
                    .into_iter()
                    .map(|e| TraceSpan {
                        name: e.name,
                        tid: e.tid,
                        start_us: e.start_ns as f64 / 1000.0,
                        dur_us: e.dur_ns as f64 / 1000.0,
                        arg: e.arg,
                    })
                    .collect();
                respond(Response::Trace { id, spans, dropped });
                Handled::Continue
            }
            Request::Shutdown { id } => {
                self.draining.store(true, Ordering::SeqCst);
                self.pool.drain();
                respond(Response::ShuttingDown { id });
                Handled::Shutdown
            }
            Request::Sim { id, sim } => {
                if self.draining.load(Ordering::SeqCst) {
                    respond(draining_error(id));
                    return Handled::Continue;
                }
                let service = Arc::clone(self);
                let respond = Arc::new(respond);
                let job_respond = Arc::clone(&respond);
                let accepted = sim.timings.then(Instant::now);
                let submitted = self.pool.try_execute(move || {
                    let queue_s = accepted.map(|t| t.elapsed().as_secs_f64());
                    let sw = sigobs::stopwatch();
                    let response = match service.execute_sim(&sim) {
                        Ok(mut result) => {
                            sw.observe_span(&OP_SIM, "op.sim");
                            patch_timings(result.timings.as_mut(), queue_s, accepted);
                            Response::Sim { id, result }
                        }
                        Err((kind, message)) => Response::Error {
                            id: Some(id),
                            kind,
                            message,
                        },
                    };
                    service.completed.fetch_add(1, Ordering::Relaxed);
                    job_respond(response);
                });
                if submitted.is_err() {
                    self.reject_overloaded(id, &*respond);
                }
                Handled::Continue
            }
            Request::SimBatch { id, sim, runs } => {
                if self.draining.load(Ordering::SeqCst) {
                    respond(draining_error(id));
                    return Handled::Continue;
                }
                let service = Arc::clone(self);
                let respond = Arc::new(respond);
                let job_respond = Arc::clone(&respond);
                let accepted = sim.timings.then(Instant::now);
                let submitted = self.pool.try_execute(move || {
                    let queue_s = accepted.map(|t| t.elapsed().as_secs_f64());
                    let sw = sigobs::stopwatch();
                    let response = match service.execute_sim_batch(&sim, runs) {
                        Ok(mut results) => {
                            sw.observe_span(&OP_BATCH, "op.sim_batch");
                            // One elapsed reading for the whole fleet:
                            // every entry echoes the identical shared
                            // breakdown (the reply is one request).
                            let total_s = accepted.map(|t| t.elapsed().as_secs_f64());
                            for result in &mut results {
                                if let (Some(t), Some(queue_s), Some(total_s)) =
                                    (result.timings.as_mut(), queue_s, total_s)
                                {
                                    t.queue_s = queue_s;
                                    t.total_s = total_s;
                                }
                            }
                            Response::SimBatch { id, results }
                        }
                        Err((kind, message)) => Response::Error {
                            id: Some(id),
                            kind,
                            message,
                        },
                    };
                    service.completed.fetch_add(1, Ordering::Relaxed);
                    job_respond(response);
                });
                if submitted.is_err() {
                    self.reject_overloaded(id, &*respond);
                }
                Handled::Continue
            }
            Request::SessionOpen { id, session, sim } => {
                self.handle_session_open(id, session, sim, sessions, respond)
            }
            Request::SessionDelta { id, session, edits } => {
                self.handle_session_delta(id, session, edits, sessions, respond)
            }
            Request::SessionClose { id, session } => {
                // Close is pure table bookkeeping: answered inline, and
                // allowed even while draining (it releases state).
                let Some(table) = sessions else {
                    respond(no_session_transport(id));
                    return Handled::Continue;
                };
                if table.remove(session) {
                    respond(Response::SessionClosed { id, session });
                } else {
                    respond(unknown_session(id, session));
                }
                Handled::Continue
            }
        }
    }

    /// Schedules a `session.open`: reserves the table slot inline (so the
    /// very next frame already sees the session), then runs the baseline
    /// on the pool. Deltas arriving while the baseline computes wait on
    /// the slot instead of failing — connection frames are dispatched in
    /// order, and the pool is FIFO, so the open job always runs first.
    fn handle_session_open(
        self: &Arc<Self>,
        id: u64,
        session: u64,
        sim: SimRequest,
        sessions: Option<&Arc<SessionTable>>,
        respond: impl Fn(Response) + Send + Sync + 'static,
    ) -> Handled {
        if self.draining.load(Ordering::SeqCst) {
            respond(draining_error(id));
            return Handled::Continue;
        }
        let Some(table) = sessions else {
            respond(no_session_transport(id));
            return Handled::Continue;
        };
        let slot = match table.open_reserve(session) {
            Ok(slot) => slot,
            Err((kind, message)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                respond(Response::Error {
                    id: Some(id),
                    kind,
                    message,
                });
                return Handled::Continue;
            }
        };
        let service = Arc::clone(self);
        let job_table = Arc::clone(table);
        let job_slot = Arc::clone(&slot);
        let respond = Arc::new(respond);
        let job_respond = Arc::clone(&respond);
        let accepted = sim.timings.then(Instant::now);
        let submitted = self.pool.try_execute(move || {
            let queue_s = accepted.map(|t| t.elapsed().as_secs_f64());
            let sw = sigobs::stopwatch();
            let response = match service.open_session_core(&sim) {
                Ok((core, mut result)) => {
                    sw.observe_span(&OP_OPEN, "op.session_open");
                    patch_timings(result.timings.as_mut(), queue_s, accepted);
                    job_slot.fulfill(core);
                    Response::Session {
                        id,
                        session,
                        result,
                    }
                }
                Err((kind, message)) => {
                    job_slot.abandon();
                    job_table.fail(session, &job_slot);
                    Response::Error {
                        id: Some(id),
                        kind,
                        message,
                    }
                }
            };
            service.completed.fetch_add(1, Ordering::Relaxed);
            job_respond(response);
        });
        if submitted.is_err() {
            slot.abandon();
            table.fail(session, &slot);
            self.reject_overloaded(id, &*respond);
        }
        Handled::Continue
    }

    /// Schedules a `session.delta`: the session is resolved (and its LRU
    /// position refreshed) inline, the edits execute on the pool.
    fn handle_session_delta(
        self: &Arc<Self>,
        id: u64,
        session: u64,
        edits: Vec<SessionEdit>,
        sessions: Option<&Arc<SessionTable>>,
        respond: impl Fn(Response) + Send + Sync + 'static,
    ) -> Handled {
        if self.draining.load(Ordering::SeqCst) {
            respond(draining_error(id));
            return Handled::Continue;
        }
        let Some(table) = sessions else {
            respond(no_session_transport(id));
            return Handled::Continue;
        };
        let Some(slot) = table.lookup(session) else {
            respond(unknown_session(id, session));
            return Handled::Continue;
        };
        let service = Arc::clone(self);
        let respond = Arc::new(respond);
        let job_respond = Arc::clone(&respond);
        // Deltas inherit the timings opt-in from the session's opening
        // request, so the dispatch layer cannot know it yet; the worker
        // measures queue wait from here and the body patches it in when
        // the session asked for timings.
        let accepted = Instant::now();
        let submitted = self.pool.try_execute(move || {
            let queue_s = accepted.elapsed().as_secs_f64();
            let sw = sigobs::stopwatch();
            let response = match service.execute_delta_on(&slot, session, &edits) {
                Ok(mut result) => {
                    sw.observe_span(&OP_DELTA, "op.session_delta");
                    patch_timings(result.timings.as_mut(), Some(queue_s), Some(accepted));
                    Response::Sim { id, result }
                }
                Err((kind, message)) => Response::Error {
                    id: Some(id),
                    kind,
                    message,
                },
            };
            service.completed.fetch_add(1, Ordering::Relaxed);
            job_respond(response);
        });
        if submitted.is_err() {
            self.reject_overloaded(id, &*respond);
        }
        Handled::Continue
    }

    /// Counts a queue-full rejection and answers with `overloaded`.
    fn reject_overloaded(&self, id: u64, respond: &(impl Fn(Response) + ?Sized)) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        respond(Response::Error {
            id: Some(id),
            kind: ErrorKind::Overloaded,
            message: format!(
                "scheduler queue is full ({} pending); retry later",
                self.config.queue_capacity
            ),
        });
    }

    /// Opens a session (the worker-thread body): resolves artifacts
    /// exactly like [`Service::execute_sim`]'s sigmoid path, runs the
    /// baseline through [`CircuitProgram::open_session`], and packages
    /// the resident [`SessionCore`] plus the baseline response payload
    /// (field-for-field what a full `sim` request would answer).
    fn open_session_core(
        &self,
        sim: &SimRequest,
    ) -> Result<(SessionCore, SimResult), (ErrorKind, String)> {
        let t0 = sim.timings.then(Instant::now);
        let set = self
            .registry
            .get_or_load(&sim.models, &sim.library)
            .map_err(|e| {
                let kind = match e {
                    RegistryError::UnknownName(_) => ErrorKind::UnknownModels,
                    _ => ErrorKind::Simulation,
                };
                (kind, e.to_string())
            })?;
        let circuit_key = CacheKey::of(&sim.circuit, set.policy);
        let (circuit, hit) = self.resolve_circuit(circuit_key, sim, set.policy)?;
        let cache = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        let program = self.resolve_program(circuit_key, &set, &circuit)?;
        let resolve_s = t0.map(|t| t.elapsed().as_secs_f64());
        let exec_start = sim.timings.then(Instant::now);
        let stimuli = stimuli_for(&circuit, sim);
        let sigmoid_stimuli = sigmoid_stimuli_from(&stimuli, set.options.vdd);
        let mut scratch = self.scratch.acquire();
        let start = Instant::now();
        let opened = program.open_session(&sigmoid_stimuli, &mut scratch);
        let wall_sigmoid = start.elapsed();
        self.scratch.release(scratch);
        let state = opened.map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
        let fingerprint = crate::protocol::hex64(circuit.fingerprint());
        let result = SimResult {
            fingerprint: fingerprint.clone(),
            library: set.library.clone(),
            cache,
            outputs: sigmoid_outputs(&circuit, &state.result(), set.options.vdd / 2.0),
            compare: None,
            timing: sim.timing.then_some(TimingStats {
                wall_analog_s: 0.0,
                wall_digital_s: 0.0,
                wall_sigmoid_s: wall_sigmoid.as_secs_f64(),
            }),
            timings: phase_timings(resolve_s, exec_start),
        };
        let core = SessionCore {
            program,
            state,
            fingerprint,
            library: set.library.clone(),
            vdd: set.options.vdd,
            timing: sim.timing,
            timings: sim.timings,
        };
        Ok((core, result))
    }

    /// Executes one delta batch on a session slot (the worker-thread
    /// body). Waits on the slot while its baseline is still opening; the
    /// slot's state lock also serializes deltas per session. Responds in
    /// the plain `sim` shape with `cache: hit` — a delta by definition
    /// reuses resident artifacts, and the payload stays byte-comparable
    /// to a full run of the equivalent final stimuli.
    fn execute_delta_on(
        &self,
        slot: &SessionSlot,
        session: u64,
        edits: &[SessionEdit],
    ) -> Result<SimResult, (ErrorKind, String)> {
        let t0 = Instant::now();
        let mut guard = slot.state.lock().expect("session slot poisoned");
        while matches!(*guard, SlotState::Opening) {
            guard = slot.ready.wait(guard).expect("session slot poisoned");
        }
        let SlotState::Ready(core) = &mut *guard else {
            return Err((
                ErrorKind::UnknownSession,
                format!("session {session} failed to open"),
            ));
        };
        let program = Arc::clone(&core.program);
        let circuit = Arc::clone(program.circuit());
        let mut changes = Vec::with_capacity(edits.len());
        for edit in edits {
            let net = circuit.find_net(&edit.net).ok_or_else(|| {
                (
                    ErrorKind::Simulation,
                    format!("edit targets unknown net {:?}", edit.net),
                )
            })?;
            let level = if edit.initial_high {
                Level::High
            } else {
                Level::Low
            };
            // The toggle invariants were validated at decode;
            // `DigitalTrace` re-checks them as the library contract.
            let digital = DigitalTrace::new(level, edit.toggles.clone())
                .map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
            changes.push(StimulusEdit {
                net,
                trace: Arc::new(digital_to_sigmoid(&digital, core.vdd)),
            });
        }
        // For a delta, "resolve" is slot readiness plus edit-to-trace
        // conversion; the engine call is the execute phase.
        let resolve_s = core.timings.then(|| t0.elapsed().as_secs_f64());
        let exec_start = core.timings.then(Instant::now);
        let start = Instant::now();
        let result = program
            .execute_delta(&mut core.state, &changes)
            .map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
        let wall_sigmoid = start.elapsed();
        self.delta_hits.fetch_add(1, Ordering::Relaxed);
        self.gates_reeval
            .fetch_add(core.state.last_reeval(), Ordering::Relaxed);
        Ok(SimResult {
            fingerprint: core.fingerprint.clone(),
            library: core.library.clone(),
            cache: CacheOutcome::Hit,
            outputs: sigmoid_outputs(&circuit, &result, core.vdd / 2.0),
            compare: None,
            timing: core.timing.then_some(TimingStats {
                wall_analog_s: 0.0,
                wall_digital_s: 0.0,
                wall_sigmoid_s: wall_sigmoid.as_secs_f64(),
            }),
            timings: phase_timings(resolve_s, exec_start),
        })
    }

    /// Resolves a sim request's circuit through the cache under an
    /// already-computed key (keys include the set's mapping policy: the
    /// NOR-only and native forms of one netlist are distinct cached
    /// circuits).
    fn resolve_circuit(
        &self,
        key: CacheKey,
        sim: &SimRequest,
        policy: MappingPolicy,
    ) -> Result<(Arc<Circuit>, bool), (ErrorKind, String)> {
        self.cache
            .get_or_insert_keyed(key, || build_circuit(&sim.circuit, policy))
            .map_err(|message| (ErrorKind::Circuit, message))
    }

    /// Resolves the compiled program of a sim request: a warm key skips
    /// validation, slot resolution and planning entirely; a miss compiles
    /// once under the key's build lock (the circuit and cells are already
    /// resolved `Arc`s — compilation shares them, it never re-parses).
    /// The program key derives from the circuit key, so the request's
    /// source text is hashed exactly once regardless of path.
    fn resolve_program(
        &self,
        circuit_key: CacheKey,
        set: &ModelSet,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<CircuitProgram>, (ErrorKind, String)> {
        let key = CacheKey::for_program(
            circuit_key,
            &set.cells,
            &set.name,
            &set.library,
            set.options,
        );
        self.programs
            .get_or_insert(key, || {
                CircuitProgram::compile(Arc::clone(circuit), Arc::clone(&set.cells), set.options)
            })
            .map(|(program, _)| program)
            .map_err(|e| (ErrorKind::Simulation, e.to_string()))
    }

    /// Executes one simulation synchronously (the worker-thread body).
    ///
    /// Sigmoid-only requests run through the compiled-program path: warm
    /// traffic binds stimuli to a cached [`CircuitProgram`] with a pooled
    /// [`SimScratch`] — no parsing, mapping, validation, planning or
    /// buffer allocation. Compare-mode requests keep the fused harness
    /// path (they are analog-dominated); both paths are bit-identical to
    /// the direct library calls.
    ///
    /// # Errors
    ///
    /// Returns the protocol error kind and message on any failure.
    pub fn execute_sim(&self, sim: &SimRequest) -> Result<SimResult, (ErrorKind, String)> {
        let t0 = sim.timings.then(Instant::now);
        let set = self
            .registry
            .get_or_load(&sim.models, &sim.library)
            .map_err(|e| {
                let kind = match e {
                    RegistryError::UnknownName(_) => ErrorKind::UnknownModels,
                    _ => ErrorKind::Simulation,
                };
                (kind, e.to_string())
            })?;
        // One full-source hash per request, shared by both caches.
        let circuit_key = CacheKey::of(&sim.circuit, set.policy);
        let (circuit, hit) = self.resolve_circuit(circuit_key, sim, set.policy)?;
        let cache = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        if sim.compare {
            let resolve_s = t0.map(|t| t.elapsed().as_secs_f64());
            let exec_start = sim.timings.then(Instant::now);
            let mut result = run_sim(&circuit, &set, sim, cache)?;
            result.timings = phase_timings(resolve_s, exec_start);
            return Ok(result);
        }
        let program = self.resolve_program(circuit_key, &set, &circuit)?;
        let resolve_s = t0.map(|t| t.elapsed().as_secs_f64());
        let exec_start = sim.timings.then(Instant::now);
        let mut scratch = self.scratch.acquire();
        let result = run_program(&program, &set, sim, cache, &mut scratch);
        self.scratch.release(scratch);
        result.map(|mut r| {
            r.timings = phase_timings(resolve_s, exec_start);
            r
        })
    }

    /// Executes one fleet simulation synchronously (the worker-thread
    /// body of `sim.batch`): resolves artifacts once, derives run `r`'s
    /// stimuli from seed `sim.seed + r` exactly like an individual `sim`
    /// request with that seed, and executes all runs in lockstep through
    /// [`CircuitProgram::execute_fleet`]. Entry `r` of the reply is
    /// byte-identical to the individual response (modulo the cache echo,
    /// which reflects this request's single resolution, and the timing
    /// block, which reports each run's amortized share of the one fleet
    /// execution).
    ///
    /// # Errors
    ///
    /// Returns the protocol error kind and message on any failure; a
    /// failure in any run fails the whole fleet.
    pub fn execute_sim_batch(
        &self,
        sim: &SimRequest,
        runs: usize,
    ) -> Result<Vec<SimResult>, (ErrorKind, String)> {
        let t0 = sim.timings.then(Instant::now);
        let set = self
            .registry
            .get_or_load(&sim.models, &sim.library)
            .map_err(|e| {
                let kind = match e {
                    RegistryError::UnknownName(_) => ErrorKind::UnknownModels,
                    _ => ErrorKind::Simulation,
                };
                (kind, e.to_string())
            })?;
        let circuit_key = CacheKey::of(&sim.circuit, set.policy);
        let (circuit, hit) = self.resolve_circuit(circuit_key, sim, set.policy)?;
        let cache = if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        let program = self.resolve_program(circuit_key, &set, &circuit)?;
        let resolve_s = t0.map(|t| t.elapsed().as_secs_f64());
        let exec_start = sim.timings.then(Instant::now);
        let sets: Vec<HashMap<NetId, Arc<SigmoidTrace>>> = (0..runs)
            .map(|r| {
                let run = SimRequest {
                    seed: sim.seed + r as u64,
                    ..sim.clone()
                };
                sigmoid_stimuli_from(&stimuli_for(&circuit, &run), set.options.vdd)
            })
            .collect();
        // Pooled arenas are counter-reset on acquire, so the arena's
        // counters after the run are exactly this request's totals.
        let mut scratch = self.fleet.acquire();
        let start = Instant::now();
        let executed = program.execute_fleet(&sets, &mut scratch);
        let wall = start.elapsed();
        let rows = scratch.rows_merged();
        self.fleet.release(scratch);
        let results = executed.map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
        self.fleet_runs.fetch_add(runs as u64, Ordering::Relaxed);
        self.fleet_rows.fetch_add(rows, Ordering::Relaxed);
        let fingerprint = crate::protocol::hex64(circuit.fingerprint());
        let threshold = set.options.vdd / 2.0;
        #[allow(clippy::cast_possible_truncation)]
        let wall_share = wall.checked_div(runs.max(1) as u32).unwrap_or_default();
        // Every fleet entry echoes the breakdown of the one shared
        // request (stimulus derivation counts as execute time).
        let timings = phase_timings(resolve_s, exec_start);
        Ok(results
            .into_iter()
            .map(|result| SimResult {
                fingerprint: fingerprint.clone(),
                library: set.library.clone(),
                cache,
                outputs: sigmoid_outputs(&circuit, &result, threshold),
                compare: None,
                timing: sim.timing.then_some(TimingStats {
                    wall_analog_s: 0.0,
                    wall_digital_s: 0.0,
                    wall_sigmoid_s: wall_share.as_secs_f64(),
                }),
                timings: timings.clone(),
            })
            .collect())
    }
}

/// Builds the execution half of an opt-in [`PhaseTimings`] breakdown:
/// `None` unless the request asked for timings. Queue wait and the total
/// stay zero until [`patch_timings`] fills them at the worker boundary.
fn phase_timings(resolve_s: Option<f64>, exec_start: Option<Instant>) -> Option<PhaseTimings> {
    let (resolve_s, exec_start) = resolve_s.zip(exec_start)?;
    Some(PhaseTimings {
        queue_s: 0.0,
        resolve_s,
        execute_s: exec_start.elapsed().as_secs_f64(),
        total_s: 0.0,
    })
}

/// Fills the scheduling half of an opt-in [`PhaseTimings`] breakdown.
/// The execution body measured `resolve_s`/`execute_s`; queue wait and
/// the request total are only known at the dispatch/worker boundary, so
/// the worker closure patches them in just before responding.
fn patch_timings(
    timings: Option<&mut PhaseTimings>,
    queue_s: Option<f64>,
    accepted: Option<Instant>,
) {
    if let (Some(t), Some(queue_s), Some(accepted)) = (timings, queue_s, accepted) {
        t.queue_s = queue_s;
        t.total_s = accepted.elapsed().as_secs_f64();
    }
}

/// The error answered to any simulation-carrying request while draining.
fn draining_error(id: u64) -> Response {
    Response::Error {
        id: Some(id),
        kind: ErrorKind::ShuttingDown,
        message: "daemon is draining".to_string(),
    }
}

/// The error answered to session requests from a caller without a
/// connection-scoped [`SessionTable`] (the back-compat
/// [`Service::handle_request`] entry point).
fn no_session_transport(id: u64) -> Response {
    Response::Error {
        id: Some(id),
        kind: ErrorKind::Protocol,
        message: "session requests need a connection-scoped transport".to_string(),
    }
}

/// The error answered when a session id is not open on this connection.
fn unknown_session(id: u64, session: u64) -> Response {
    Response::Error {
        id: Some(id),
        kind: ErrorKind::UnknownSession,
        message: format!("session {session} is not open on this connection"),
    }
}

/// Builds the circuit of a source under a mapping policy (the cache miss
/// path).
fn build_circuit(
    source: &crate::protocol::CircuitSource,
    policy: MappingPolicy,
) -> Result<Circuit, String> {
    match source {
        crate::protocol::CircuitSource::Name(name) => Benchmark::by_name(name)
            .map(|b| b.circuit_for(policy).clone())
            .map_err(|n| format!("unknown benchmark circuit {n:?}")),
        crate::protocol::CircuitSource::Inline(text) => {
            let format = sigcircuit::sniff_format(text);
            let circuit = sigcircuit::parse_circuit(text, format).map_err(|e| e.to_string())?;
            Ok(map_for_simulation(circuit, policy))
        }
    }
}

/// Prepares an arbitrary netlist for simulation under a policy:
/// non-conforming circuits are mapped and fan-out-limited exactly like
/// the built-in benchmarks ([`Benchmark::by_name`] applies the same
/// recipe), so an inline netlist and its named twin simulate identically.
#[must_use]
pub fn map_for_simulation(circuit: Circuit, policy: MappingPolicy) -> Circuit {
    let conforming = match policy {
        MappingPolicy::NorOnly => circuit.is_nor_only(),
        MappingPolicy::Native => sigcircuit::is_native_only(&circuit),
    };
    if conforming {
        circuit
    } else {
        sigcircuit::limit_fanout(
            &sigcircuit::map_with_policy(
                &circuit,
                policy,
                sigcircuit::NorMappingOptions::default(),
            ),
            4,
        )
    }
}

/// Derives the per-request digital stimuli exactly like the direct
/// harness path: a [`StimulusSpec`] plus a seed-derived RNG.
fn stimuli_for(circuit: &Circuit, sim: &SimRequest) -> HashMap<NetId, DigitalTrace> {
    let spec = StimulusSpec::new(sim.mu, sim.sigma, sim.transitions);
    let mut rng = StdRng::seed_from_u64(sim.seed);
    random_stimuli(circuit, &spec, &mut rng)
}

/// Replaces the seeded stimulus of every edited net, rejecting edits
/// that do not target a primary input (mirroring the validation the
/// incremental engine applies to `session.delta`).
fn apply_edits(
    circuit: &Circuit,
    stimuli: &mut HashMap<NetId, DigitalTrace>,
    edits: &[SessionEdit],
) -> Result<(), (ErrorKind, String)> {
    for edit in edits {
        let Some(net) = circuit.find_net(&edit.net) else {
            return Err((
                ErrorKind::Simulation,
                format!("edit targets unknown net {:?}", edit.net),
            ));
        };
        if !circuit.inputs().contains(&net) {
            return Err((
                ErrorKind::Simulation,
                format!("edit target {:?} is not a primary input", edit.net),
            ));
        }
        let level = if edit.initial_high {
            Level::High
        } else {
            Level::Low
        };
        let trace = DigitalTrace::new(level, edit.toggles.clone()).map_err(|e| {
            (
                ErrorKind::Simulation,
                format!("edit for net {:?}: {e}", edit.net),
            )
        })?;
        stimuli.insert(net, trace);
    }
    Ok(())
}

/// Runs the requested simulation on already-resolved artifacts. This is
/// the only numerics entry point of the service; `sigctl golden` calls it
/// with directly-built artifacts to produce the independent reference the
/// CI smoke job diffs against.
///
/// # Errors
///
/// Returns the protocol error kind and message on simulation failure.
pub fn run_sim(
    circuit: &Circuit,
    set: &ModelSet,
    sim: &SimRequest,
    cache: CacheOutcome,
) -> Result<SimResult, (ErrorKind, String)> {
    run_sim_edited(circuit, set, sim, &[], cache)
}

/// [`run_sim`] with the seeded stimuli of the edited primary inputs
/// replaced first — the exact replacement semantics of `session.delta`,
/// so `sigctl golden --edit` produces the full-run reference frame a
/// delta response must match byte-for-byte (modulo the documented cache
/// hit/miss echo).
///
/// # Errors
///
/// Returns the protocol error kind and message when an edit is invalid
/// or the simulation fails.
pub fn run_sim_edited(
    circuit: &Circuit,
    set: &ModelSet,
    sim: &SimRequest,
    edits: &[SessionEdit],
    cache: CacheOutcome,
) -> Result<SimResult, (ErrorKind, String)> {
    let mut stimuli = stimuli_for(circuit, sim);
    apply_edits(circuit, &mut stimuli, edits)?;
    let threshold = set.options.vdd / 2.0;
    let fingerprint = crate::protocol::hex64(circuit.fingerprint());
    let library = set.library.clone();
    if sim.compare {
        let delays = set.delays.get().map_err(|e| {
            (
                ErrorKind::Simulation,
                format!("delay extraction failed: {e}"),
            )
        })?;
        let Some(delays) = delays else {
            return Err((
                ErrorKind::Simulation,
                format!(
                    "model set {:?} has no delay table; compare mode unavailable",
                    set.name
                ),
            ));
        };
        let config = HarnessConfig::default();
        let outcome = compare_circuit_cells(circuit, &stimuli, &set.cells, &delays, &config)
            .map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
        let outputs = outcome
            .bundles
            .iter()
            .map(|b| {
                let d = b.sigmoid.digitize(threshold);
                OutputTrace {
                    net: b.net.clone(),
                    initial_high: d.initial().is_high(),
                    toggles: d.toggles().to_vec(),
                }
            })
            .collect();
        Ok(SimResult {
            fingerprint,
            library,
            cache,
            outputs,
            compare: Some(CompareStats {
                t_err_digital: outcome.t_err_digital,
                t_err_sigmoid: outcome.t_err_sigmoid,
                error_ratio: outcome.error_ratio(),
            }),
            timing: sim.timing.then_some(TimingStats {
                wall_analog_s: outcome.wall_analog.as_secs_f64(),
                wall_digital_s: outcome.wall_digital.as_secs_f64(),
                wall_sigmoid_s: outcome.wall_sigmoid.as_secs_f64(),
            }),
            timings: None,
        })
    } else {
        // Sigmoid-only: inputs are the digital stimuli converted at the
        // fixed same-stimulus slope (no analog run involved) — the
        // deterministic cheap path for throughput workloads.
        let sigmoid_stimuli = sigmoid_stimuli_from(&stimuli, set.options.vdd);
        let start = Instant::now();
        let result = simulate_cells_with(
            circuit,
            &sigmoid_stimuli,
            &set.cells,
            set.options,
            &SigmoidSimConfig::default(),
        )
        .map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
        let wall_sigmoid = start.elapsed();
        Ok(SimResult {
            fingerprint,
            library,
            cache,
            outputs: sigmoid_outputs(circuit, &result, threshold),
            compare: None,
            timing: sim.timing.then_some(TimingStats {
                wall_analog_s: 0.0,
                wall_digital_s: 0.0,
                wall_sigmoid_s: wall_sigmoid.as_secs_f64(),
            }),
            timings: None,
        })
    }
}

/// The compiled-program twin of [`run_sim`]'s sigmoid-only branch: binds
/// the request's stimuli to a resident program with a reusable scratch
/// arena. Response fields are constructed identically, so a program-path
/// response is byte-for-byte the response the fused path would produce —
/// the CI smoke job diffs a daemon (program path) against `sigctl golden`
/// (fused path) to enforce exactly that.
fn run_program(
    program: &CircuitProgram,
    set: &ModelSet,
    sim: &SimRequest,
    cache: CacheOutcome,
    scratch: &mut SimScratch,
) -> Result<SimResult, (ErrorKind, String)> {
    let circuit = program.circuit();
    let stimuli = stimuli_for(circuit, sim);
    let sigmoid_stimuli = sigmoid_stimuli_from(&stimuli, set.options.vdd);
    let start = Instant::now();
    let result = program
        .execute(&sigmoid_stimuli, scratch)
        .map_err(|e| (ErrorKind::Simulation, e.to_string()))?;
    let wall_sigmoid = start.elapsed();
    Ok(SimResult {
        fingerprint: crate::protocol::hex64(circuit.fingerprint()),
        library: set.library.clone(),
        cache,
        outputs: sigmoid_outputs(circuit, &result, set.options.vdd / 2.0),
        compare: None,
        timing: sim.timing.then_some(TimingStats {
            wall_analog_s: 0.0,
            wall_digital_s: 0.0,
            wall_sigmoid_s: wall_sigmoid.as_secs_f64(),
        }),
        timings: None,
    })
}

/// Converts per-request digital stimuli to sigmoid inputs at the fixed
/// same-stimulus slope (shared by the fused and program paths — one
/// definition, so the two can never drift).
fn sigmoid_stimuli_from(
    stimuli: &HashMap<NetId, DigitalTrace>,
    vdd: f64,
) -> HashMap<NetId, Arc<SigmoidTrace>> {
    stimuli
        .iter()
        .map(|(&net, trace)| (net, Arc::new(digital_to_sigmoid(trace, vdd))))
        .collect()
}

/// Digitizes a sigmoid simulation's primary outputs into wire traces
/// (shared by the fused and program paths).
fn sigmoid_outputs(
    circuit: &Circuit,
    result: &SigmoidSimResult,
    threshold: f64,
) -> Vec<OutputTrace> {
    circuit
        .outputs()
        .iter()
        .map(|&o| {
            let d = result.trace(o).digitize(threshold);
            OutputTrace {
                net: circuit.net_name(o).to_string(),
                initial_high: d.initial().is_high(),
                toggles: d.toggles().to_vec(),
            }
        })
        .collect()
}
