//! The model registry: named [`TrainedModels`] bundles loaded **once**
//! and shared as `Arc` across every request and worker thread.
//!
//! Before this layer existed, every entry point re-ran
//! [`train_models_cached`] (and a [`DelayTable`] extraction) per
//! invocation. The registry makes those artifacts resident: the first
//! request for a name pays the load (disk cache hit or full training),
//! every later request clones an `Arc`. The load counter backs the
//! service-level guarantee — and the integration test's assertion — that
//! models are loaded exactly once per name per daemon lifetime.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nanospice::EngineConfig;
use sigchar::{AnalogOptions, DelayTable};
use sigcircuit::MappingPolicy;
use sigsim::{
    train_cell_library_cached, train_models_cached, CellModels, LibrarySpec, PipelineConfig,
    PipelineError, TrainedModels,
};
use sigtom::TomOptions;

/// One resident model bundle: everything a request needs that is
/// expensive to build and safe to share.
#[derive(Debug)]
pub struct ModelSet {
    /// Preset name this set was loaded under (`ci`, `default`, …).
    pub name: String,
    /// Cell-library name (`nor-only`, `native`, or a custom key for
    /// inserted sets). Together with `name` this forms the registry key.
    pub library: String,
    /// The mapping policy requests against this set apply to circuits
    /// before simulation (NOR expansion vs native cells).
    pub policy: MappingPolicy,
    /// The legacy trained artifact (weights, datasets); present only for
    /// `nor-only` preset loads, `None` for native-library and synthetic
    /// sets.
    pub trained: Option<Arc<TrainedModels>>,
    /// The runtime cell models (shared weight allocations) that drive
    /// the simulator.
    pub cells: Arc<CellModels>,
    /// The per-fan-out delay table the digital baseline of compare-mode
    /// requests uses (see [`DelaySource`]).
    pub delays: DelaySource,
    /// TOM prediction options paired with the models.
    pub options: TomOptions,
}

impl ModelSet {
    /// The registry key of this set (`name/library`).
    #[must_use]
    pub fn key(&self) -> String {
        registry_key(&self.name, &self.library)
    }
}

/// The composite registry key of a `(preset, library)` pair.
fn registry_key(name: &str, library: &str) -> String {
    format!("{name}/{library}")
}

/// Where a model set's [`DelayTable`] comes from. Extraction runs the
/// analog chain characterization (tens of milliseconds per cell class),
/// which only compare-mode requests need — so registry loads declare it
/// on-demand ([`DelaySource::for_policy`]) and sigmoid-only traffic
/// never pays for it; the first compare-mode request measures once and
/// the result is shared from then on. Native-library sets measure every
/// native cell class, so compare-mode NAND2/AND2/OR2 instances use their
/// own chain delays instead of the historical NOR approximation.
#[derive(Debug, Default)]
pub struct DelaySource {
    /// The cell classes an on-demand measurement covers; empty means the
    /// set cannot measure (compare mode unavailable unless fixed).
    classes: Vec<sigchar::ChainGate>,
    cell: Mutex<Option<Arc<DelayTable>>>,
}

impl DelaySource {
    /// No table and no way to measure one: compare mode is unavailable
    /// (synthetic test/bench sets).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Measure the legacy NOR/inverter classes lazily on first use, then
    /// stay resident — the `nor-only` library's source.
    #[must_use]
    pub fn on_demand() -> Self {
        Self {
            classes: sigchar::LEGACY_DELAY_CELLS.to_vec(),
            cell: Mutex::new(None),
        }
    }

    /// Measure every native cell class lazily on first use — the
    /// `native` library's source.
    #[must_use]
    pub fn on_demand_native() -> Self {
        Self {
            classes: sigchar::NATIVE_DELAY_CELLS.to_vec(),
            cell: Mutex::new(None),
        }
    }

    /// The on-demand source matching a mapping policy — shared by the
    /// daemon's registry and `sigctl golden`, so both measure identical
    /// tables and the CI byte-parity smoke keeps holding.
    #[must_use]
    pub fn for_policy(policy: MappingPolicy) -> Self {
        match policy {
            MappingPolicy::NorOnly => Self::on_demand(),
            MappingPolicy::Native => Self::on_demand_native(),
        }
    }

    /// A pre-built table.
    #[must_use]
    pub fn fixed(table: Arc<DelayTable>) -> Self {
        Self {
            classes: Vec::new(),
            cell: Mutex::new(Some(table)),
        }
    }

    /// The table, measuring it first if this source is on-demand and it
    /// has not been measured yet (racing first uses measure once — the
    /// cell lock is held across the measurement). `Ok(None)` means this
    /// set cannot serve compare-mode requests.
    ///
    /// # Errors
    ///
    /// Propagates the measurement failure; a later call retries.
    pub fn get(&self) -> Result<Option<Arc<DelayTable>>, sigchar::CharError> {
        let mut cell = self.cell.lock().expect("delay source poisoned");
        if let Some(table) = &*cell {
            return Ok(Some(Arc::clone(table)));
        }
        if self.classes.is_empty() {
            return Ok(None);
        }
        let table = Arc::new(DelayTable::measure_cells(
            &self.classes,
            1..=6,
            &[1.0],
            &AnalogOptions::default(),
            &EngineConfig::default(),
        )?);
        *cell = Some(Arc::clone(&table));
        Ok(Some(table))
    }
}

/// Error resolving a model set.
#[derive(Debug)]
pub enum RegistryError {
    /// The name matches no preset and no registered set.
    UnknownName(String),
    /// The training/loading pipeline failed.
    Pipeline(PipelineError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownName(n) => write!(f, "unknown model set {n:?}"),
            Self::Pipeline(e) => write!(f, "model pipeline failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The named pipeline presets the registry can load on demand. `ci` is
/// the smoke-test scale ([`PipelineConfig::ci`]); `paper` the
/// full-granularity sweep.
pub const PRESETS: [&str; 4] = ["default", "fast", "ci", "paper"];

/// The cell libraries each preset can be loaded for: `nor-only` is the
/// paper's four-variant prototype set, `native` the full multi-cell
/// library (see `docs/cell-libraries.md`).
pub const LIBRARIES: [&str; 2] = ["nor-only", "native"];

/// The pipeline config and on-disk cache file name of a preset, or
/// `None` for unknown names. Shared with `sigctl golden` so the
/// service-free reference path trains/loads exactly the same artifact
/// the daemon would.
#[must_use]
pub fn preset_config(name: &str) -> Option<(PipelineConfig, &'static str)> {
    match name {
        "default" => Some((PipelineConfig::default(), "default.json")),
        "fast" => Some((PipelineConfig::fast(), "quickstart.json")),
        "ci" => Some((PipelineConfig::ci(), "ci.json")),
        "paper" => Some((
            PipelineConfig {
                characterization: sigchar::CharacterizationConfig::paper(),
                ..PipelineConfig::default()
            },
            "paper.json",
        )),
        _ => None,
    }
}

/// Per-name registry slot: the slot mutex serializes loading of *one*
/// name, so racing first requests train exactly once, while lookups —
/// resident or loading — of other names proceed untouched.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<Arc<ModelSet>>>,
}

/// The registry. The outer map lock is held only for slot lookup
/// (microseconds); a first load (training + delay extraction, possibly
/// minutes for `paper`) holds only its own name's slot lock, so traffic
/// against already-resident sets never stalls behind it.
#[derive(Debug)]
pub struct ModelRegistry {
    /// Directory holding the on-disk model caches of the presets.
    base_dir: PathBuf,
    entries: Mutex<HashMap<String, Arc<Slot>>>,
    loads: AtomicU64,
    requests: AtomicU64,
}

impl ModelRegistry {
    /// A registry whose preset caches live under `base_dir`.
    #[must_use]
    pub fn new(base_dir: impl Into<PathBuf>) -> Self {
        Self {
            base_dir: base_dir.into(),
            entries: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    fn slot(&self, key: &str) -> Arc<Slot> {
        let mut entries = self.entries.lock().expect("registry poisoned");
        Arc::clone(entries.entry(key.to_string()).or_default())
    }

    /// Registers a pre-built set under its `(name, library)` key (tests
    /// and benches use this to serve synthetic models without training).
    /// Counts as one load.
    pub fn insert(&self, set: ModelSet) {
        let slot = self.slot(&set.key());
        *slot.state.lock().expect("registry slot poisoned") = Some(Arc::new(set));
        self.loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a `(preset, library)` pair: a resident set is cloned; a
    /// known preset × known library is loaded (disk cache or training),
    /// inserted and returned (its delay table is measured lazily on first
    /// compare-mode use). The `nor-only` library loads the legacy
    /// [`TrainedModels`] artifact; `native` loads/trains the full
    /// [`sigsim::CellLibrary`] under a `.native.json`-suffixed cache.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] on unknown names/libraries or pipeline
    /// failure.
    pub fn get_or_load(&self, name: &str, library: &str) -> Result<Arc<ModelSet>, RegistryError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = registry_key(name, library);
        let slot = self.slot(&key);
        let mut state = slot.state.lock().expect("registry slot poisoned");
        if let Some(set) = &*state {
            return Ok(Arc::clone(set));
        }
        let (config, cache_file) =
            preset_config(name).ok_or_else(|| RegistryError::UnknownName(name.to_string()))?;
        // Load while holding this key's slot lock: a racing request for
        // the same pair waits here, then takes the resident branch above —
        // never a second training run.
        let set = match library {
            "nor-only" => {
                let trained = train_models_cached(&self.base_dir.join(cache_file), &config)
                    .map_err(RegistryError::Pipeline)?;
                let cells = Arc::new(CellModels::nor_only(&trained.gate_models()));
                ModelSet {
                    name: name.to_string(),
                    library: library.to_string(),
                    policy: MappingPolicy::NorOnly,
                    trained: Some(Arc::new(trained)),
                    cells,
                    delays: DelaySource::on_demand(),
                    options: TomOptions::default(),
                }
            }
            "native" => {
                let path = sigsim::native_cache_path(&self.base_dir.join(cache_file));
                let lib = train_cell_library_cached(&path, &LibrarySpec::native(), &config)
                    .map_err(RegistryError::Pipeline)?;
                ModelSet {
                    name: name.to_string(),
                    library: library.to_string(),
                    policy: MappingPolicy::Native,
                    trained: None,
                    cells: Arc::new(lib.cell_models()),
                    delays: DelaySource::on_demand_native(),
                    options: TomOptions::default(),
                }
            }
            other => return Err(RegistryError::UnknownName(registry_key(name, other))),
        };
        let set = Arc::new(set);
        *state = Some(Arc::clone(&set));
        self.loads.fetch_add(1, Ordering::Relaxed);
        Ok(set)
    }

    /// Number of sets actually loaded (trained or read from disk), not
    /// served resident.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Number of lookups, resident or not.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The `preset/library` keys of currently resident sets, sorted —
    /// the `model_sets` field of a stats reply.
    #[must_use]
    pub fn resident_keys(&self) -> Vec<String> {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut keys: Vec<String> = entries
            .iter()
            .filter(|(_, slot)| slot.state.lock().expect("registry slot poisoned").is_some())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }
}

/// A synthetic sigmoid-only model set (fixed transfer function, no delay
/// table) for fast unit tests across the crate. Registered under the
/// `nor-only` library so requests without a `library` field resolve it.
#[cfg(test)]
pub(crate) fn synthetic_set(name: &str) -> ModelSet {
    use sigsim::GateModels;
    use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};

    struct Fixed;
    impl TransferFunction for Fixed {
        fn predict(&self, q: TransferQuery) -> TransferPrediction {
            TransferPrediction {
                a_out: -q.a_in.signum() * 14.0,
                delay: 0.05,
            }
        }
        fn backend_name(&self) -> &'static str {
            "fixed"
        }
    }

    ModelSet {
        name: name.to_string(),
        library: "nor-only".to_string(),
        policy: MappingPolicy::NorOnly,
        trained: None,
        cells: Arc::new(CellModels::nor_only(&GateModels::uniform(GateModel::new(
            Arc::new(Fixed),
        )))),
        delays: DelaySource::none(),
        options: TomOptions::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cargo runs package tests with the package directory as cwd; use
    /// the workspace target dir so model caches are shared with the
    /// repo-level tests and never litter `crates/serve/target/`.
    pub(crate) const TEST_MODELS_DIR: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sigmodels");

    #[test]
    fn unknown_names_and_libraries_are_errors() {
        let r = ModelRegistry::new(TEST_MODELS_DIR);
        assert!(matches!(
            r.get_or_load("nonsense", "nor-only"),
            Err(RegistryError::UnknownName(_))
        ));
        assert!(matches!(
            r.get_or_load("ci", "imaginary-library"),
            Err(RegistryError::UnknownName(_))
        ));
        // Failed resolves still count as requests, not loads.
        assert_eq!(r.requests(), 2);
        assert_eq!(r.loads(), 0);
        assert!(r.resident_keys().is_empty());
    }

    #[test]
    fn inserted_sets_resolve_without_loading() {
        let r = ModelRegistry::new(TEST_MODELS_DIR);
        r.insert(synthetic_set("synth"));
        let a = r.get_or_load("synth", "nor-only").unwrap();
        let b = r.get_or_load("synth", "nor-only").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "resident set must be shared");
        assert!(Arc::ptr_eq(&a.cells, &b.cells));
        assert_eq!(r.loads(), 1, "insert counts as the single load");
        assert_eq!(r.requests(), 2);
        assert_eq!(r.resident_keys(), vec!["synth/nor-only".to_string()]);
    }

    #[test]
    fn concurrent_first_requests_load_once() {
        // Uses the ci preset backed by the shared on-disk cache; eight
        // threads race the first resolve and the pipeline must run once.
        let r = Arc::new(ModelRegistry::new(TEST_MODELS_DIR));
        let sets: Vec<Arc<ModelSet>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let r = Arc::clone(&r);
                    scope.spawn(move || r.get_or_load("ci", "nor-only").unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(r.loads(), 1, "exactly one load under concurrency");
        assert_eq!(r.requests(), 8);
        for s in &sets[1..] {
            assert!(
                Arc::ptr_eq(&sets[0].cells, &s.cells),
                "all requests share one CellModels allocation"
            );
        }
        let table = sets[0].delays.get().expect("measurement succeeds");
        assert!(table.is_some(), "preset sets can serve compare mode");
    }

    #[test]
    fn libraries_of_one_preset_are_distinct_sets() {
        let r = ModelRegistry::new(TEST_MODELS_DIR);
        let nor = r.get_or_load("ci", "nor-only").unwrap();
        let native = r.get_or_load("ci", "native").unwrap();
        assert_eq!(r.loads(), 2, "each library is its own load");
        assert_eq!(nor.policy, MappingPolicy::NorOnly);
        assert_eq!(native.policy, MappingPolicy::Native);
        assert_eq!(native.cells.name(), "native");
        // The native set covers NAND2; the prototype set does not.
        use sigcircuit::GateKind;
        assert!(native.cells.slot_for(GateKind::Nand, 2, 1).is_some());
        assert!(nor.cells.slot_for(GateKind::Nand, 2, 1).is_none());
        // Native delay tables measure every native cell class, so
        // compare-mode NAND2/AND2/OR2 stop borrowing NOR-class delays.
        let table = native
            .delays
            .get()
            .expect("measurement succeeds")
            .expect("native sets serve compare mode");
        for class in sigchar::NATIVE_DELAY_CELLS {
            assert!(table.has_cell(class, 1), "missing class {class:?}");
        }
        assert_eq!(
            r.resident_keys(),
            vec!["ci/native".to_string(), "ci/nor-only".to_string()]
        );
    }
}
