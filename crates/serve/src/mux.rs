//! The multiplexed TCP transport: an epoll readiness loop (one reactor
//! thread by default, `io_threads` to shard connections) serving every
//! connection without per-connection threads, with request pipelining,
//! strict in-order response write-back, and two layers of explicit
//! backpressure.
//!
//! # Shape
//!
//! Each reactor owns a [`crate::reactor::Poller`], a wake channel, and
//! the connections assigned to it. Reactor 0 additionally owns the
//! listener; accepted sockets are handed out round-robin. A connection
//! is a non-blocking socket, a [`FrameReader`] over its read side, an
//! output byte buffer, and two sequence cursors:
//!
//! * `next_seq` — assigned to each frame as it is dispatched,
//! * `next_write` — the next sequence whose response may be written.
//!
//! Workers (and inline handlers) never touch the socket: a request's
//! responder encodes the response and deposits the line under its
//! sequence number in the connection's completion map, then wakes the
//! owning reactor. The reactor drains completions **in sequence order**
//! into the output buffer, so pipelined responses always come back in
//! request order no matter how the pool interleaves execution.
//!
//! # Backpressure and admission control
//!
//! * **Per connection** — at most `max_inflight` frames may be
//!   dispatched but unanswered (and at most `OUT_HIGH_WATER` response
//!   bytes pending); past either mark the reactor simply stops reading
//!   that socket (epoll interest drops to none), pushing backpressure
//!   into the kernel buffers and ultimately the client. Nothing is
//!   dropped; reading resumes as responses flush.
//! * **Daemon-wide** — at most `admission_budget` heavy requests (sim,
//!   batch, session open/delta) may be in flight across all
//!   connections. Past it new heavy frames answer `overloaded`
//!   immediately — same semantics as the pool-queue rejection — so a
//!   flood of work is refused at the door instead of starving the
//!   executing requests with decode/reject churn.
//!
//! An idle daemon does **zero periodic work**: `epoll_wait` blocks
//! without a timeout, and shutdown reaches every reactor through its
//! wake channel (regression-tested below via the wakeup counter).

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{
    decode_request, encode_response, salvage_id, ErrorKind, FrameReader, Request, Response,
};
use crate::reactor::{wake_channel, Event, Interest, Poller, WakeReceiver, Waker};
use crate::service::{Handled, Service};
use crate::session::SessionTable;

/// Wire-edge phases on the reactor/worker threads; same span names as
/// the blocking transport so traces and the `stats` quantiles read the
/// same regardless of transport.
static DECODE: sigobs::Hist = sigobs::Hist::new("serve.decode");
static ENCODE: sigobs::Hist = sigobs::Hist::new("serve.encode");

/// Times `epoll_wait` returned across all reactors since process start.
/// A test-visible busy-poll tripwire: an idle daemon must not tick.
static WAKEUPS: AtomicU64 = AtomicU64::new(0);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

/// Pending-output high-water mark per connection: past it the reactor
/// stops reading the socket until responses flush.
const OUT_HIGH_WATER: usize = 1 << 20;

/// State a connection shares with its in-flight responders.
struct ConnShared {
    /// The connection's epoll token (unique per accepted socket).
    token: u64,
    /// Index of the owning reactor.
    reactor: usize,
    /// Set when the connection is gone; late responders drop their line.
    dead: AtomicBool,
    /// The token is already on the owning reactor's dirty list.
    queued: AtomicBool,
    /// Encoded response lines waiting for their turn, keyed by sequence.
    completions: Mutex<HashMap<u64, String>>,
}

/// Per-reactor handle visible to every thread: how to reach the reactor.
struct ReactorHandle {
    waker: Arc<Waker>,
    /// Sockets accepted by reactor 0 awaiting adoption here.
    inbox: Mutex<Vec<TcpStream>>,
    /// Connections with fresh completions to drain.
    dirty: Mutex<Vec<u64>>,
}

/// State shared by all reactors and responders.
struct MuxShared {
    service: Arc<Service>,
    /// Daemon-wide shutdown flag (a `shutdown` frame on any connection).
    stop: AtomicBool,
    /// Heavy requests admitted and not yet answered, daemon-wide.
    admission: AtomicUsize,
    /// Round-robin cursor for assigning accepted sockets to reactors.
    next_reactor: AtomicUsize,
    reactors: Vec<ReactorHandle>,
}

impl MuxShared {
    fn wake_all(&self) {
        for r in &self.reactors {
            r.waker.wake();
        }
    }
}

/// Deposits one encoded response line and nudges the owning reactor.
fn deposit(shared: &MuxShared, conn: &ConnShared, seq: u64, line: String) {
    if conn.dead.load(Ordering::Acquire) {
        return;
    }
    conn.completions
        .lock()
        .expect("completions poisoned")
        .insert(seq, line);
    let handle = &shared.reactors[conn.reactor];
    if !conn.queued.swap(true, Ordering::AcqRel) {
        handle
            .dirty
            .lock()
            .expect("dirty list poisoned")
            .push(conn.token);
    }
    handle.waker.wake();
}

/// Builds the responder for one dispatched frame: encodes, releases the
/// admission slot, and deposits at the frame's sequence.
fn responder(
    shared: Arc<MuxShared>,
    conn: Arc<ConnShared>,
    seq: u64,
    admitted: bool,
) -> impl Fn(Response) + Send + Sync + 'static {
    let armed = AtomicBool::new(true);
    move |response| {
        // The service responds exactly once per request; the guard makes
        // the admission release idempotent regardless.
        if !armed.swap(false, Ordering::AcqRel) {
            return;
        }
        if admitted {
            shared.admission.fetch_sub(1, Ordering::AcqRel);
        }
        let sw = sigobs::stopwatch();
        let line = encode_response(&response);
        sw.observe_span(&ENCODE, "serve.encode");
        deposit(&shared, &conn, seq, line);
    }
}

/// One multiplexed connection, owned by its reactor thread.
struct Conn {
    stream: TcpStream,
    frames: FrameReader<BufReader<TcpStream>>,
    shared: Arc<ConnShared>,
    sessions: Arc<SessionTable>,
    /// Pending output bytes; `out[out_pos..]` is unwritten.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence assigned to the next dispatched frame.
    next_seq: u64,
    /// Sequence whose response is written next.
    next_write: u64,
    /// Stop reading: EOF, read failure, or daemon shutdown.
    eof: bool,
    /// Write side failed; the connection is torn down at next settle.
    broken: bool,
    /// Current epoll interest (to skip redundant `EPOLL_CTL_MOD`s).
    interest: Interest,
}

impl Conn {
    fn inflight(&self) -> u64 {
        self.next_seq - self.next_write
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn paused(&self, max_inflight: usize) -> bool {
        self.inflight() >= max_inflight as u64 || self.pending_out() >= OUT_HIGH_WATER
    }

    /// Moves every response whose turn has come from the completion map
    /// into the output buffer.
    fn collect_completions(&mut self) {
        loop {
            let line = self
                .shared
                .completions
                .lock()
                .expect("completions poisoned")
                .remove(&self.next_write);
            match line {
                Some(l) => {
                    self.out.extend_from_slice(l.as_bytes());
                    self.out.push(b'\n');
                    self.next_write += 1;
                }
                None => break,
            }
        }
    }
}

struct Reactor {
    shared: Arc<MuxShared>,
    idx: usize,
    poller: Poller,
    wake_rx: WakeReceiver,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, None).is_err() {
                break;
            }
            WAKEUPS.fetch_add(1, Ordering::Relaxed);
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => {
                        let waker = Arc::clone(&self.shared.reactors[self.idx].waker);
                        self.wake_rx.rearm(&waker);
                    }
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev),
                }
            }
            self.adopt_inbox();
            self.drain_dirty();
            if self.shared.stop.load(Ordering::SeqCst) {
                self.finalize();
                return;
            }
        }
        // Fatal poller failure: release what we hold so the daemon can
        // at least drain (connections drop; clients see resets).
        self.finalize();
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let n = self.shared.reactors.len();
                    let target = if n == 1 {
                        self.idx
                    } else {
                        self.shared.next_reactor.fetch_add(1, Ordering::Relaxed) % n
                    };
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        self.shared.reactors[target]
                            .inbox
                            .lock()
                            .expect("inbox poisoned")
                            .push(stream);
                        self.shared.reactors[target].waker.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failures (per-connection resets,
                // fd-limit pressure) must not kill the daemon.
                Err(_) => return,
            }
        }
    }

    fn adopt_inbox(&mut self) {
        let streams = std::mem::take(
            &mut *self.shared.reactors[self.idx]
                .inbox
                .lock()
                .expect("inbox poisoned"),
        );
        for stream in streams {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Pipelined small frames benefit from immediate segments.
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let token = self.next_token;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.next_token += 1;
        let max_frame = self.shared.service.config().max_frame;
        let conn = Conn {
            frames: FrameReader::new(BufReader::new(read_half), max_frame),
            stream,
            shared: Arc::new(ConnShared {
                token,
                reactor: self.idx,
                dead: AtomicBool::new(false),
                queued: AtomicBool::new(false),
                completions: Mutex::new(HashMap::new()),
            }),
            sessions: SessionTable::new(Arc::clone(&self.shared.service)),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            eof: false,
            broken: false,
            interest: Interest::READ,
        };
        self.conns.insert(token, conn);
        self.shared
            .service
            .connections_gauge()
            .fetch_add(1, Ordering::SeqCst);
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        if !self.conns.contains_key(&token) {
            return; // stale event for a connection closed this batch
        }
        if ev.readable {
            self.read_dispatch(token);
        }
        if ev.writable {
            self.flush(token);
        }
        if ev.closed && !ev.readable && !ev.writable {
            // Pure hang-up (EPOLLERR/EPOLLHUP with no data): the socket
            // is dead in both directions.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.eof = true;
                conn.broken = true;
            }
        }
        self.settle(token);
    }

    /// Reads and dispatches frames until the socket would block, the
    /// connection pauses (backpressure), ends, or the daemon stops.
    fn read_dispatch(&mut self, token: u64) {
        let shared = Arc::clone(&self.shared);
        let service = Arc::clone(&shared.service);
        let max_inflight = service.config().max_inflight.max(1);
        let admission_budget = service.config().admission_budget.max(1);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        loop {
            if conn.eof || conn.broken || conn.paused(max_inflight) {
                return;
            }
            if shared.stop.load(Ordering::SeqCst) {
                // A client that keeps sending frames must not keep the
                // daemon alive after a shutdown was acknowledged.
                conn.eof = true;
                return;
            }
            let frame = match conn.frames.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    conn.eof = true;
                    return;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return;
                }
                Err(_) => {
                    // Transport read failure: stop reading, but keep the
                    // write side so already-accepted requests answer.
                    conn.eof = true;
                    return;
                }
            };
            let line = match frame {
                Ok(line) => line,
                Err(e) => {
                    // Per-frame protocol violation: answers in order like
                    // any other request.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    deposit(
                        &shared,
                        &conn.shared,
                        seq,
                        encode_response(&e.to_response(None)),
                    );
                    continue;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let sw = sigobs::stopwatch();
            let request = match decode_request(&line) {
                Ok(r) => r,
                Err(e) => {
                    sw.observe_span(&DECODE, "serve.decode");
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    deposit(
                        &shared,
                        &conn.shared,
                        seq,
                        encode_response(&e.to_response(salvage_id(&line))),
                    );
                    continue;
                }
            };
            sw.observe_span(&DECODE, "serve.decode");
            if conn.inflight() >= 1 {
                service.note_pipelined();
            }
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let heavy_id = match &request {
                Request::Sim { id, .. }
                | Request::SimBatch { id, .. }
                | Request::SessionOpen { id, .. }
                | Request::SessionDelta { id, .. } => Some(*id),
                _ => None,
            };
            let admitted = if let Some(id) = heavy_id {
                if shared.admission.fetch_add(1, Ordering::AcqRel) >= admission_budget {
                    shared.admission.fetch_sub(1, Ordering::AcqRel);
                    service.note_admission_reject();
                    deposit(
                        &shared,
                        &conn.shared,
                        seq,
                        encode_response(&Response::Error {
                            id: Some(id),
                            kind: ErrorKind::Overloaded,
                            message: "admission budget exhausted".to_string(),
                        }),
                    );
                    continue;
                }
                true
            } else {
                false
            };
            let respond = responder(Arc::clone(&shared), Arc::clone(&conn.shared), seq, admitted);
            let handled = service.handle_connection_request(request, Some(&conn.sessions), respond);
            if handled == Handled::Shutdown {
                shared.stop.store(true, Ordering::SeqCst);
                shared.wake_all();
                conn.eof = true;
                return;
            }
        }
    }

    /// Writes pending output until the socket would block.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.broken = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        } else if conn.out_pos >= OUT_HIGH_WATER {
            // Reclaim the written prefix before it dwarfs the backlog.
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
    }

    /// Per-connection epilogue after any activity: closes finished
    /// connections, otherwise reconciles epoll interest with state.
    fn settle(&mut self, token: u64) {
        let max_inflight = self.shared.service.config().max_inflight.max(1);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let answered = conn.next_write == conn.next_seq;
        if conn.broken || (conn.eof && answered && conn.pending_out() == 0) {
            self.close_conn(token);
            return;
        }
        let want = Interest {
            readable: !conn.eof && !conn.paused(max_inflight),
            writable: conn.pending_out() > 0,
        };
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            conn.shared.dead.store(true, Ordering::Release);
            self.shared
                .service
                .connections_gauge()
                .fetch_sub(1, Ordering::SeqCst);
            // Dropping the streams closes the socket and (as the last
            // fds on the description) drops the epoll registration;
            // dropping `sessions` releases the connection's sessions.
        }
    }

    /// Drains freshly completed responses: in-order collection into the
    /// output buffers, an opportunistic flush, and a read resume when
    /// the flush lifted a backpressure pause.
    fn drain_dirty(&mut self) {
        let max_inflight = self.shared.service.config().max_inflight.max(1);
        let tokens = std::mem::take(
            &mut *self.shared.reactors[self.idx]
                .dirty
                .lock()
                .expect("dirty list poisoned"),
        );
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // closed since it was queued
            };
            // Clear the flag before draining so a racing deposit either
            // lands before the drain or re-queues the token.
            conn.shared.queued.store(false, Ordering::Release);
            let was_paused = conn.paused(max_inflight);
            conn.collect_completions();
            self.flush(token);
            let unpaused = self
                .conns
                .get(&token)
                .is_some_and(|c| was_paused && !c.paused(max_inflight));
            if unpaused {
                // Frames may be sitting in the connection's user-space
                // read buffer; no epoll event will ever announce them.
                self.read_dispatch(token);
            }
            self.settle(token);
        }
    }

    /// Shutdown epilogue: stop accepting, wait for every in-flight job
    /// to deposit, then write every connection's remaining responses
    /// with a bounded blocking flush.
    fn finalize(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        // Jobs dispatched by this reactor (or still queued) deposit
        // their completions before drain returns.
        self.shared.service.drain();
        for (_token, mut conn) in self.conns.drain() {
            conn.shared.dead.store(true, Ordering::Release);
            self.shared
                .service
                .connections_gauge()
                .fetch_sub(1, Ordering::SeqCst);
            conn.collect_completions();
            if conn.broken || conn.pending_out() == 0 {
                continue;
            }
            // Final flush blocks (bounded): the shutdown ack must reach
            // the client that asked before the process exits.
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(5)));
            let _ = conn.stream.write_all(&conn.out[conn.out_pos..]);
            let _ = conn.stream.flush();
        }
    }
}

/// Serves the protocol on a bound TCP listener with the epoll transport
/// until a client requests shutdown. `config().io_threads` reactors
/// multiplex all connections; see the module docs for the pipelining,
/// ordering, and admission-control semantics.
///
/// # Errors
///
/// Returns the I/O error that prevented the transport from starting
/// (epoll instance, wake channels, registrations). Runtime per-
/// connection failures never kill the daemon.
pub fn serve_mux(service: &Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let io_threads = service.config().io_threads.max(1);
    let mut receivers = Vec::with_capacity(io_threads);
    let mut handles = Vec::with_capacity(io_threads);
    for _ in 0..io_threads {
        let (waker, rx) = wake_channel()?;
        receivers.push(rx);
        handles.push(ReactorHandle {
            waker,
            inbox: Mutex::new(Vec::new()),
            dirty: Mutex::new(Vec::new()),
        });
    }
    let shared = Arc::new(MuxShared {
        service: Arc::clone(service),
        stop: AtomicBool::new(false),
        admission: AtomicUsize::new(0),
        next_reactor: AtomicUsize::new(0),
        reactors: handles,
    });
    let mut listener = Some(listener);
    let mut threads = Vec::with_capacity(io_threads);
    for (idx, wake_rx) in receivers.into_iter().enumerate() {
        let poller = Poller::new()?;
        poller.register(wake_rx.raw_fd(), TOKEN_WAKER, Interest::READ)?;
        let own_listener = if idx == 0 { listener.take() } else { None };
        if let Some(l) = &own_listener {
            poller.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        }
        let reactor = Reactor {
            shared: Arc::clone(&shared),
            idx,
            poller,
            wake_rx,
            listener: own_listener,
            conns: HashMap::new(),
            next_token: TOKEN_CONN_BASE,
        };
        threads.push(std::thread::spawn(move || reactor.run()));
    }
    for t in threads {
        let _ = t.join();
    }
    service.drain();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_response, encode_request, CircuitSource, ErrorKind, Request, SimRequest,
    };
    use crate::registry::synthetic_set;
    use crate::service::ServiceConfig;
    use std::io::{BufRead, BufReader as StdBufReader};
    use std::sync::Condvar;

    fn mux_service(config: ServiceConfig) -> Arc<Service> {
        let service = Service::new(config);
        service.registry().insert(synthetic_set("synth"));
        service
    }

    fn spawn_daemon(service: &Arc<Service>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let service = Arc::clone(service);
        let handle = std::thread::spawn(move || serve_mux(&service, listener).expect("serve"));
        (addr, handle)
    }

    fn shutdown_daemon(addr: std::net::SocketAddr, server: std::thread::JoinHandle<()>) {
        let mut ctl = TcpStream::connect(addr).expect("connect ctl");
        writeln!(
            ctl,
            "{}",
            encode_request(&Request::Shutdown { id: 999_999 })
        )
        .expect("send");
        let mut ack = String::new();
        StdBufReader::new(ctl.try_clone().expect("clone"))
            .read_line(&mut ack)
            .expect("ack");
        assert_eq!(
            decode_response(ack.trim()).expect("response"),
            Response::ShuttingDown { id: 999_999 }
        );
        server.join().expect("server exits");
    }

    fn sim_line(id: u64) -> String {
        encode_request(&Request::Sim {
            id,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                seed: id,
                timing: false,
                ..SimRequest::default()
            },
        })
    }

    /// Blocks the service's single worker until the returned guard is
    /// opened, making scheduling deterministic.
    struct Gate(Arc<(Mutex<bool>, Condvar)>);
    impl Gate {
        fn block_pool(service: &Arc<Service>) -> Gate {
            let gate = Arc::new((Mutex::new(false), Condvar::new()));
            {
                let gate = Arc::clone(&gate);
                service.pool_for_tests().execute(move || {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().expect("gate");
                    while !*open {
                        open = cv.wait(open).expect("gate");
                    }
                });
            }
            while service.pool_for_tests().queued() > 0 {
                std::thread::yield_now();
            }
            Gate(gate)
        }

        fn open(&self) {
            let (lock, cv) = &*self.0;
            *lock.lock().expect("gate") = true;
            cv.notify_all();
        }
    }

    #[test]
    fn pipelined_responses_come_back_in_request_order() {
        let service = mux_service(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let gate = Gate::block_pool(&service);
        let (addr, server) = spawn_daemon(&service);
        let mut client = TcpStream::connect(addr).expect("connect");
        // A slow sim, an instant ping, another sim, another ping — all
        // written without awaiting. The ping replies are computed long
        // before the sims finish, yet the wire order must be 1,2,3,4.
        write!(
            client,
            "{}\n{}\n{}\n{}\n",
            sim_line(1),
            encode_request(&Request::Ping { id: 2 }),
            sim_line(3),
            encode_request(&Request::Ping { id: 4 }),
        )
        .expect("send burst");
        std::thread::sleep(Duration::from_millis(100));
        gate.open();
        let reader = StdBufReader::new(client.try_clone().expect("clone"));
        let ids: Vec<Option<u64>> = reader
            .lines()
            .take(4)
            .map(|l| decode_response(&l.expect("read")).expect("response").id())
            .collect();
        assert_eq!(ids, vec![Some(1), Some(2), Some(3), Some(4)]);
        assert!(service.stats().frames_pipelined >= 3, "burst was pipelined");
        shutdown_daemon(addr, server);
    }

    #[test]
    fn admission_budget_rejects_in_order_and_recovers() {
        let service = mux_service(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            admission_budget: 1,
            ..ServiceConfig::default()
        });
        let gate = Gate::block_pool(&service);
        let (addr, server) = spawn_daemon(&service);
        let mut client = TcpStream::connect(addr).expect("connect");
        // Three sims at once against a budget of one: the first is
        // admitted (and parks behind the gate), the other two answer
        // `overloaded` — in order, after the first sim's reply.
        write!(
            client,
            "{}\n{}\n{}\n",
            sim_line(1),
            sim_line(2),
            sim_line(3)
        )
        .expect("send");
        std::thread::sleep(Duration::from_millis(100));
        gate.open();
        let reader = StdBufReader::new(client.try_clone().expect("clone"));
        let responses: Vec<Response> = reader
            .lines()
            .take(3)
            .map(|l| decode_response(&l.expect("read")).expect("response"))
            .collect();
        assert!(
            matches!(responses[0], Response::Sim { id: 1, .. }),
            "{responses:?}"
        );
        for (r, id) in responses[1..].iter().zip([2u64, 3]) {
            assert!(
                matches!(
                    r,
                    Response::Error {
                        id: Some(got),
                        kind: ErrorKind::Overloaded,
                        ..
                    } if *got == id
                ),
                "{responses:?}"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.admission_rejects, 2);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.completed, 1);
        // The budget frees with the responses: a fresh sim is admitted.
        writeln!(client, "{}", sim_line(9)).expect("send");
        let mut line = String::new();
        StdBufReader::new(client.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        assert!(matches!(
            decode_response(line.trim()).expect("response"),
            Response::Sim { id: 9, .. }
        ));
        shutdown_daemon(addr, server);
    }

    #[test]
    fn max_inflight_pauses_reads_and_resumes_losslessly() {
        let service = mux_service(ServiceConfig {
            workers: 1,
            max_inflight: 2,
            ..ServiceConfig::default()
        });
        let gate = Gate::block_pool(&service);
        let (addr, server) = spawn_daemon(&service);
        let mut client = TcpStream::connect(addr).expect("connect");
        // Six frames against a window of two: the reactor dispatches the
        // two sims, pauses the socket, and only resumes as responses
        // flush. Nothing is lost or reordered.
        let mut burst = String::new();
        burst.push_str(&sim_line(1));
        burst.push('\n');
        burst.push_str(&sim_line(2));
        burst.push('\n');
        for id in 3..=6u64 {
            burst.push_str(&encode_request(&Request::Ping { id }));
            burst.push('\n');
        }
        client.write_all(burst.as_bytes()).expect("send burst");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            service.stats().connections_open,
            1,
            "gauge counts the open client"
        );
        gate.open();
        let reader = StdBufReader::new(client.try_clone().expect("clone"));
        let ids: Vec<Option<u64>> = reader
            .lines()
            .take(6)
            .map(|l| decode_response(&l.expect("read")).expect("response").id())
            .collect();
        assert_eq!(ids, (1..=6).map(Some).collect::<Vec<_>>());
        shutdown_daemon(addr, server);
    }

    #[test]
    fn idle_daemon_does_zero_periodic_work() {
        let service = mux_service(ServiceConfig::default());
        let (addr, server) = spawn_daemon(&service);
        // An idle open connection (the old transport's 200 ms read
        // timeout made exactly this case spin).
        let idle = TcpStream::connect(addr).expect("connect idle");
        while service.stats().connections_open == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(50)); // settle accept wakeups
        let was = sigobs::mode();
        sigobs::set_mode(sigobs::ObsMode::Trace);
        let _ = sigobs::drain_chrome_trace();
        let before = WAKEUPS.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(400));
        let after = WAKEUPS.load(Ordering::Relaxed);
        let (spans, _dropped) = sigobs::drain_chrome_trace();
        sigobs::set_mode(was);
        assert_eq!(after - before, 0, "idle reactors must not tick");
        assert!(
            spans.is_empty(),
            "no spans may accumulate on an idle traced daemon: {spans:?}"
        );
        drop(idle);
        shutdown_daemon(addr, server);
    }
}
