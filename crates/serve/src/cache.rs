//! The service's content-keyed LRU caches.
//!
//! * [`CircuitCache`] — repeated requests for the same netlist skip
//!   parsing, validation, NOR mapping and levelization. Keys are
//!   content-derived ([`sigcircuit::content_hash`] over the request's
//!   circuit source, `name:<benchmark>` or `inline:<text>`) prefixed
//!   with the mapping policy and paired with the source length, so two
//!   requests hit the same entry iff they sent the same bytes *and* map
//!   onto the same cell set. Values are `Arc<Circuit>`.
//! * [`ProgramCache`] — warm traffic additionally skips gate validation,
//!   slot resolution and plan-template construction: values are compiled
//!   [`sigsim::CircuitProgram`]s, keyed by the circuit source *plus*
//!   everything else a program bakes in — mapping policy, model-set
//!   preset and library, and the TOM options (see `docs/protocol.md`
//!   § Program cache).
//!
//! Both caches share one engine: per-key build locks (concurrent misses
//! on one key build once while other keys proceed), LRU eviction, and
//! exact hit/miss counters under any client interleaving.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sigcircuit::{Circuit, ContentHasher, MappingPolicy};
use sigsim::CircuitProgram;
use sigtom::TomOptions;

use crate::protocol::CircuitSource;

/// Time a request spends blocked on another request building the same
/// cache key (the per-key build lock in [`KeyedLru::get_or_insert`]).
/// Near-zero on warm traffic; spikes reveal thundering-herd compiles.
static BUILD_LOCK_WAIT: sigobs::Hist = sigobs::Hist::new("cache.lock_wait");

/// A content-derived cache key: FNV-1a hash of the key material plus its
/// length (the length guards against accidental 64-bit collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hash: u64,
    len: usize,
}

impl CacheKey {
    /// The key of a request's circuit source under a mapping policy.
    /// The material is streamed through one [`ContentHasher`] (policy
    /// prefix + source) — no intermediate buffer, since this runs on
    /// every request including warm hits and inline netlists can be
    /// megabytes.
    #[must_use]
    pub fn of(source: &CircuitSource, policy: MappingPolicy) -> Self {
        let mut h = ContentHasher::new();
        h.update(policy.as_str().as_bytes());
        h.update(b";");
        hash_source(&mut h, source);
        Self {
            hash: h.finish(),
            len: h.written(),
        }
    }

    /// The key of a compiled program, derived from the *already-computed*
    /// circuit key (hash + length — the policy-tagged source fingerprint)
    /// plus the model-set coordinates, the TOM options the program bakes
    /// in, and the **identity of the resident cell-model allocation**.
    /// Deriving from the circuit key instead of re-streaming the source
    /// text keeps the warm path at **one** full-source hash per request —
    /// inline netlists can be megabytes, and hashing them twice would
    /// hand back much of the compile-skip win.
    ///
    /// The cells identity (the `Arc` pointer) guards against serving a
    /// stale program after an embedder re-registers a `(preset, library)`
    /// key with different models: a new set is a new allocation, so the
    /// derived key changes. The identity is sound key material precisely
    /// because a cached program holds an `Arc` to its cells — the old
    /// allocation cannot be freed (and its address reused) while any
    /// cache entry still refers to it.
    #[must_use]
    pub fn for_program(
        circuit: CacheKey,
        cells: &Arc<sigsim::CellModels>,
        preset: &str,
        library: &str,
        options: TomOptions,
    ) -> Self {
        let mut h = ContentHasher::new();
        h.update(&circuit.hash.to_le_bytes());
        h.update(&(circuit.len as u64).to_le_bytes());
        h.update(&(Arc::as_ptr(cells) as usize as u64).to_le_bytes());
        h.update(preset.as_bytes());
        h.update(b";");
        h.update(library.as_bytes());
        h.update(b";");
        h.update(&options.vdd.to_bits().to_le_bytes());
        h.update(&[u8::from(options.cancel_subthreshold)]);
        Self {
            hash: h.finish(),
            len: h.written(),
        }
    }
}

/// Streams a circuit source's key material into a hasher: a tag prefix
/// plus the source text, so a name and an inline body spelling the same
/// bytes never collide. This is the single definition of the source key
/// encoding.
fn hash_source(h: &mut ContentHasher, source: &CircuitSource) {
    match source {
        CircuitSource::Name(n) => {
            h.update(b"name:");
            h.update(n.as_bytes());
        }
        CircuitSource::Inline(t) => {
            h.update(b"inline:");
            h.update(t.as_bytes());
        }
    }
}

/// A per-key slot: the slot mutex serializes building of *one* key, so
/// concurrent misses on the same key build once while hits (and builds)
/// of other keys proceed untouched — the same pattern as the model
/// registry's per-name locks.
#[derive(Debug)]
struct Slot<V> {
    built: Mutex<Option<Arc<V>>>,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Self {
            built: Mutex::new(None),
        }
    }
}

/// The shared cache engine: a bounded LRU map from [`CacheKey`] to
/// `Arc<V>` with per-key build locks and exact counters.
///
/// The outer map lock is held only for slot lookup and LRU bookkeeping
/// (microseconds); a miss builds under its own key's slot lock, so one
/// slow build never stalls warm requests for other keys. Hit/miss totals
/// stay deterministic for any client interleaving (racing misses on one
/// key: the first builds and counts the miss, the rest wait on the slot
/// and count hits).
#[derive(Debug)]
struct KeyedLru<V> {
    inner: Mutex<LruInner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct LruInner<V> {
    map: HashMap<CacheKey, (Arc<Slot<V>>, u64)>,
    tick: u64,
}

impl<V> std::fmt::Debug for LruInner<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruInner")
            .field("entries", &self.map.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl<V> KeyedLru<V> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_insert<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, bool), E> {
        let slot = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((slot, last_used)) = inner.map.get_mut(&key) {
                *last_used = tick;
                Arc::clone(slot)
            } else {
                if inner.map.len() >= self.capacity {
                    // Evict the least recently used entry (linear scan:
                    // the cache holds tens of entries, not thousands).
                    // An in-flight build of the evicted key keeps its own
                    // slot Arc and completes unaffected.
                    if let Some(&lru) = inner
                        .map
                        .iter()
                        .min_by_key(|(_, (_, last_used))| *last_used)
                        .map(|(k, _)| k)
                    {
                        inner.map.remove(&lru);
                    }
                }
                let slot = Arc::new(Slot::default());
                inner.map.insert(key, (Arc::clone(&slot), tick));
                slot
            }
        };
        let sw = sigobs::stopwatch();
        let mut built = slot.built.lock().expect("cache slot poisoned");
        sw.observe_span(&BUILD_LOCK_WAIT, "cache.lock_wait");
        if let Some(value) = &*built {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(value), true));
        }
        match build() {
            Ok(value) => {
                let value = Arc::new(value);
                *built = Some(Arc::clone(&value));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((value, false))
            }
            Err(e) => {
                // Drop the empty slot so failures are not cached and
                // `entries()` keeps counting only built values.
                let mut inner = self.inner.lock().expect("cache poisoned");
                if let Some((resident, _)) = inner.map.get(&key) {
                    if Arc::ptr_eq(resident, &slot) {
                        inner.map.remove(&key);
                    }
                }
                Err(e)
            }
        }
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entries(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }
}

/// A bounded LRU map from circuit sources to parsed circuits.
#[derive(Debug)]
pub struct CircuitCache {
    lru: KeyedLru<Circuit>,
}

impl CircuitCache {
    /// A cache holding at most `capacity` circuits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            lru: KeyedLru::new(capacity),
        }
    }

    /// Looks up the source; on a miss, runs `build` and caches its
    /// result. Returns the circuit and whether this was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error (nothing is cached then — a bad netlist
    /// is re-reported, not re-parsed into the same failure forever; error
    /// paths are not the hot path).
    pub fn get_or_insert<E>(
        &self,
        source: &CircuitSource,
        policy: MappingPolicy,
        build: impl FnOnce() -> Result<Circuit, E>,
    ) -> Result<(Arc<Circuit>, bool), E> {
        self.get_or_insert_keyed(CacheKey::of(source, policy), build)
    }

    /// Like [`CircuitCache::get_or_insert`] with an already-computed key
    /// — the service computes each request's circuit key once and shares
    /// it with the program-cache key derivation.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; failures are never cached.
    pub fn get_or_insert_keyed<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Circuit, E>,
    ) -> Result<(Arc<Circuit>, bool), E> {
        self.lru.get_or_insert(key, build)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Cache misses (builds) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// Circuits currently resident.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.lru.entries()
    }
}

/// A bounded LRU map from `(circuit source, policy, preset, library,
/// options)` to compiled [`CircuitProgram`]s — the compile-once /
/// execute-many half of the service's warm path. A program hit means the
/// request pays **no** parsing, mapping, validation, slot resolution or
/// planning: the worker binds stimuli to resident tables and runs.
#[derive(Debug)]
pub struct ProgramCache {
    lru: KeyedLru<CircuitProgram>,
}

impl ProgramCache {
    /// A cache holding at most `capacity` compiled programs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            lru: KeyedLru::new(capacity),
        }
    }

    /// Looks up a program by its derived key ([`CacheKey::for_program`]);
    /// on a miss, runs `build` (typically [`CircuitProgram::compile`]
    /// over the already-resolved circuit and cells) and caches the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; failures are never cached.
    pub fn get_or_insert<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<CircuitProgram, E>,
    ) -> Result<(Arc<CircuitProgram>, bool), E> {
        self.lru.get_or_insert(key, build)
    }

    /// Program-cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lru.hits()
    }

    /// Program-cache misses (compiles) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lru.misses()
    }

    /// Programs currently resident.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.lru.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::{CircuitBuilder, GateKind};

    fn circuit(tag: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::Nor, &[a], &format!("y{tag}"));
        b.mark_output(y);
        b.build().unwrap()
    }

    const POLICY: MappingPolicy = MappingPolicy::NorOnly;

    fn name(n: &str) -> CircuitSource {
        CircuitSource::Name(n.to_string())
    }

    #[test]
    fn hit_returns_shared_arc_and_counts() {
        let cache = CircuitCache::new(4);
        let (a, hit_a) = cache
            .get_or_insert::<()>(&name("x"), POLICY, || Ok(circuit(0)))
            .unwrap();
        let (b, hit_b) = cache
            .get_or_insert::<()>(&name("x"), POLICY, || panic!("must not rebuild"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let cache = CircuitCache::new(4);
        cache
            .get_or_insert::<()>(&name("x"), POLICY, || Ok(circuit(0)))
            .unwrap();
        // An inline source spelling the same bytes as a name must still
        // be a different key (tag prefix).
        let (_, hit) = cache
            .get_or_insert::<()>(&CircuitSource::Inline("x".into()), POLICY, || {
                Ok(circuit(1))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn policies_do_not_share_entries() {
        // The same source under the two policies maps to two different
        // circuits, so the keys must differ.
        let cache = CircuitCache::new(4);
        cache
            .get_or_insert::<()>(&name("x"), MappingPolicy::NorOnly, || Ok(circuit(0)))
            .unwrap();
        let (_, hit) = cache
            .get_or_insert::<()>(&name("x"), MappingPolicy::Native, || Ok(circuit(1)))
            .unwrap();
        assert!(!hit, "native form must be built separately");
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = CircuitCache::new(2);
        cache
            .get_or_insert::<()>(&name("a"), POLICY, || Ok(circuit(0)))
            .unwrap();
        cache
            .get_or_insert::<()>(&name("b"), POLICY, || Ok(circuit(1)))
            .unwrap();
        // Touch `a` so `b` is the LRU, then insert `c`.
        cache
            .get_or_insert::<()>(&name("a"), POLICY, || panic!("hit expected"))
            .unwrap();
        cache
            .get_or_insert::<()>(&name("c"), POLICY, || Ok(circuit(2)))
            .unwrap();
        assert_eq!(cache.entries(), 2);
        let (_, hit_a) = cache
            .get_or_insert::<()>(&name("a"), POLICY, || Ok(circuit(0)))
            .unwrap();
        assert!(hit_a, "recently used entry survived eviction");
        let (_, hit_b) = cache
            .get_or_insert::<()>(&name("b"), POLICY, || Ok(circuit(1)))
            .unwrap();
        assert!(!hit_b, "LRU entry was evicted");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = CircuitCache::new(2);
        let r = cache.get_or_insert::<&str>(&name("bad"), POLICY, || Err("nope"));
        assert_eq!(r.unwrap_err(), "nope");
        assert_eq!(cache.entries(), 0);
        // A later good build for the same key works.
        let (_, hit) = cache
            .get_or_insert::<()>(&name("bad"), POLICY, || Ok(circuit(0)))
            .unwrap();
        assert!(!hit);
    }

    fn test_cells() -> Arc<sigsim::CellModels> {
        use sigtom::{GateModel, TransferFunction, TransferPrediction, TransferQuery};
        struct Fixed;
        impl TransferFunction for Fixed {
            fn predict(&self, q: TransferQuery) -> TransferPrediction {
                TransferPrediction {
                    a_out: -q.a_in.signum() * 14.0,
                    delay: 0.05,
                }
            }
            fn backend_name(&self) -> &'static str {
                "fixed"
            }
        }
        Arc::new(sigsim::CellModels::nor_only(&sigsim::GateModels::uniform(
            GateModel::new(Arc::new(Fixed)),
        )))
    }

    fn compile(tag: usize, cells: &Arc<sigsim::CellModels>) -> CircuitProgram {
        CircuitProgram::compile(
            Arc::new(circuit(tag)),
            Arc::clone(cells),
            TomOptions::default(),
        )
        .expect("NOR-only circuit compiles")
    }

    #[test]
    fn program_cache_hits_share_the_compiled_program() {
        let cache = ProgramCache::new(4);
        let opts = TomOptions::default();
        let cells = test_cells();
        let key = CacheKey::for_program(
            CacheKey::of(&name("x"), POLICY),
            &cells,
            "ci",
            "nor-only",
            opts,
        );
        let (a, hit_a) = cache
            .get_or_insert::<()>(key, || Ok(compile(0, &cells)))
            .unwrap();
        let (b, hit_b) = cache
            .get_or_insert::<()>(key, || panic!("must not recompile"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "one compiled program is shared");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn program_keys_separate_circuit_model_set_and_options() {
        // The same circuit under a different preset, library, TOM options
        // or cell-model allocation — or a different circuit under the
        // same set — derives a different program key.
        let cache = ProgramCache::new(8);
        let opts = TomOptions::default();
        let cells = test_cells();
        let circuit_key = CacheKey::of(&name("x"), POLICY);
        let base = CacheKey::for_program(circuit_key, &cells, "ci", "nor-only", opts);
        cache
            .get_or_insert::<()>(base, || Ok(compile(0, &cells)))
            .unwrap();
        let variants = [
            CacheKey::for_program(circuit_key, &cells, "fast", "nor-only", opts),
            CacheKey::for_program(circuit_key, &cells, "ci", "native", opts),
            CacheKey::for_program(
                circuit_key,
                &cells,
                "ci",
                "nor-only",
                TomOptions {
                    cancel_subthreshold: false,
                    ..opts
                },
            ),
            CacheKey::for_program(
                CacheKey::of(&name("y"), POLICY),
                &cells,
                "ci",
                "nor-only",
                opts,
            ),
            // A re-registered model set is a fresh CellModels allocation:
            // its identity changes the key, so stale compiled programs
            // can never be served after an embedder swaps a set.
            CacheKey::for_program(circuit_key, &test_cells(), "ci", "nor-only", opts),
        ];
        for (i, key) in variants.into_iter().enumerate() {
            assert_ne!(key, base, "variant {i} must derive a distinct key");
            let (_, hit) = cache
                .get_or_insert::<()>(key, || Ok(compile(0, &cells)))
                .unwrap();
            assert!(!hit, "variant {i} must be its own program");
        }
        assert_eq!(cache.entries(), 6);
        assert_eq!(cache.misses(), 6);
    }
}
