//! The LRU circuit cache: repeated requests for the same netlist skip
//! parsing, validation, NOR mapping and levelization.
//!
//! Keys are content-derived — [`sigcircuit::content_hash`] over the
//! request's circuit source (`name:<benchmark>` or `inline:<text>`)
//! prefixed with the mapping policy and paired with the source length,
//! so two requests hit the same entry iff they sent the same bytes *and*
//! map onto the same cell set (the NOR-only and native forms of one
//! netlist are different circuits). Values are `Arc<Circuit>`: the
//! parsed, validated, mapped netlist with its build-time `topo`/`levels`
//! schedules, shared by every concurrent simulation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sigcircuit::{Circuit, MappingPolicy};

use crate::protocol::CircuitSource;

/// A cache key: FNV-1a hash of the policy-tagged source plus its length
/// (the length guards against accidental 64-bit collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hash: u64,
    len: usize,
}

impl CacheKey {
    /// The key of a request's circuit source under a mapping policy.
    /// One buffer is built per call (policy prefix + source, via
    /// [`CircuitSource::write_key_bytes`]) — no intermediate copy, since
    /// this runs on every request including warm hits.
    #[must_use]
    pub fn of(source: &CircuitSource, policy: MappingPolicy) -> Self {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(policy.as_str().as_bytes());
        bytes.push(b';');
        source.write_key_bytes(&mut bytes);
        Self {
            hash: sigcircuit::content_hash(&bytes),
            len: bytes.len(),
        }
    }
}

/// A per-key slot: the slot mutex serializes building of *one* key, so
/// concurrent misses on the same netlist parse once while hits (and
/// builds) of other keys proceed untouched — the same pattern as the
/// model registry's per-name locks.
#[derive(Debug, Default)]
struct Slot {
    built: Mutex<Option<Arc<Circuit>>>,
}

/// A bounded LRU map from [`CacheKey`] to parsed circuits.
///
/// The outer map lock is held only for slot lookup and LRU bookkeeping
/// (microseconds); a miss builds under its own key's slot lock, so one
/// slow inline-netlist parse never stalls warm requests for other
/// circuits. Hit/miss totals stay deterministic for any client
/// interleaving (racing misses on one key: the first builds and counts
/// the miss, the rest wait on the slot and count hits).
#[derive(Debug)]
pub struct CircuitCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheInner {
    map: HashMap<CacheKey, (Arc<Slot>, u64)>,
    tick: u64,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("entries", &self.map.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl CircuitCache {
    /// A cache holding at most `capacity` circuits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up the source; on a miss, runs `build` and caches its
    /// result. Returns the circuit and whether this was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error (nothing is cached then — a bad netlist
    /// is re-reported, not re-parsed into the same failure forever; error
    /// paths are not the hot path).
    pub fn get_or_insert<E>(
        &self,
        source: &CircuitSource,
        policy: MappingPolicy,
        build: impl FnOnce() -> Result<Circuit, E>,
    ) -> Result<(Arc<Circuit>, bool), E> {
        let key = CacheKey::of(source, policy);
        let slot = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((slot, last_used)) = inner.map.get_mut(&key) {
                *last_used = tick;
                Arc::clone(slot)
            } else {
                if inner.map.len() >= self.capacity {
                    // Evict the least recently used entry (linear scan:
                    // the cache holds tens of circuits, not thousands).
                    // An in-flight build of the evicted key keeps its own
                    // slot Arc and completes unaffected.
                    if let Some(&lru) = inner
                        .map
                        .iter()
                        .min_by_key(|(_, (_, last_used))| *last_used)
                        .map(|(k, _)| k)
                    {
                        inner.map.remove(&lru);
                    }
                }
                let slot = Arc::new(Slot::default());
                inner.map.insert(key, (Arc::clone(&slot), tick));
                slot
            }
        };
        let mut built = slot.built.lock().expect("cache slot poisoned");
        if let Some(circuit) = &*built {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(circuit), true));
        }
        match build() {
            Ok(circuit) => {
                let circuit = Arc::new(circuit);
                *built = Some(Arc::clone(&circuit));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((circuit, false))
            }
            Err(e) => {
                // Drop the empty slot so failures are not cached and
                // `entries()` keeps counting only built circuits.
                let mut inner = self.inner.lock().expect("cache poisoned");
                if let Some((resident, _)) = inner.map.get(&key) {
                    if Arc::ptr_eq(resident, &slot) {
                        inner.map.remove(&key);
                    }
                }
                Err(e)
            }
        }
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (builds) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Circuits currently resident.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcircuit::{CircuitBuilder, GateKind};

    fn circuit(tag: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.add_input("a");
        let y = b.add_gate(GateKind::Nor, &[a], &format!("y{tag}"));
        b.mark_output(y);
        b.build().unwrap()
    }

    const POLICY: MappingPolicy = MappingPolicy::NorOnly;

    fn name(n: &str) -> CircuitSource {
        CircuitSource::Name(n.to_string())
    }

    #[test]
    fn hit_returns_shared_arc_and_counts() {
        let cache = CircuitCache::new(4);
        let (a, hit_a) = cache
            .get_or_insert::<()>(&name("x"), POLICY, || Ok(circuit(0)))
            .unwrap();
        let (b, hit_b) = cache
            .get_or_insert::<()>(&name("x"), POLICY, || panic!("must not rebuild"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let cache = CircuitCache::new(4);
        cache
            .get_or_insert::<()>(&name("x"), POLICY, || Ok(circuit(0)))
            .unwrap();
        // An inline source spelling the same bytes as a name must still
        // be a different key (tag prefix).
        let (_, hit) = cache
            .get_or_insert::<()>(&CircuitSource::Inline("x".into()), POLICY, || {
                Ok(circuit(1))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn policies_do_not_share_entries() {
        // The same source under the two policies maps to two different
        // circuits, so the keys must differ.
        let cache = CircuitCache::new(4);
        cache
            .get_or_insert::<()>(&name("x"), MappingPolicy::NorOnly, || Ok(circuit(0)))
            .unwrap();
        let (_, hit) = cache
            .get_or_insert::<()>(&name("x"), MappingPolicy::Native, || Ok(circuit(1)))
            .unwrap();
        assert!(!hit, "native form must be built separately");
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = CircuitCache::new(2);
        cache
            .get_or_insert::<()>(&name("a"), POLICY, || Ok(circuit(0)))
            .unwrap();
        cache
            .get_or_insert::<()>(&name("b"), POLICY, || Ok(circuit(1)))
            .unwrap();
        // Touch `a` so `b` is the LRU, then insert `c`.
        cache
            .get_or_insert::<()>(&name("a"), POLICY, || panic!("hit expected"))
            .unwrap();
        cache
            .get_or_insert::<()>(&name("c"), POLICY, || Ok(circuit(2)))
            .unwrap();
        assert_eq!(cache.entries(), 2);
        let (_, hit_a) = cache
            .get_or_insert::<()>(&name("a"), POLICY, || Ok(circuit(0)))
            .unwrap();
        assert!(hit_a, "recently used entry survived eviction");
        let (_, hit_b) = cache
            .get_or_insert::<()>(&name("b"), POLICY, || Ok(circuit(1)))
            .unwrap();
        assert!(!hit_b, "LRU entry was evicted");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = CircuitCache::new(2);
        let r = cache.get_or_insert::<&str>(&name("bad"), POLICY, || Err("nope"));
        assert_eq!(r.unwrap_err(), "nope");
        assert_eq!(cache.entries(), 0);
        // A later good build for the same key works.
        let (_, hit) = cache
            .get_or_insert::<()>(&name("bad"), POLICY, || Ok(circuit(0)))
            .unwrap();
        assert!(!hit);
    }
}
