//! `sigrouter` — shared-nothing horizontal scale-out for `sigserve`.
//!
//! The router consistent-hashes every request's **circuit fingerprint**
//! across N shard daemons, so each shard's circuit/program caches stay
//! hot and disjoint: a given circuit always lands on the same shard,
//! and adding a shard only moves `1/(n+1)` of the key space (Lamport's
//! jump consistent hash over an FNV-1a key).
//!
//! Data-plane frames (`sim`, `sim.batch`, session ops) are forwarded
//! **byte-for-byte**: the router decodes only enough to route, then
//! writes the original line upstream, so shard responses — already
//! byte-identical to `sigctl golden` — pass through unchanged. Each
//! client connection gets its own lazily-opened upstream connection per
//! shard (sessions stay scoped to the client exactly as on a direct
//! connection); `session.open` pins its session id to the shard that
//! holds the circuit, and later deltas/closes follow the pin.
//!
//! Control-plane frames are handled by the router itself: `ping`
//! answers locally, `stats` fans out and aggregates (counters sum,
//! quantiles take the worst shard, model sets union), `trace`
//! concatenates every shard's spans, and `shutdown` shuts every shard
//! down before acknowledging and exiting.
//!
//! Response ordering: each upstream connection preserves the shard's
//! in-order pipelining guarantee, but responses from *different* shards
//! interleave at the client — correlate by id, exactly like against the
//! blocking transport.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, salvage_id, CircuitSource,
    ErrorKind, FrameReader, Request, Response, StatsReply, TraceSpan, MAX_FRAME_BYTES,
};

/// FNV-1a 64-bit over the circuit source: the routing key. Named and
/// inline sources hash their distinguishing bytes, so the same inline
/// netlist always routes to the same shard.
#[must_use]
pub fn circuit_key(source: &CircuitSource) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    match source {
        CircuitSource::Name(n) => {
            eat(b"name:");
            eat(n.as_bytes());
        }
        CircuitSource::Inline(t) => {
            eat(b"inline:");
            eat(t.as_bytes());
        }
    }
    hash
}

/// Lamport's jump consistent hash: maps `key` to a bucket in
/// `0..buckets` such that growing the bucket count only reassigns the
/// keys that move to the new bucket.
#[must_use]
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump_hash needs at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let r = ((key >> 33).wrapping_add(1)) as f64;
        j = (((b.wrapping_add(1)) as f64) * ((1u64 << 31) as f64 / r)) as i64;
    }
    #[allow(clippy::cast_sign_loss)]
    {
        b as u32
    }
}

/// The shard a circuit routes to among `shards` backends.
#[must_use]
pub fn route(source: &CircuitSource, shards: usize) -> usize {
    jump_hash(
        circuit_key(source),
        u32::try_from(shards.max(1)).unwrap_or(u32::MAX),
    ) as usize
}

/// Aggregates shard stats into one reply: counters and capacities sum,
/// latency quantiles report the worst shard (a conservative fleet-wide
/// bound), model sets union, and the string fields echo the first
/// shard (shards are expected to run the same build).
#[must_use]
pub fn aggregate_stats(shards: &[StatsReply]) -> StatsReply {
    let mut total = StatsReply::default();
    let mut sets: Vec<String> = Vec::new();
    for (i, s) in shards.iter().enumerate() {
        sets.extend(s.model_sets.iter().cloned());
        total.model_loads += s.model_loads;
        total.model_requests += s.model_requests;
        total.cache_hits += s.cache_hits;
        total.cache_misses += s.cache_misses;
        total.cache_entries += s.cache_entries;
        total.program_hits += s.program_hits;
        total.program_misses += s.program_misses;
        total.program_entries += s.program_entries;
        total.workers += s.workers;
        total.queue_capacity += s.queue_capacity;
        total.completed += s.completed;
        total.rejected += s.rejected;
        total.sessions_open += s.sessions_open;
        total.delta_hits += s.delta_hits;
        total.gates_reeval += s.gates_reeval;
        total.fleet_runs += s.fleet_runs;
        total.fleet_rows += s.fleet_rows;
        total.connections_open += s.connections_open;
        total.frames_pipelined += s.frames_pipelined;
        total.admission_rejects += s.admission_rejects;
        total.sim_p50_s = total.sim_p50_s.max(s.sim_p50_s);
        total.sim_p99_s = total.sim_p99_s.max(s.sim_p99_s);
        total.batch_p50_s = total.batch_p50_s.max(s.batch_p50_s);
        total.batch_p99_s = total.batch_p99_s.max(s.batch_p99_s);
        total.delta_p50_s = total.delta_p50_s.max(s.delta_p50_s);
        total.delta_p99_s = total.delta_p99_s.max(s.delta_p99_s);
        total.queue_p50_s = total.queue_p50_s.max(s.queue_p50_s);
        total.queue_p99_s = total.queue_p99_s.max(s.queue_p99_s);
        if i == 0 {
            total.simd_level = s.simd_level.clone();
            total.obs_mode = s.obs_mode.clone();
        }
    }
    sets.sort_unstable();
    sets.dedup();
    total.model_sets = sets;
    total
}

/// Router-local unique ids for control-plane fan-out frames (the id
/// space on an upstream control connection is private to that
/// connection, but distinct ids keep logs readable).
static CONTROL_ID: AtomicU64 = AtomicU64::new(1);

/// One control-plane round trip on a fresh connection to `addr`.
fn control_roundtrip(addr: &str, request: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    writeln!(stream, "{}", encode_request(request))?;
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed before responding",
            ));
        }
        match decode_response(line.trim_end()) {
            Ok(r) if r.id() == Some(request.id()) => return Ok(r),
            Ok(_) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable shard response: {e}"),
                ))
            }
        }
    }
}

/// Writes one locally-generated response frame to the client.
fn respond_local(writer: &Mutex<TcpStream>, response: &Response) {
    let line = encode_response(response);
    let mut w = writer.lock().expect("client writer poisoned");
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Per-client routing state: one lazily-opened upstream connection per
/// shard plus the session→shard pins.
struct ClientRoutes {
    shards: Arc<Vec<String>>,
    upstreams: Vec<Option<TcpStream>>,
    forwarders: Vec<std::thread::JoinHandle<()>>,
    session_shard: HashMap<u64, usize>,
}

impl ClientRoutes {
    fn new(shards: Arc<Vec<String>>) -> Self {
        let n = shards.len();
        ClientRoutes {
            shards,
            upstreams: (0..n).map(|_| None).collect(),
            forwarders: Vec::new(),
            session_shard: HashMap::new(),
        }
    }

    /// The upstream connection for `shard`, opening it (and its
    /// response forwarder) on first use.
    fn upstream(
        &mut self,
        shard: usize,
        client: &Arc<Mutex<TcpStream>>,
    ) -> std::io::Result<&mut TcpStream> {
        if self.upstreams[shard].is_none() {
            let stream = TcpStream::connect(&self.shards[shard])?;
            let reader = BufReader::new(stream.try_clone()?);
            let client = Arc::clone(client);
            // Forward every shard response line to the client verbatim.
            self.forwarders.push(std::thread::spawn(move || {
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let mut w = client.lock().expect("client writer poisoned");
                    if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
                        break;
                    }
                }
            }));
            self.upstreams[shard] = Some(stream);
        }
        Ok(self.upstreams[shard].as_mut().expect("just opened"))
    }

    /// Forwards the client's original frame bytes to `shard`.
    fn forward(
        &mut self,
        shard: usize,
        line: &str,
        client: &Arc<Mutex<TcpStream>>,
    ) -> std::io::Result<()> {
        let upstream = self.upstream(shard, client)?;
        writeln!(upstream, "{line}")?;
        upstream.flush()
    }

    /// Disconnects every upstream (unblocking the forwarders) and joins
    /// them so no forwarder outlives its client.
    fn teardown(mut self) {
        for upstream in self.upstreams.iter().flatten() {
            let _ = upstream.shutdown(std::net::Shutdown::Both);
        }
        self.upstreams.clear();
        for f in self.forwarders.drain(..) {
            let _ = f.join();
        }
    }
}

fn forward_error(id: Option<u64>, shard: usize, e: &std::io::Error) -> Response {
    Response::Error {
        id,
        kind: ErrorKind::Simulation,
        message: format!("shard {shard} unreachable: {e}"),
    }
}

/// Drives one client connection: routes data-plane frames, answers
/// control-plane frames. Returns `true` when the client requested a
/// fleet-wide shutdown.
fn run_client(stream: TcpStream, shards: &Arc<Vec<String>>, stop: &AtomicBool) -> bool {
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return false;
    }
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut frames = FrameReader::new(BufReader::new(read_half), MAX_FRAME_BYTES);
    let mut routes = ClientRoutes::new(Arc::clone(shards));
    let mut shutdown = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match frames.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let line = match frame {
            Ok(line) => line,
            Err(e) => {
                respond_local(&writer, &e.to_response(None));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode_request(&line) {
            Ok(r) => r,
            Err(e) => {
                respond_local(&writer, &e.to_response(salvage_id(&line)));
                continue;
            }
        };
        match request {
            Request::Ping { id } => respond_local(&writer, &Response::Pong { id }),
            Request::Stats { id } => {
                let mut replies = Vec::new();
                let mut failed = None;
                for (shard, addr) in shards.iter().enumerate() {
                    let probe = Request::Stats {
                        id: CONTROL_ID.fetch_add(1, Ordering::Relaxed),
                    };
                    match control_roundtrip(addr, &probe) {
                        Ok(Response::Stats { stats, .. }) => replies.push(stats),
                        Ok(other) => {
                            failed = Some(format!("shard {shard} answered {other:?}"));
                            break;
                        }
                        Err(e) => {
                            failed = Some(format!("shard {shard} unreachable: {e}"));
                            break;
                        }
                    }
                }
                match failed {
                    None => respond_local(
                        &writer,
                        &Response::Stats {
                            id,
                            stats: aggregate_stats(&replies),
                        },
                    ),
                    Some(message) => respond_local(
                        &writer,
                        &Response::Error {
                            id: Some(id),
                            kind: ErrorKind::Simulation,
                            message,
                        },
                    ),
                }
            }
            Request::Trace { id } => {
                let mut spans: Vec<TraceSpan> = Vec::new();
                let mut dropped = 0;
                for addr in shards.iter() {
                    let probe = Request::Trace {
                        id: CONTROL_ID.fetch_add(1, Ordering::Relaxed),
                    };
                    if let Ok(Response::Trace {
                        spans: s,
                        dropped: d,
                        ..
                    }) = control_roundtrip(addr, &probe)
                    {
                        spans.extend(s);
                        dropped += d;
                    }
                }
                respond_local(&writer, &Response::Trace { id, spans, dropped });
            }
            Request::Shutdown { id } => {
                // Shut every shard down (each drains first), then ack
                // and bring the router itself down.
                for addr in shards.iter() {
                    let probe = Request::Shutdown {
                        id: CONTROL_ID.fetch_add(1, Ordering::Relaxed),
                    };
                    let _ = control_roundtrip(addr, &probe);
                }
                respond_local(&writer, &Response::ShuttingDown { id });
                shutdown = true;
                break;
            }
            Request::Sim { id, ref sim } | Request::SimBatch { id, ref sim, .. } => {
                let shard = route(&sim.circuit, shards.len());
                if let Err(e) = routes.forward(shard, &line, &writer) {
                    respond_local(&writer, &forward_error(Some(id), shard, &e));
                }
            }
            Request::SessionOpen {
                id,
                ref sim,
                session,
            } => {
                let shard = route(&sim.circuit, shards.len());
                routes.session_shard.insert(session, shard);
                if let Err(e) = routes.forward(shard, &line, &writer) {
                    routes.session_shard.remove(&session);
                    respond_local(&writer, &forward_error(Some(id), shard, &e));
                }
            }
            Request::SessionDelta { id, session, .. } => {
                match routes.session_shard.get(&session).copied() {
                    Some(shard) => {
                        if let Err(e) = routes.forward(shard, &line, &writer) {
                            respond_local(&writer, &forward_error(Some(id), shard, &e));
                        }
                    }
                    None => respond_local(
                        &writer,
                        &Response::Error {
                            id: Some(id),
                            kind: ErrorKind::UnknownSession,
                            message: format!("session {session} is not open on this connection"),
                        },
                    ),
                }
            }
            Request::SessionClose { id, session } => match routes.session_shard.remove(&session) {
                Some(shard) => {
                    if let Err(e) = routes.forward(shard, &line, &writer) {
                        respond_local(&writer, &forward_error(Some(id), shard, &e));
                    }
                }
                None => respond_local(
                    &writer,
                    &Response::Error {
                        id: Some(id),
                        kind: ErrorKind::UnknownSession,
                        message: format!("session {session} is not open on this connection"),
                    },
                ),
            },
        }
    }
    routes.teardown();
    shutdown
}

/// Serves the router on a bound listener until a client requests
/// shutdown (which is forwarded to every shard first). One thread per
/// client connection — the router does no simulation work and holds no
/// caches, so thread-per-connection is plenty; the daemons behind it
/// run the epoll transport.
///
/// # Errors
///
/// Returns the I/O error that broke the accept loop, if any.
pub fn serve_router(listener: TcpListener, shards: Vec<String>) -> std::io::Result<()> {
    assert!(!shards.is_empty(), "router needs at least one shard");
    listener.set_nonblocking(true)?;
    let shards = Arc::new(shards);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shards = Arc::clone(&shards);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    if run_client(stream, &shards, &stop) {
                        stop.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_stable_in_range_and_consistent() {
        for key in 0..10_000u64 {
            let b4 = jump_hash(key, 4);
            assert!(b4 < 4);
            assert_eq!(b4, jump_hash(key, 4), "deterministic");
            // Consistency: growing 4 → 5 buckets either keeps the
            // bucket or moves the key to the new bucket only.
            let b5 = jump_hash(key, 5);
            assert!(b5 == b4 || b5 == 4, "key {key} moved {b4} -> {b5}");
        }
        // The fraction that moves is about 1/5.
        let moved = (0..10_000u64)
            .filter(|&k| jump_hash(k, 5) != jump_hash(k, 4))
            .count();
        assert!((1_000..3_000).contains(&moved), "moved {moved}/10000");
    }

    #[test]
    fn benchmark_circuits_split_across_two_shards() {
        // The CI router e2e relies on the three built-in benchmarks not
        // all hashing to one shard of two — pin that here.
        let shards: Vec<usize> = ["c17", "c499", "c1355"]
            .iter()
            .map(|n| route(&CircuitSource::Name((*n).to_string()), 2))
            .collect();
        assert!(
            shards.contains(&0) && shards.contains(&1),
            "benchmarks all routed to one shard: {shards:?}"
        );
        // Inline text routes by content, names by name.
        let a = CircuitSource::Inline("INPUT(a)\nOUTPUT(y)\ny = NOR(a)\n".into());
        let b = CircuitSource::Inline("INPUT(b)\nOUTPUT(y)\ny = NOR(b)\n".into());
        assert_eq!(route(&a, 7), route(&a, 7));
        assert_ne!(circuit_key(&a), circuit_key(&b));
    }

    #[test]
    fn stats_aggregation_sums_counters_and_takes_worst_quantiles() {
        let a = StatsReply {
            model_sets: vec!["ci/nor-only".into()],
            completed: 10,
            cache_entries: 2,
            sim_p99_s: 0.5,
            simd_level: "avx2".into(),
            obs_mode: "counters".into(),
            ..StatsReply::default()
        };
        let b = StatsReply {
            model_sets: vec!["ci/nor-only".into(), "ci/native".into()],
            completed: 5,
            cache_entries: 1,
            sim_p99_s: 0.25,
            simd_level: "avx2".into(),
            obs_mode: "counters".into(),
            ..StatsReply::default()
        };
        let total = aggregate_stats(&[a, b]);
        assert_eq!(total.completed, 15);
        assert_eq!(total.cache_entries, 3);
        assert_eq!(total.sim_p99_s, 0.5);
        assert_eq!(
            total.model_sets,
            vec!["ci/native".to_string(), "ci/nor-only".to_string()]
        );
        assert_eq!(total.simd_level, "avx2");
    }
}
