//! Wire transports for the [`Service`]: TCP (`std::net`) and a stdio
//! mode for CI pipelines and tests.
//!
//! Both speak the newline-delimited JSON protocol of
//! [`crate::protocol`]. Responses stream back as each request finishes —
//! possibly out of request order; clients correlate by id. A connection
//! writer is mutex-guarded so each frame is written atomically.
//!
//! Graceful shutdown: a `shutdown` request stops the accept loop (TCP)
//! or the read loop (stdio), lets every queued and running simulation
//! drain, then acknowledges. On stdio, end-of-input likewise drains
//! before exit, so piping a request file through the daemon always
//! yields every response. (Catching SIGTERM needs platform hooks outside
//! std; process supervisors should send the `shutdown` frame — see
//! `docs/architecture.md` § Service layer.)

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{decode_request, encode_response, salvage_id, FrameReader, Response};
use crate::service::{Handled, Service};
use crate::session::SessionTable;

/// Wire-edge phases: time spent decoding request frames and encoding
/// (plus writing) response frames. With the engine's `program.*` spans
/// these complete the per-request breakdown end to end.
static DECODE: sigobs::Hist = sigobs::Hist::new("serve.decode");
static ENCODE: sigobs::Hist = sigobs::Hist::new("serve.encode");

/// Writes one response frame; errors are ignored (the peer may have left
/// without waiting — its work is not worth crashing a worker over).
fn respond_line<W: Write>(writer: &Mutex<W>, response: &Response) {
    let sw = sigobs::stopwatch();
    let line = encode_response(response);
    let mut w = writer.lock().expect("writer poisoned");
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
    sw.observe_span(&ENCODE, "serve.encode");
}

/// Drives one connection (any `BufRead`/`Write` pair) to completion:
/// reads frames until EOF or an acknowledged shutdown, then drains the
/// service so every accepted request has answered. Returns what ended
/// the connection.
///
/// `stop` is the daemon-wide shutdown flag: a transport whose reads can
/// time out (TCP handlers use a read timeout) passes it so idle
/// connections notice a shutdown initiated elsewhere and exit instead of
/// pinning the process on a blocking read forever. `None` (stdio, tests)
/// reads until EOF or a shutdown frame on this very connection.
pub fn run_connection<R, W>(
    service: &Arc<Service>,
    reader: R,
    writer: W,
    stop: Option<&AtomicBool>,
) -> Handled
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    // The connection's session table: sessions are scoped to (and die
    // with) this transport — dropping the table at the end of this
    // function releases every session the client left open.
    let sessions = SessionTable::new(Arc::clone(service));
    let mut frames = FrameReader::new(reader, service.config().max_frame);
    let outcome = loop {
        // Checked every iteration, not only on read timeouts: a client
        // that keeps sending frames must not keep the daemon alive after
        // another connection's shutdown was acknowledged.
        if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
            break Handled::Continue;
        }
        let frame = match frames.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break Handled::Continue, // EOF
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: the frame reader kept any partial frame;
                // leave if the daemon is shutting down, else keep reading.
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    break Handled::Continue;
                }
                continue;
            }
            Err(_) => break Handled::Continue, // transport failure
        };
        let line = match frame {
            Ok(line) => line,
            Err(e) => {
                respond_line(&writer, &e.to_response(None));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let sw = sigobs::stopwatch();
        let request = match decode_request(&line) {
            Ok(r) => r,
            Err(e) => {
                respond_line(&writer, &e.to_response(salvage_id(&line)));
                continue;
            }
        };
        sw.observe_span(&DECODE, "serve.decode");
        let respond_writer = Arc::clone(&writer);
        let handled =
            service.handle_connection_request(request, Some(&sessions), move |response| {
                respond_line(&respond_writer, &response);
            });
        if handled == Handled::Shutdown {
            break Handled::Shutdown;
        }
    };
    // Every sim accepted from this connection must answer before the
    // writer is dropped (drain is service-wide: coarse but simple, and
    // shutdown wants it anyway).
    service.drain();
    outcome
}

/// Serves the protocol on stdin/stdout until EOF or shutdown.
pub fn serve_stdio(service: &Arc<Service>) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_connection(service, stdin.lock(), stdout, None);
}

/// Serves the protocol on a bound TCP listener until a client requests
/// shutdown — the daemon's default transport: the epoll readiness loop
/// of [`crate::mux`], which multiplexes every connection on
/// `config().io_threads` reactor threads with request pipelining,
/// in-order responses, and admission control. Responses are
/// byte-identical to the blocking transport's; only scheduling and
/// ordering differ (see `docs/protocol.md` § Pipelining).
///
/// # Errors
///
/// Returns the I/O error that prevented the transport from starting.
pub fn serve_tcp(service: &Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    crate::mux::serve_mux(service, listener)
}

/// The PR-3 thread-per-connection blocking transport, kept as an escape
/// hatch (`sigserve --transport blocking`) and as the baseline the
/// `BENCH_service.json` saturation rows are measured against. Each
/// connection gets a handler thread with a 200 ms read timeout; a
/// `shutdown` frame on any connection stops the accept loop, drains,
/// and returns.
///
/// # Errors
///
/// Returns the I/O error that broke the accept loop, if any.
pub fn serve_tcp_blocking(service: &Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_tcp_connection(&service, stream, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    service.drain();
    Ok(())
}

fn handle_tcp_connection(service: &Arc<Service>, stream: TcpStream, stop: &AtomicBool) {
    // The listener is non-blocking; accepted streams must block again —
    // but with a read timeout, so idle connections poll the shutdown
    // flag instead of pinning the daemon on a blocking read forever.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    // Writes time out too: a client that stops reading its responses
    // would otherwise block a pool worker forever inside `respond_line`
    // (holding this connection's writer mutex) once the kernel send
    // buffer fills — one dead reader must never wedge the pool. After a
    // timeout the write errors out; `respond_line` drops the frame and
    // only that client's stream is affected.
    if stream
        .set_write_timeout(Some(Duration::from_secs(5)))
        .is_err()
    {
        return;
    }
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    if run_connection(service, reader, stream, Some(stop)) == Handled::Shutdown {
        stop.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_response, encode_request, CircuitSource, ErrorKind, Request, SimRequest,
    };
    use crate::registry::synthetic_set;
    use crate::service::ServiceConfig;
    use std::io::Cursor;

    fn test_service() -> Arc<Service> {
        let service = Service::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 4,
            ..ServiceConfig::default()
        });
        service.registry().insert(synthetic_set("synth"));
        service
    }

    fn drive(service: &Arc<Service>, input: &str) -> Vec<Response> {
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("buffer").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        run_connection(
            service,
            Cursor::new(input.as_bytes().to_vec()),
            SharedWriter(Arc::clone(&out)),
            None,
        );
        let bytes = out.lock().expect("buffer").clone();
        String::from_utf8(bytes)
            .expect("responses are UTF-8")
            .lines()
            .map(|l| decode_response(l).expect("valid response frame"))
            .collect()
    }

    fn sim_line(id: u64, compare: bool) -> String {
        encode_request(&Request::Sim {
            id,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                seed: id,
                compare,
                timing: false,
                ..SimRequest::default()
            },
        })
    }

    #[test]
    fn ping_stats_and_sim_over_one_connection() {
        let service = test_service();
        let input = format!(
            "{}\n{}\n{}\n",
            encode_request(&Request::Ping { id: 1 }),
            sim_line(2, false),
            encode_request(&Request::Stats { id: 3 }),
        );
        let responses = drive(&service, &input);
        assert_eq!(responses.len(), 3);
        assert!(responses.contains(&Response::Pong { id: 1 }));
        let sim = responses
            .iter()
            .find_map(|r| match r {
                Response::Sim { id: 2, result } => Some(result),
                _ => None,
            })
            .expect("sim response");
        assert_eq!(sim.outputs.len(), 2, "c17 has two outputs");
        // Stats may race the sim completion (responses interleave), but
        // the registry/cache counters are already final after drain.
        assert_eq!(service.registry().loads(), 1);
        assert_eq!(service.cache().misses(), 1);
    }

    #[test]
    fn malformed_frames_get_protocol_errors_and_stream_recovers() {
        let service = test_service();
        let big = "x".repeat(service.config().max_frame + 10);
        let input = format!(
            "not json\n{}\n{{\"id\":9,\"op\":\"warp\"}}\n{}\n",
            big,
            encode_request(&Request::Ping { id: 4 }),
        );
        let responses = drive(&service, &input);
        assert_eq!(responses.len(), 4);
        let errors: Vec<_> = responses
            .iter()
            .filter_map(|r| match r {
                Response::Error { id, kind, .. } => Some((*id, *kind)),
                _ => None,
            })
            .collect();
        assert_eq!(errors.len(), 3);
        assert!(errors.contains(&(None, ErrorKind::Protocol)));
        assert!(
            errors.contains(&(Some(9), ErrorKind::Protocol)),
            "id salvaged from bad op frame"
        );
        assert!(responses.contains(&Response::Pong { id: 4 }));
    }

    #[test]
    fn shutdown_drains_and_rejects_later_sims() {
        let service = test_service();
        let input = format!(
            "{}\n{}\n{}\n",
            sim_line(1, false),
            encode_request(&Request::Shutdown { id: 2 }),
            sim_line(3, false),
        );
        let responses = drive(&service, &input);
        // The post-shutdown sim is never read (connection ends at
        // shutdown), so exactly two responses arrive.
        assert_eq!(responses.len(), 2);
        assert!(responses.contains(&Response::ShuttingDown { id: 2 }));
        assert!(matches!(
            responses.iter().find(|r| r.id() == Some(1)),
            Some(Response::Sim { .. })
        ));
        // A fresh connection to the draining service rejects sims.
        let responses = drive(&service, &format!("{}\n", sim_line(5, false)));
        assert_eq!(
            responses,
            vec![Response::Error {
                id: Some(5),
                kind: ErrorKind::ShuttingDown,
                message: "daemon is draining".to_string(),
            }]
        );
    }

    #[test]
    fn sessions_are_scoped_to_their_connection() {
        use crate::protocol::SimRequest;
        let service = test_service();
        let open = encode_request(&Request::SessionOpen {
            id: 1,
            session: 5,
            sim: SimRequest {
                circuit: CircuitSource::Name("c17".into()),
                models: "synth".into(),
                timing: false,
                ..SimRequest::default()
            },
        });
        let delta = encode_request(&Request::SessionDelta {
            id: 2,
            session: 5,
            edits: vec![],
        });
        // Same connection: the open and a follow-up delta both succeed,
        // even though the delta is read while the baseline may still be
        // computing (it waits on the slot).
        let responses = drive(&service, &format!("{open}\n{delta}\n"));
        assert!(
            responses.iter().any(|r| matches!(
                r,
                Response::Session {
                    id: 1,
                    session: 5,
                    ..
                }
            )),
            "{responses:?}"
        );
        assert!(
            responses
                .iter()
                .any(|r| matches!(r, Response::Sim { id: 2, .. })),
            "{responses:?}"
        );
        // The table died with the connection: its session was released.
        assert_eq!(service.stats().sessions_open, 0);
        // A different connection never sees another connection's ids.
        let responses = drive(&service, &format!("{delta}\n"));
        assert!(
            matches!(
                responses.as_slice(),
                [Response::Error {
                    id: Some(2),
                    kind: ErrorKind::UnknownSession,
                    ..
                }]
            ),
            "{responses:?}"
        );
    }

    #[test]
    fn tcp_shutdown_exits_despite_idle_connections() {
        // Regression: an idle open connection must not pin the daemon
        // after another client requests shutdown.
        let service = test_service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
        };
        // Idle client: connects, sends nothing, stays open.
        let idle = TcpStream::connect(addr).expect("connect idle");
        let mut active = TcpStream::connect(addr).expect("connect active");
        writeln!(active, "{}", encode_request(&Request::Shutdown { id: 1 })).expect("send");
        let mut ack = String::new();
        BufReader::new(active.try_clone().expect("clone"))
            .read_line(&mut ack)
            .expect("ack");
        assert_eq!(
            decode_response(ack.trim()).expect("response"),
            Response::ShuttingDown { id: 1 }
        );
        // The daemon must exit even though `idle` never closed.
        server.join().expect("server exits");
        drop(idle);
    }

    #[test]
    fn tcp_shutdown_exits_despite_chatty_connections() {
        // Regression: a client that keeps sending frames (so its reads
        // never time out) must not keep the daemon alive either.
        let service = test_service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
        };
        let chatty = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect chatty");
            let mut id = 100u64;
            // Pings faster than the read timeout until the daemon hangs up.
            loop {
                id += 1;
                if writeln!(stream, "{}", encode_request(&Request::Ping { id })).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut active = TcpStream::connect(addr).expect("connect active");
        writeln!(active, "{}", encode_request(&Request::Shutdown { id: 1 })).expect("send");
        let mut ack = String::new();
        BufReader::new(active.try_clone().expect("clone"))
            .read_line(&mut ack)
            .expect("ack");
        assert_eq!(
            decode_response(ack.trim()).expect("response"),
            Response::ShuttingDown { id: 1 }
        );
        // Would hang forever before the per-iteration stop check.
        server.join().expect("server exits");
        chatty.join().expect("chatty client unblocks");
    }

    #[test]
    fn tcp_round_trip_blocking_transport() {
        // The escape-hatch transport stays functional: same protocol,
        // same responses, thread-per-connection scheduling.
        let service = test_service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp_blocking(&service, listener).expect("serve"))
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{}", sim_line(7, false)).expect("send");
        writeln!(stream, "{}", encode_request(&Request::Shutdown { id: 8 })).expect("send");
        let mut responses = Vec::new();
        for line in BufReader::new(stream.try_clone().expect("clone")).lines() {
            let line = line.expect("read");
            responses.push(decode_response(&line).expect("response"));
            if responses.len() == 2 {
                break;
            }
        }
        server.join().expect("server thread");
        assert!(matches!(
            responses.iter().find(|r| r.id() == Some(7)),
            Some(Response::Sim { .. })
        ));
        assert!(responses.contains(&Response::ShuttingDown { id: 8 }));
    }

    #[test]
    fn tcp_round_trip() {
        let service = test_service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(&service, listener).expect("serve"))
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{}", sim_line(7, false)).expect("send");
        writeln!(stream, "{}", encode_request(&Request::Shutdown { id: 8 })).expect("send");
        let mut responses = Vec::new();
        for line in BufReader::new(stream.try_clone().expect("clone")).lines() {
            let line = line.expect("read");
            responses.push(decode_response(&line).expect("response"));
            if responses.len() == 2 {
                break;
            }
        }
        server.join().expect("server thread");
        assert!(matches!(
            responses.iter().find(|r| r.id() == Some(7)),
            Some(Response::Sim { .. })
        ));
        assert!(responses.contains(&Response::ShuttingDown { id: 8 }));
    }
}
