//! Chrome trace-event JSON export of the span journal.
//!
//! The output is the `traceEvents` array format understood by Perfetto
//! and `chrome://tracing`: one complete (`"ph":"X"`) event per span,
//! timestamps and durations in fractional microseconds, plus a single
//! instant event flagging journal overflow when spans were dropped.
//! Serialization is hand-written (std-only crate) and deterministic.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One exportable span: the journal's drain format, also constructible
/// from wire data (`sigctl trace` re-exports spans fetched from a
/// daemon, whose names arrive as owned strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Span name (e.g. `program.execute`).
    pub name: String,
    /// Journal thread id (sequential small integer, trace-viewer row).
    pub tid: u64,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional numeric argument shown in the viewer (e.g. `rows`).
    pub arg: Option<(String, u64)>,
}

/// Drains the process-wide span journal: all completed spans (sorted by
/// start time) and the number dropped to ring overflow since the last
/// drain. Empty unless the process ran with tracing enabled.
#[must_use]
pub fn drain_chrome_trace() -> (Vec<ChromeEvent>, u64) {
    crate::journal::drain()
}

/// Serializes spans as a Chrome trace-event JSON document. `dropped`
/// (when non-zero) becomes an instant event named `sigobs.dropped` so
/// overflow is visible in the viewer rather than silent.
#[must_use]
pub fn chrome_trace_json(events: &[ChromeEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(32 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &event.name);
        out.push_str("\",\"cat\":\"sigobs\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", event.tid);
        out.push_str(",\"ts\":");
        push_micros(&mut out, event.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, event.dur_ns);
        if let Some((key, value)) = &event.arg {
            out.push_str(",\"args\":{\"");
            escape_into(&mut out, key);
            let _ = write!(out, "\":{value}}}");
        }
        out.push('}');
    }
    if dropped > 0 {
        if !first {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"sigobs.dropped\",\"cat\":\"sigobs\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\
             \"ts\":0,\"s\":\"g\",\"args\":{{\"count\":{dropped}}}}}"
        );
    }
    out.push_str("]}");
    out
}

/// Drains the journal and writes the Chrome trace JSON to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let (events, dropped) = drain_chrome_trace();
    std::fs::write(path, chrome_trace_json(&events, dropped))
}

/// Nanoseconds rendered as fractional microseconds (`1234567` →
/// `1234.567`): the trace-event clock unit with no precision loss.
fn push_micros(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, tid: u64, start_ns: u64, dur_ns: u64) -> ChromeEvent {
        ChromeEvent {
            name: name.to_string(),
            tid,
            start_ns,
            dur_ns,
            arg: None,
        }
    }

    #[test]
    fn serializes_complete_events() {
        let mut with_arg = event("program.execute", 2, 1_234_567, 89_000);
        with_arg.arg = Some(("rows".to_string(), 17));
        let json = chrome_trace_json(&[event("engine.compile", 1, 0, 1000), with_arg], 0);
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"engine.compile\",\"cat\":\"sigobs\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":0.000,\"dur\":1.000},\
             {\"name\":\"program.execute\",\"cat\":\"sigobs\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\
             \"ts\":1234.567,\"dur\":89.000,\"args\":{\"rows\":17}}\
             ]}"
        );
    }

    #[test]
    fn dropped_spans_surface_as_instant_event() {
        let json = chrome_trace_json(&[], 3);
        assert!(json.contains("\"name\":\"sigobs.dropped\""));
        assert!(json.contains("\"count\":3"));
    }

    #[test]
    fn escapes_hostile_names() {
        let json = chrome_trace_json(&[event("a\"b\\c\nd", 1, 0, 0)], 0);
        assert!(json.contains("a\\\"b\\\\c\\u000ad"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(chrome_trace_json(&[], 0), "{\"traceEvents\":[]}");
    }
}
