//! Lock-free counters and fixed-bucket log2 histograms.
//!
//! A [`Hist`] is a `static`-friendly handle: `Hist::new` is `const`, and
//! the backing atomics ([`HistCore`]) are allocated lazily on first
//! record and leaked, so a recording thread never takes a lock — every
//! record is three relaxed `fetch_add`s. A process-global registry keeps
//! one reference per instantiated histogram for [`snapshot_all`].
//!
//! Buckets are powers of two: bucket `0` holds the value `0`, bucket
//! `i` (for `1 <= i < 64`) holds values in `[2^(i-1), 2^i - 1]`, and
//! bucket `64` holds `[2^63, u64::MAX]`. Quantiles are extracted by
//! exact rank: [`HistSnapshot::quantile`] returns the upper bound of the
//! bucket containing the rank-`ceil(q*count)` element, which is the same
//! bucket a fully sorted list would land that element in — the
//! approximation error is bounded by the bucket width, never by the
//! sample count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log2 buckets: one for zero, one per power of two up to
/// `2^63`, and one terminal bucket for everything at or above `2^63`.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket index of a value (see the module docs for the
/// bucket-to-range mapping).
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value a bucket holds: `0` for bucket `0`, `2^i - 1` for
/// `1 <= i < 64`, and `u64::MAX` for the terminal bucket.
///
/// # Panics
///
/// Panics when `index >= HIST_BUCKETS`.
#[inline]
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    assert!(index < HIST_BUCKETS, "bucket index out of range");
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The leaked, registry-tracked backing store of one histogram.
struct HistCore {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// All instantiated histogram cores, in first-use order.
static HIST_REGISTRY: Mutex<Vec<&'static HistCore>> = Mutex::new(Vec::new());

/// A named log2 latency/size histogram. Construct as a `static`:
///
/// ```
/// static EXECUTE: sigobs::Hist = sigobs::Hist::new("engine.execute");
/// EXECUTE.record(1_500);
/// ```
///
/// Values are plain `u64`s — by convention nanoseconds for latency
/// histograms and raw counts (rows, depth) otherwise; the name should
/// make the unit obvious.
pub struct Hist {
    name: &'static str,
    core: OnceLock<&'static HistCore>,
}

impl Hist {
    /// A histogram handle (no allocation until the first record).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Hist {
            name,
            core: OnceLock::new(),
        }
    }

    /// The name this histogram registered under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn core(&self) -> &'static HistCore {
        self.core.get_or_init(|| {
            let core: &'static HistCore = Box::leak(Box::new(HistCore {
                name: self.name,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            }));
            HIST_REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(core);
            core
        })
    }

    /// Records one observation (no-op unless [`crate::counting`]).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::counting() {
            return;
        }
        let core = self.core();
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a wall-time observation in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if crate::counting() {
            self.record(crate::duration_ns(d));
        }
    }

    /// A point-in-time copy of the histogram's counts.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot::read(self.core())
    }
}

/// A named monotonic counter with the same `static`-friendly, lock-free
/// shape as [`Hist`].
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

/// All instantiated counters, in first-use order.
static COUNTER_REGISTRY: Mutex<Vec<(&'static str, &'static AtomicU64)>> = Mutex::new(Vec::new());

impl Counter {
    /// A counter handle (no allocation until the first add).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The name this counter registered under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
            COUNTER_REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((self.name, cell));
            cell
        })
    }

    /// Adds to the counter (no-op unless [`crate::counting`]).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counting() {
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one histogram, safe to query repeatedly.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// The histogram's registered name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow, like the core).
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistSnapshot {
    fn read(core: &HistCore) -> Self {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(core.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            name: core.name,
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// The exact-rank quantile: the upper bound of the bucket holding
    /// the rank-`ceil(q * count)` smallest observation (clamped to
    /// `[1, count]`). Returns `0` for an empty histogram.
    ///
    /// This is the same bucket a fully sorted copy of the observations
    /// would place that rank in, so the error is at most one bucket
    /// width — the property the quantile oracle proptest pins down.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// [`Self::quantile`] scaled from nanoseconds to seconds (only
    /// meaningful for latency histograms).
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let ns = self.quantile(q) as f64;
        ns / 1e9
    }

    /// Mean observed value (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let mean = self.sum as f64 / self.count as f64;
            mean
        }
    }
}

/// Snapshots of every histogram instantiated so far, sorted by name.
#[must_use]
pub fn snapshot_all() -> Vec<HistSnapshot> {
    let mut all: Vec<HistSnapshot> = HIST_REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|core| HistSnapshot::read(core))
        .collect();
    all.sort_by_key(|s| s.name);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::lock_mode;
    use crate::{set_mode, ObsMode};
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for i in 1..64 {
            let lower = 1u64 << (i - 1);
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(lower), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(upper), i, "upper edge of bucket {i}");
            assert_eq!(upper, (1u64 << i) - 1);
            if i > 1 {
                assert_eq!(bucket_index(lower - 1), i - 1, "below bucket {i}");
            }
        }
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = HistSnapshot {
            name: "empty",
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        };
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn record_is_inert_when_off() {
        let _guard = lock_mode();
        static OFF_HIST: Hist = Hist::new("test.off");
        set_mode(ObsMode::Off);
        OFF_HIST.record(7);
        set_mode(ObsMode::Counters);
        OFF_HIST.record(7);
        assert_eq!(OFF_HIST.snapshot().count, 1);
    }

    #[test]
    fn counters_are_exact_under_8_threads() {
        let _guard = lock_mode();
        set_mode(ObsMode::Counters);
        static THREADED: Hist = Hist::new("test.threads");
        static THREADED_COUNTER: Counter = Counter::new("test.threads.counter");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let before = THREADED.snapshot();
        let counter_before = THREADED_COUNTER.get();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Mix buckets: value depends on thread and step.
                        THREADED.record((t as u64 + 1) << (i % 8));
                        THREADED_COUNTER.add(1);
                    }
                });
            }
        });
        let after = THREADED.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(after.count - before.count, total);
        assert_eq!(THREADED_COUNTER.get() - counter_before, total);
        let bucket_total: u64 = after
            .buckets
            .iter()
            .zip(before.buckets.iter())
            .map(|(a, b)| a - b)
            .sum();
        assert_eq!(bucket_total, total, "no record lost a bucket increment");
        let expected_sum: u64 = (0..THREADS as u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| (t + 1) << (i % 8)))
            .sum();
        assert_eq!(after.sum - before.sum, expected_sum);
    }

    proptest! {
        #[test]
        fn quantile_matches_sorted_oracle(
            values in proptest::collection::vec(0u64..1_u64 << 40, 1..200),
            qs in proptest::collection::vec(0.0..1.0f64, 4),
        ) {
            let _guard = lock_mode();
            set_mode(ObsMode::Counters);
            // A fresh (leaked) histogram per case: the registry grows by
            // one core per case, which is fine for a bounded test run.
            let hist = Hist::new("test.oracle");
            for &v in &values {
                hist.record(v);
            }
            let snap = hist.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in qs.iter().copied().chain([0.5, 0.9, 0.99, 1.0]) {
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let oracle = bucket_upper(bucket_index(sorted[rank - 1]));
                prop_assert_eq!(
                    snap.quantile(q),
                    oracle,
                    "q={} rank={} value={}",
                    q,
                    rank,
                    sorted[rank - 1]
                );
            }
        }
    }
}
