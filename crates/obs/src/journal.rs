//! The span journal: bounded per-thread ring buffers of completed spans.
//!
//! Each thread journals into its own ring (capacity
//! [`JOURNAL_CAPACITY`], overwrite-oldest with a drop counter), so a
//! recording thread only ever touches its own uncontended mutex; the
//! global registry of rings is locked only at thread birth and at drain
//! time. Timestamps are measured from a process-global epoch pinned the
//! first time tracing turns on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::ChromeEvent;

/// Max completed spans a single thread's ring holds before the oldest
/// are overwritten (and counted as dropped).
pub const JOURNAL_CAPACITY: usize = 4096;

/// One completed span as stored in a ring.
#[derive(Debug, Clone, Copy)]
struct Event {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    arg: Option<(&'static str, u64)>,
}

struct Ring {
    tid: u64,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() == JOURNAL_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Every live-or-dead thread ring, for draining.
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Journal thread ids are small sequential integers (Chrome trace
/// viewers group rows by them), assigned at first journal use.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The instant all journal timestamps are measured from.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Pins the trace epoch (idempotent). Called when trace mode turns on so
/// stopwatches started just before still produce non-negative stamps.
pub(crate) fn touch_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

fn ts_ns(at: Instant) -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    crate::duration_ns(at.saturating_duration_since(epoch))
}

thread_local! {
    static RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: VecDeque::with_capacity(JOURNAL_CAPACITY.min(64)),
            dropped: 0,
        }));
        RINGS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    };
}

fn push_event(event: Event) {
    RING.with(|ring| ring.lock().unwrap_or_else(|e| e.into_inner()).push(event));
}

/// An in-flight span: created by [`span`], journaled on drop. Inert
/// (no clock reads, nothing journaled) unless tracing was enabled at
/// creation time.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    arg: Option<(&'static str, u64)>,
}

/// Opens a span covering the enclosing scope (ends when dropped).
#[inline]
#[must_use]
pub fn span(name: &'static str) -> Span {
    let start = if crate::tracing() {
        touch_epoch();
        Some(Instant::now())
    } else {
        None
    };
    Span {
        name,
        start,
        arg: None,
    }
}

impl Span {
    /// Attaches one numeric argument shown in the trace viewer (e.g.
    /// `rows`). Later calls overwrite; no-op on an inert span.
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.arg = Some((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = crate::duration_ns(start.elapsed());
            push_event(Event {
                name: self.name,
                start_ns: ts_ns(start),
                dur_ns,
                arg: self.arg,
            });
        }
    }
}

/// Journals a span retroactively from an already-measured interval
/// (no-op unless tracing). Used where the start instant had to be
/// captured before its fate was known, e.g. queue-wait measurement.
pub fn record_span(name: &'static str, start: Instant, duration: std::time::Duration) {
    if crate::tracing() {
        record_span_at(name, start, crate::duration_ns(duration), None);
    }
}

/// Internal retroactive journaling used by [`record_span`] and
/// [`crate::Stopwatch::observe_span`]; `dur_ns` is already computed.
pub(crate) fn record_span_at(
    name: &'static str,
    start: Instant,
    dur_ns: u64,
    arg: Option<(&'static str, u64)>,
) {
    if !crate::tracing() {
        return;
    }
    push_event(Event {
        name,
        start_ns: ts_ns(start),
        dur_ns,
        arg,
    });
}

/// Drains every ring: the completed spans (sorted by start time, then
/// journal tid) and the total number of spans dropped to ring overflow
/// since the last drain. Both are reset by the drain.
pub(crate) fn drain() -> (Vec<ChromeEvent>, u64) {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        dropped += ring.dropped;
        ring.dropped = 0;
        let tid = ring.tid;
        events.extend(ring.events.drain(..).map(|e| ChromeEvent {
            name: e.name.to_string(),
            tid,
            start_ns: e.start_ns,
            dur_ns: e.dur_ns,
            arg: e.arg.map(|(k, v)| (k.to_string(), v)),
        }));
    }
    events.sort_by_key(|e| (e.start_ns, e.tid));
    (events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::lock_mode;
    use crate::{set_mode, ObsMode};

    #[test]
    fn spans_journal_only_when_tracing() {
        let _guard = lock_mode();
        set_mode(ObsMode::Trace);
        drain(); // discard spans journaled by earlier tests
        set_mode(ObsMode::Counters);
        drop(span("quiet"));
        set_mode(ObsMode::Trace);
        {
            let mut s = span("loud");
            s.set_arg("rows", 42);
        }
        let (events, dropped) = drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "loud");
        assert_eq!(events[0].arg, Some(("rows".to_string(), 42)));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _guard = lock_mode();
        set_mode(ObsMode::Trace);
        drain();
        const EXTRA: usize = 10;
        // All spans journal on this test's thread, into one ring.
        for i in 0..JOURNAL_CAPACITY + EXTRA {
            let mut s = span("wrap");
            s.set_arg("i", i as u64);
        }
        let (events, dropped) = drain();
        let ours: Vec<_> = events.iter().filter(|e| e.name == "wrap").collect();
        assert_eq!(ours.len(), JOURNAL_CAPACITY);
        assert_eq!(dropped, EXTRA as u64);
        // Oldest dropped: the survivors are the last JOURNAL_CAPACITY.
        assert_eq!(ours[0].arg, Some(("i".to_string(), EXTRA as u64)));
        let last = ours.last().unwrap();
        assert_eq!(
            last.arg,
            Some(("i".to_string(), (JOURNAL_CAPACITY + EXTRA - 1) as u64))
        );
        // Drain resets the drop counter.
        let (_, dropped_again) = drain();
        assert_eq!(dropped_again, 0);
    }

    #[test]
    fn retroactive_spans_cover_measured_interval() {
        let _guard = lock_mode();
        set_mode(ObsMode::Trace);
        drain();
        let start = Instant::now();
        let dur = std::time::Duration::from_micros(1500);
        record_span("retro", start, dur);
        let (events, _) = drain();
        let retro = events.iter().find(|e| e.name == "retro").unwrap();
        assert_eq!(retro.dur_ns, 1_500_000);
    }
}
