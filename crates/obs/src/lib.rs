//! `sigobs` — the workspace's std-only observability substrate.
//!
//! Three layers, all dependency-free and cheap enough for hot paths:
//!
//! - **Counters and histograms** ([`Counter`], [`Hist`]): lock-free
//!   relaxed atomics with fixed log2 buckets and exact rank-based
//!   p50/p90/p99 extraction (see [`HistSnapshot::quantile`]).
//! - **Spans** ([`span`], [`Span`], [`record_span`]): begin/end wall-time
//!   intervals journaled into a bounded per-thread ring buffer
//!   (overwrite-oldest, drop-counted) — nothing ever blocks on a full
//!   journal.
//! - **Chrome trace export** ([`drain_chrome_trace`],
//!   [`write_chrome_trace`]): the journal serializes to the Chrome
//!   trace-event JSON format, loadable in Perfetto or `chrome://tracing`.
//!
//! # Modes and the overhead contract
//!
//! A process-global [`ObsMode`] gates everything, resolved once from the
//! `SIG_OBS` environment variable (`off` | `counters` | `trace`, default
//! `counters`) or set programmatically with [`set_mode`]:
//!
//! - `off`: every instrumentation probe is a single relaxed atomic load
//!   and a branch — no clock reads, no stores.
//! - `counters`: histograms and counters record; spans stay disabled.
//! - `trace`: counters **plus** the span journal.
//!
//! The `off` fast path is enforced by the `obs_overhead` bench and a
//! guard row in `service_throughput` (see `docs/observability.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod histogram;
mod journal;

pub use chrome::{chrome_trace_json, drain_chrome_trace, write_chrome_trace, ChromeEvent};
pub use histogram::{
    bucket_index, bucket_upper, snapshot_all, Counter, Hist, HistSnapshot, HIST_BUCKETS,
};
pub use journal::{record_span, span, Span, JOURNAL_CAPACITY};

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// How much the process records. Ordered: each level includes the ones
/// below it (`Trace` also counts, `Counters` also does nothing extra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsMode {
    /// Probes reduce to one relaxed atomic load; nothing is recorded.
    Off,
    /// Counters and histograms record; the span journal stays off.
    Counters,
    /// Counters plus the per-thread span journal (trace export).
    Trace,
}

impl ObsMode {
    /// Parses a `SIG_OBS` value. Unknown names return `None`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(ObsMode::Off),
            "counters" => Some(ObsMode::Counters),
            "trace" => Some(ObsMode::Trace),
            _ => None,
        }
    }

    /// The canonical `SIG_OBS` spelling of this mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Counters => "counters",
            ObsMode::Trace => "trace",
        }
    }

    fn encode(self) -> u8 {
        match self {
            ObsMode::Off => 1,
            ObsMode::Counters => 2,
            ObsMode::Trace => 3,
        }
    }
}

/// The resolved process-global mode. `0` = not yet resolved; otherwise
/// [`ObsMode::encode`]. Relaxed everywhere: the mode is a hint, not a
/// synchronization point.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The process-global observability mode (one relaxed atomic load once
/// resolved). The first call reads `SIG_OBS` (default `counters`).
#[inline]
#[must_use]
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        1 => ObsMode::Off,
        2 => ObsMode::Counters,
        3 => ObsMode::Trace,
        _ => resolve_mode(),
    }
}

#[cold]
fn resolve_mode() -> ObsMode {
    let mode = std::env::var("SIG_OBS")
        .ok()
        .and_then(|v| ObsMode::from_name(&v))
        .unwrap_or(ObsMode::Counters);
    set_mode(mode);
    mode
}

/// Overrides the process-global mode (wins over `SIG_OBS`). Used by
/// `sigserve --trace`, benches, and tests.
pub fn set_mode(mode: ObsMode) {
    if mode == ObsMode::Trace {
        // Pin the trace epoch before any span starts so timestamps
        // measured from pre-existing stopwatches stay non-negative.
        journal::touch_epoch();
    }
    MODE.store(mode.encode(), Ordering::Relaxed);
}

/// `true` when counters/histograms record ([`ObsMode::Counters`] or up).
#[inline]
#[must_use]
pub fn counting() -> bool {
    mode() >= ObsMode::Counters
}

/// `true` when the span journal records ([`ObsMode::Trace`]).
#[inline]
#[must_use]
pub fn tracing() -> bool {
    mode() == ObsMode::Trace
}

/// A clock read taken only when counting is enabled: the cheap way to
/// time a phase that may later feed a histogram and/or the journal.
///
/// Under `SIG_OBS=off` construction is the one-relaxed-load fast path
/// and every observe method is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

/// Starts a [`Stopwatch`] (reads the clock only when [`counting`]).
#[inline]
#[must_use]
pub fn stopwatch() -> Stopwatch {
    Stopwatch(if counting() {
        Some(Instant::now())
    } else {
        None
    })
}

impl Stopwatch {
    /// Nanoseconds since the stopwatch started, `None` when observability
    /// was off at construction time.
    #[must_use]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|start| duration_ns(start.elapsed()))
    }

    /// Records the elapsed time into `hist` (no-op when off).
    pub fn observe(&self, hist: &Hist) {
        if let Some(ns) = self.elapsed_ns() {
            hist.record(ns);
        }
    }

    /// Records the elapsed time into `hist` **and**, when tracing, a
    /// retroactive journal span named `name` covering the same interval.
    pub fn observe_span(&self, hist: &Hist, name: &'static str) {
        if let Some(start) = self.0 {
            let dur = duration_ns(start.elapsed());
            hist.record(dur);
            journal::record_span_at(name, start, dur, None);
        }
    }
}

/// `Duration` → saturating nanoseconds (`u64` holds ~584 years).
#[inline]
pub(crate) fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// The mode is process-global and `cargo test` runs tests in
    /// parallel within one binary: every test that sets the mode (or
    /// asserts mode-dependent behavior) holds this lock.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    pub fn lock_mode() -> MutexGuard<'static, ()> {
        MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [ObsMode::Off, ObsMode::Counters, ObsMode::Trace] {
            assert_eq!(ObsMode::from_name(mode.as_str()), Some(mode));
        }
        assert_eq!(ObsMode::from_name("verbose"), None);
    }

    #[test]
    fn modes_are_ordered() {
        assert!(ObsMode::Off < ObsMode::Counters);
        assert!(ObsMode::Counters < ObsMode::Trace);
    }

    #[test]
    fn stopwatch_is_inert_when_off() {
        let _guard = test_support::lock_mode();
        set_mode(ObsMode::Off);
        let sw = stopwatch();
        assert_eq!(sw.elapsed_ns(), None);
        set_mode(ObsMode::Counters);
        let sw = stopwatch();
        assert!(sw.elapsed_ns().is_some());
    }
}
