//! Runtime-dispatched SIMD kernels for the inference hot loops.
//!
//! Three loops dominate the simulator's inference cost: the dense
//! matmul inside [`crate::Mlp::forward_batch`], the elementwise
//! standardize/unstandardize passes of [`crate::Standardizer`], and the
//! LUT neighbour-distance sweep in `sigtom`'s `LutTransfer`. This module
//! provides SSE2/AVX2 f64 kernels for all three behind a process-global
//! selection policy, using only `std::arch` + runtime feature detection
//! — no dependencies, and a scalar fallback on every other architecture.
//!
//! # Bit-identity contract
//!
//! Every kernel is held to the same bar as the batched engine itself:
//! results are **bit-identical** (`f64::to_bits` equality) to the scalar
//! reference loop at every level. The kernels achieve this by
//! vectorizing *across rows* (one SIMD lane per sample) instead of
//! within a row: each lane performs exactly the scalar per-row
//! operation sequence — for the dense kernel, `acc = bias` then
//! `acc += w[i] * x[i]` in input order with separate mul and add
//! roundings (never FMA, which rounds once and would diverge); for the
//! elementwise kernels, the single IEEE op per element is order-free.
//! Leftover rows (`n % lanes`) run the scalar loop. Parity proptests in
//! this module enforce the contract per kernel at every detected level.
//!
//! # Selection policy
//!
//! The active level is resolved once per process from [`SimdPolicy`]:
//! `Auto` picks the best detected level, `Force` clamps a requested
//! level to what the host supports, `Off` pins scalar. The `SIG_SIMD`
//! environment variable (`off`, `scalar`, `auto`, `sse2`, `avx2`) seeds
//! the policy at first use; [`set_policy`] overrides it (the harness
//! exposes this as a config knob so CI can pin both paths). Kernels
//! take the level as an explicit argument so tests can exercise every
//! level regardless of the global.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// A SIMD instruction-set level for the f64 kernels, in increasing
/// capability order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Plain scalar loops (the reference semantics, any architecture).
    Scalar,
    /// SSE2: 2 × f64 lanes (baseline on `x86_64`).
    Sse2,
    /// AVX2: 4 × f64 lanes.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (used by `SIG_SIMD` and service stats).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// f64 lanes per vector at this level.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 4,
        }
    }

    /// All levels the current host can execute, in increasing order
    /// (always starts with [`SimdLevel::Scalar`]). Parity tests iterate
    /// this so hosts without AVX2 skip that level cleanly.
    #[must_use]
    pub fn available() -> Vec<SimdLevel> {
        let best = detected_best();
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| l <= best)
            .collect()
    }
}

/// How the process-wide kernel level is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Use the best level the host supports (the default).
    Auto,
    /// Request a specific level; clamped to the detected best, so
    /// forcing `avx2` on a host without it degrades safely.
    Force(SimdLevel),
    /// Pin scalar loops (reference semantics).
    Off,
}

impl SimdPolicy {
    /// Parses a `SIG_SIMD` value. Recognized: `off`, `scalar`, `auto`,
    /// `sse2`, `avx2` (case-insensitive). Returns `None` for anything
    /// else.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "off" => Some(SimdPolicy::Off),
            "scalar" => Some(SimdPolicy::Force(SimdLevel::Scalar)),
            "auto" => Some(SimdPolicy::Auto),
            "sse2" => Some(SimdPolicy::Force(SimdLevel::Sse2)),
            "avx2" => Some(SimdPolicy::Force(SimdLevel::Avx2)),
            _ => None,
        }
    }

    /// The level this policy resolves to on the current host.
    #[must_use]
    pub fn resolve(self) -> SimdLevel {
        match self {
            SimdPolicy::Auto => detected_best(),
            SimdPolicy::Force(level) => level.min(detected_best()),
            SimdPolicy::Off => SimdLevel::Scalar,
        }
    }
}

/// The best level the host supports.
#[must_use]
pub fn detected_best() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// The resolved process-wide level: `0` = unresolved, otherwise
/// `1 + level as u8`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 1,
        SimdLevel::Sse2 => 2,
        SimdLevel::Avx2 => 3,
    }
}

fn decode(v: u8) -> Option<SimdLevel> {
    match v {
        1 => Some(SimdLevel::Scalar),
        2 => Some(SimdLevel::Sse2),
        3 => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// Overrides the process-wide kernel level with a resolved policy.
/// Takes effect for all subsequent [`active_level`] calls.
pub fn set_policy(policy: SimdPolicy) {
    ACTIVE.store(encode(policy.resolve()), Ordering::SeqCst);
}

/// The process-wide kernel level, resolved once on first use: the
/// `SIG_SIMD` environment variable if set to a recognized value,
/// otherwise [`SimdPolicy::Auto`]. [`set_policy`] overrides it.
#[must_use]
pub fn active_level() -> SimdLevel {
    if let Some(level) = decode(ACTIVE.load(Ordering::Relaxed)) {
        return level;
    }
    let policy = std::env::var("SIG_SIMD")
        .ok()
        .and_then(|v| SimdPolicy::from_name(&v))
        .unwrap_or(SimdPolicy::Auto);
    let level = policy.resolve();
    // Racing first calls resolve the same env, so last-write-wins is
    // deterministic.
    ACTIVE.store(encode(level), Ordering::SeqCst);
    level
}

/// Largest standardizer dimension the tiled SIMD path covers; wider
/// rows (none exist in practice — the TOM features are 3-wide) fall
/// back to the scalar loop.
const MAX_TILE_DIM: usize = 8;

// ---------------------------------------------------------------------
// Kernel 1: dense layer forward over a structure-of-arrays batch.
// ---------------------------------------------------------------------

/// Forward pass of one dense layer (`y = W x + b`) over an SoA batch:
/// `x` holds `inputs` rows of `n` sample values (feature-major), `out`
/// receives `outputs` rows of `n` values. Per sample the accumulation
/// is exactly the scalar order — `acc = bias; acc += w[i] * x[i]` in
/// input order, separate mul/add roundings — so every level is
/// bit-identical to [`SimdLevel::Scalar`].
///
/// # Panics
///
/// Panics if the slice lengths do not match the given shape.
#[allow(clippy::too_many_arguments)] // a kernel signature: shape + data, no natural struct
pub fn dense_forward_soa(
    level: SimdLevel,
    inputs: usize,
    outputs: usize,
    weights: &[f64],
    biases: &[f64],
    x: &[f64],
    n: usize,
    out: &mut [f64],
) {
    assert_eq!(weights.len(), inputs * outputs, "weight shape mismatch");
    assert_eq!(biases.len(), outputs, "bias shape mismatch");
    assert_eq!(x.len(), inputs * n, "input batch shape mismatch");
    assert_eq!(out.len(), outputs * n, "output batch shape mismatch");
    match level {
        SimdLevel::Scalar => dense_forward_scalar(inputs, outputs, weights, biases, x, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline; AVX2 levels are
        // only ever produced by `SimdPolicy::resolve`, which clamps to
        // `detected_best()`, or by tests iterating `available()`.
        SimdLevel::Sse2 => unsafe {
            dense_forward_sse2(inputs, outputs, weights, biases, x, n, out);
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see above — Avx2 implies `is_x86_feature_detected!("avx2")`.
        SimdLevel::Avx2 => unsafe {
            dense_forward_avx2(inputs, outputs, weights, biases, x, n, out);
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => dense_forward_scalar(inputs, outputs, weights, biases, x, n, out),
    }
}

fn dense_forward_scalar(
    inputs: usize,
    outputs: usize,
    weights: &[f64],
    biases: &[f64],
    x: &[f64],
    n: usize,
    out: &mut [f64],
) {
    for o in 0..outputs {
        let wrow = &weights[o * inputs..(o + 1) * inputs];
        let orow = &mut out[o * n..(o + 1) * n];
        for (r, slot) in orow.iter_mut().enumerate() {
            let mut acc = biases[o];
            for (i, w) in wrow.iter().enumerate() {
                acc += w * x[i * n + r];
            }
            *slot = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn dense_forward_sse2(
    inputs: usize,
    outputs: usize,
    weights: &[f64],
    biases: &[f64],
    x: &[f64],
    n: usize,
    out: &mut [f64],
) {
    use std::arch::x86_64::{_mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd};
    let main = n - n % 2;
    for o in 0..outputs {
        let wrow = &weights[o * inputs..(o + 1) * inputs];
        let bias = biases[o];
        let bias_v = _mm_set1_pd(bias);
        let mut r = 0;
        while r < main {
            let mut acc = bias_v;
            for (i, &w) in wrow.iter().enumerate() {
                let xv = _mm_loadu_pd(x.as_ptr().add(i * n + r));
                acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(w), xv));
            }
            _mm_storeu_pd(out.as_mut_ptr().add(o * n + r), acc);
            r += 2;
        }
        for r in main..n {
            let mut acc = bias;
            for (i, &w) in wrow.iter().enumerate() {
                acc += w * x[i * n + r];
            }
            out[o * n + r] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dense_forward_avx2(
    inputs: usize,
    outputs: usize,
    weights: &[f64],
    biases: &[f64],
    x: &[f64],
    n: usize,
    out: &mut [f64],
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };
    let main = n - n % 4;
    for o in 0..outputs {
        let wrow = &weights[o * inputs..(o + 1) * inputs];
        let bias = biases[o];
        let bias_v = _mm256_set1_pd(bias);
        let mut r = 0;
        while r < main {
            let mut acc = bias_v;
            for (i, &w) in wrow.iter().enumerate() {
                let xv = _mm256_loadu_pd(x.as_ptr().add(i * n + r));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(w), xv));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(o * n + r), acc);
            r += 4;
        }
        for r in main..n {
            let mut acc = bias;
            for (i, &w) in wrow.iter().enumerate() {
                acc += w * x[i * n + r];
            }
            out[o * n + r] = acc;
        }
    }
}

// ---------------------------------------------------------------------
// Kernel 2: standardize / unstandardize over row-major batches.
// ---------------------------------------------------------------------

/// Standardizes a flat row-major batch in place: element `j` becomes
/// `(data[j] - means[j % dim]) / stds[j % dim]`. One IEEE op sequence
/// per element, so every level is trivially bit-identical; the SIMD
/// paths tile the periodic coefficients to `dim × lanes` so whole
/// vectors load coefficients directly.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `means.len()` or the
/// coefficient slices disagree in length.
pub fn standardize_rows(level: SimdLevel, means: &[f64], stds: &[f64], data: &mut [f64]) {
    affine_rows(level, means, stds, data, AffineForm::Standardize);
}

/// Inverts [`standardize_rows`] in place: element `j` becomes
/// `data[j] * stds[j % dim] + means[j % dim]`.
///
/// # Panics
///
/// Panics on the same shape mismatches as [`standardize_rows`].
pub fn unstandardize_rows(level: SimdLevel, means: &[f64], stds: &[f64], data: &mut [f64]) {
    affine_rows(level, means, stds, data, AffineForm::Unstandardize);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AffineForm {
    Standardize,
    Unstandardize,
}

fn affine_rows(level: SimdLevel, means: &[f64], stds: &[f64], data: &mut [f64], form: AffineForm) {
    let dim = means.len();
    assert_eq!(stds.len(), dim, "coefficient shape mismatch");
    assert!(dim > 0, "zero-dimensional standardizer");
    assert_eq!(data.len() % dim, 0, "batch is not whole rows");
    let effective = if dim > MAX_TILE_DIM {
        SimdLevel::Scalar
    } else {
        level
    };
    match effective {
        SimdLevel::Scalar => affine_scalar(means, stds, data, form),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level provenance as in `dense_forward_soa`.
        SimdLevel::Sse2 => unsafe { affine_sse2(means, stds, data, form) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level provenance as in `dense_forward_soa`.
        SimdLevel::Avx2 => unsafe { affine_avx2(means, stds, data, form) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => affine_scalar(means, stds, data, form),
    }
}

fn affine_scalar(means: &[f64], stds: &[f64], data: &mut [f64], form: AffineForm) {
    let dim = means.len();
    for (j, v) in data.iter_mut().enumerate() {
        let m = means[j % dim];
        let s = stds[j % dim];
        *v = match form {
            AffineForm::Standardize => (*v - m) / s,
            AffineForm::Unstandardize => *v * s + m,
        };
    }
}

/// Fills stack tiles with the coefficients repeated to `dim * lanes`
/// elements, so every vector of `lanes` consecutive batch elements can
/// load its coefficients from a fixed tile offset.
fn fill_tiles(
    means: &[f64],
    stds: &[f64],
    lanes: usize,
    tile_m: &mut [f64; MAX_TILE_DIM * 4],
    tile_s: &mut [f64; MAX_TILE_DIM * 4],
) -> usize {
    let dim = means.len();
    let len = dim * lanes;
    for t in 0..len {
        tile_m[t] = means[t % dim];
        tile_s[t] = stds[t % dim];
    }
    len
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn affine_sse2(means: &[f64], stds: &[f64], data: &mut [f64], form: AffineForm) {
    use std::arch::x86_64::{
        _mm_add_pd, _mm_div_pd, _mm_loadu_pd, _mm_mul_pd, _mm_storeu_pd, _mm_sub_pd,
    };
    let mut tile_m = [0.0; MAX_TILE_DIM * 4];
    let mut tile_s = [0.0; MAX_TILE_DIM * 4];
    let tile_len = fill_tiles(means, stds, 2, &mut tile_m, &mut tile_s);
    let main = data.len() - data.len() % tile_len;
    let mut base = 0;
    while base < main {
        let mut off = 0;
        while off < tile_len {
            let v = _mm_loadu_pd(data.as_ptr().add(base + off));
            let m = _mm_loadu_pd(tile_m.as_ptr().add(off));
            let s = _mm_loadu_pd(tile_s.as_ptr().add(off));
            let r = match form {
                AffineForm::Standardize => _mm_div_pd(_mm_sub_pd(v, m), s),
                AffineForm::Unstandardize => _mm_add_pd(_mm_mul_pd(v, s), m),
            };
            _mm_storeu_pd(data.as_mut_ptr().add(base + off), r);
            off += 2;
        }
        base += tile_len;
    }
    affine_scalar(means, stds, &mut data[main..], form);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn affine_avx2(means: &[f64], stds: &[f64], data: &mut [f64], form: AffineForm) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_storeu_pd,
        _mm256_sub_pd,
    };
    let mut tile_m = [0.0; MAX_TILE_DIM * 4];
    let mut tile_s = [0.0; MAX_TILE_DIM * 4];
    let tile_len = fill_tiles(means, stds, 4, &mut tile_m, &mut tile_s);
    let main = data.len() - data.len() % tile_len;
    let mut base = 0;
    while base < main {
        let mut off = 0;
        while off < tile_len {
            let v = _mm256_loadu_pd(data.as_ptr().add(base + off));
            let m = _mm256_loadu_pd(tile_m.as_ptr().add(off));
            let s = _mm256_loadu_pd(tile_s.as_ptr().add(off));
            let r = match form {
                AffineForm::Standardize => _mm256_div_pd(_mm256_sub_pd(v, m), s),
                AffineForm::Unstandardize => _mm256_add_pd(_mm256_mul_pd(v, s), m),
            };
            _mm256_storeu_pd(data.as_mut_ptr().add(base + off), r);
            off += 4;
        }
        base += tile_len;
    }
    affine_scalar(means, stds, &mut data[main..], form);
}

// ---------------------------------------------------------------------
// Kernel 3: LUT scaled squared distances over an SoA sample table.
// ---------------------------------------------------------------------

/// Computes the scaled squared distance of every stored sample to one
/// query over `DIMS` feature axes: `features` holds `DIMS` rows of `n`
/// values (feature-major), and `out[r]` receives
/// `Σ_a ((features[a][r] - query[a]) / scales[a])²` accumulated in axis
/// order from `0.0` — the exact scalar sequence `LutTransfer` uses, so
/// downstream nearest-neighbour selection (including tie order) is
/// unchanged at every level.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given shape.
pub fn scaled_distances_soa<const DIMS: usize>(
    level: SimdLevel,
    features: &[f64],
    n: usize,
    query: &[f64; DIMS],
    scales: &[f64; DIMS],
    out: &mut [f64],
) {
    assert_eq!(features.len(), DIMS * n, "feature table shape mismatch");
    assert_eq!(out.len(), n, "output shape mismatch");
    match level {
        SimdLevel::Scalar => scaled_distances_scalar(features, n, query, scales, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level provenance as in `dense_forward_soa`.
        SimdLevel::Sse2 => unsafe { scaled_distances_sse2(features, n, query, scales, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level provenance as in `dense_forward_soa`.
        SimdLevel::Avx2 => unsafe { scaled_distances_avx2(features, n, query, scales, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scaled_distances_scalar(features, n, query, scales, out),
    }
}

fn scaled_distances_scalar<const DIMS: usize>(
    features: &[f64],
    n: usize,
    query: &[f64; DIMS],
    scales: &[f64; DIMS],
    out: &mut [f64],
) {
    for (r, slot) in out.iter_mut().enumerate() {
        let mut d2 = 0.0;
        for a in 0..DIMS {
            let d = (features[a * n + r] - query[a]) / scales[a];
            d2 += d * d;
        }
        *slot = d2;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn scaled_distances_sse2<const DIMS: usize>(
    features: &[f64],
    n: usize,
    query: &[f64; DIMS],
    scales: &[f64; DIMS],
    out: &mut [f64],
) {
    use std::arch::x86_64::{
        _mm_add_pd, _mm_div_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_setzero_pd,
        _mm_storeu_pd, _mm_sub_pd,
    };
    let main = n - n % 2;
    let mut r = 0;
    while r < main {
        let mut acc = _mm_setzero_pd();
        for a in 0..DIMS {
            let f = _mm_loadu_pd(features.as_ptr().add(a * n + r));
            let d = _mm_div_pd(_mm_sub_pd(f, _mm_set1_pd(query[a])), _mm_set1_pd(scales[a]));
            acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
        }
        _mm_storeu_pd(out.as_mut_ptr().add(r), acc);
        r += 2;
    }
    scaled_distances_tail(features, n, main, query, scales, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scaled_distances_avx2<const DIMS: usize>(
    features: &[f64],
    n: usize,
    query: &[f64; DIMS],
    scales: &[f64; DIMS],
    out: &mut [f64],
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };
    let main = n - n % 4;
    let mut r = 0;
    while r < main {
        let mut acc = _mm256_setzero_pd();
        for a in 0..DIMS {
            let f = _mm256_loadu_pd(features.as_ptr().add(a * n + r));
            let d = _mm256_div_pd(
                _mm256_sub_pd(f, _mm256_set1_pd(query[a])),
                _mm256_set1_pd(scales[a]),
            );
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(r), acc);
        r += 4;
    }
    scaled_distances_tail(features, n, main, query, scales, out);
}

#[cfg(target_arch = "x86_64")]
fn scaled_distances_tail<const DIMS: usize>(
    features: &[f64],
    n: usize,
    from: usize,
    query: &[f64; DIMS],
    scales: &[f64; DIMS],
    out: &mut [f64],
) {
    for (r, slot) in out.iter_mut().enumerate().take(n).skip(from) {
        let mut d2 = 0.0;
        for a in 0..DIMS {
            let d = (features[a * n + r] - query[a]) / scales[a];
            d2 += d * d;
        }
        *slot = d2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn policy_names_round_trip() {
        for (name, policy) in [
            ("off", SimdPolicy::Off),
            ("scalar", SimdPolicy::Force(SimdLevel::Scalar)),
            ("auto", SimdPolicy::Auto),
            ("sse2", SimdPolicy::Force(SimdLevel::Sse2)),
            ("avx2", SimdPolicy::Force(SimdLevel::Avx2)),
        ] {
            assert_eq!(SimdPolicy::from_name(name), Some(policy), "{name}");
            assert_eq!(
                SimdPolicy::from_name(&name.to_ascii_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(SimdPolicy::from_name("mmx"), None);
        assert_eq!(SimdPolicy::from_name(""), None);
    }

    #[test]
    fn force_clamps_to_detected() {
        let best = detected_best();
        assert!(SimdPolicy::Force(SimdLevel::Avx2).resolve() <= best);
        assert_eq!(SimdPolicy::Off.resolve(), SimdLevel::Scalar);
        assert_eq!(SimdPolicy::Auto.resolve(), best);
    }

    #[test]
    fn available_starts_scalar_and_is_sorted() {
        let levels = SimdLevel::available();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
    }

    fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len)
            .map(|_| {
                let mag = 10f64.powi(rng.gen_range(-12..12));
                rng.gen_range(-1.0..1.0) * mag
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} {x} vs {y}");
        }
    }

    proptest! {
        /// Dense-kernel parity: every available level is bit-identical
        /// to the scalar reference on random shapes × random data
        /// (hosts without AVX2 simply don't iterate that level).
        #[test]
        fn dense_kernel_parity(
            seed in 0u64..u64::MAX,
            inputs in 1usize..12,
            outputs in 1usize..12,
            n in 0usize..40,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let weights = random_vec(&mut rng, inputs * outputs);
            let biases = random_vec(&mut rng, outputs);
            let x = random_vec(&mut rng, inputs * n);
            let mut reference = vec![0.0; outputs * n];
            dense_forward_soa(
                SimdLevel::Scalar, inputs, outputs, &weights, &biases, &x, n, &mut reference,
            );
            for level in SimdLevel::available() {
                let mut out = vec![f64::NAN; outputs * n];
                dense_forward_soa(level, inputs, outputs, &weights, &biases, &x, n, &mut out);
                assert_bits_eq(&out, &reference, level.as_str());
            }
        }

        /// Standardize/unstandardize parity at every available level,
        /// including dims that straddle the tile width.
        #[test]
        fn affine_kernel_parity(
            seed in 0u64..u64::MAX,
            dim in 1usize..10,
            rows in 0usize..40,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let means = random_vec(&mut rng, dim);
            let stds: Vec<f64> = random_vec(&mut rng, dim)
                .into_iter()
                .map(|s| s.abs().max(1e-12))
                .collect();
            let data = random_vec(&mut rng, dim * rows);
            for form in [AffineForm::Standardize, AffineForm::Unstandardize] {
                let mut reference = data.clone();
                affine_rows(SimdLevel::Scalar, &means, &stds, &mut reference, form);
                for level in SimdLevel::available() {
                    let mut out = data.clone();
                    affine_rows(level, &means, &stds, &mut out, form);
                    assert_bits_eq(&out, &reference, level.as_str());
                }
            }
        }

        /// LUT distance-kernel parity at every available level.
        #[test]
        fn distance_kernel_parity(
            seed in 0u64..u64::MAX,
            n in 0usize..50,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let features = random_vec(&mut rng, 3 * n);
            let query = [
                rng.gen_range(-20.0..20.0),
                rng.gen_range(-20.0..20.0),
                rng.gen_range(-20.0..20.0),
            ];
            let scales = [
                rng.gen_range(0.01..10.0f64),
                rng.gen_range(0.01..10.0),
                rng.gen_range(0.01..10.0),
            ];
            let mut reference = vec![0.0; n];
            scaled_distances_soa(SimdLevel::Scalar, &features, n, &query, &scales, &mut reference);
            for level in SimdLevel::available() {
                let mut out = vec![f64::NAN; n];
                scaled_distances_soa(level, &features, n, &query, &scales, &mut out);
                assert_bits_eq(&out, &reference, level.as_str());
            }
        }
    }
}
