//! Mini-batch training loop with shuffling and optional validation split.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::adam::AdamOptimizer;
use crate::mlp::Mlp;

/// Configuration of the training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Stop early if the (validation or training) loss has not improved for
    /// this many epochs; `0` disables early stopping.
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 400,
            batch_size: 32,
            learning_rate: 5e-3,
            seed: 0,
            patience: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
    /// Mean training loss per epoch.
    pub history: Vec<f64>,
    /// Validation loss per epoch (empty when trained without a split).
    pub validation_history: Vec<f64>,
    /// Epochs actually run (≤ `epochs` with early stopping).
    pub epochs_run: usize,
}

/// Trains `mlp` on `(inputs, targets)` with mini-batch Adam.
///
/// # Panics
///
/// Panics if the dataset is empty, lengths mismatch, or row sizes do not
/// match the network.
pub fn train(
    mlp: &mut Mlp,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    config: &TrainConfig,
) -> TrainReport {
    train_with_validation(mlp, inputs, targets, &[], &[], config)
}

/// Trains with an explicit validation set; early stopping (if enabled)
/// watches the validation loss when a validation set is given, otherwise
/// the training loss.
///
/// # Panics
///
/// Panics if the training set is empty or shapes are inconsistent.
pub fn train_with_validation(
    mlp: &mut Mlp,
    inputs: &[Vec<f64>],
    targets: &[Vec<f64>],
    val_inputs: &[Vec<f64>],
    val_targets: &[Vec<f64>],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!inputs.is_empty(), "training set must be non-empty");
    assert_eq!(
        inputs.len(),
        targets.len(),
        "inputs/targets length mismatch"
    );
    assert_eq!(
        val_inputs.len(),
        val_targets.len(),
        "validation length mismatch"
    );

    let mut opt = AdamOptimizer::new(mlp, config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let batch = config.batch_size.clamp(1, inputs.len());

    let mut history = Vec::with_capacity(config.epochs);
    let mut validation_history = Vec::new();
    let mut best = f64::INFINITY;
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;

    for _ in 0..config.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(batch) {
            let mut grads = mlp.zero_gradients();
            let mut loss = 0.0;
            for &i in chunk {
                loss += mlp.backward(&inputs[i], &targets[i], &mut grads);
            }
            grads.scale(1.0 / chunk.len() as f64);
            opt.step(mlp, &grads);
            epoch_loss += loss;
        }
        epoch_loss /= inputs.len() as f64;
        history.push(epoch_loss);

        let watch = if val_inputs.is_empty() {
            epoch_loss
        } else {
            let v = evaluate(mlp, val_inputs, val_targets);
            validation_history.push(v);
            v
        };
        if config.patience > 0 {
            if watch < best - 1e-15 {
                best = watch;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= config.patience {
                    break;
                }
            }
        }
    }

    TrainReport {
        final_loss: *history.last().expect("at least one epoch"),
        history,
        validation_history,
        epochs_run,
    }
}

/// Mean MSE of `mlp` over a dataset.
///
/// # Panics
///
/// Panics if lengths mismatch or the set is empty.
#[must_use]
pub fn evaluate(mlp: &Mlp, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    assert!(!inputs.is_empty(), "evaluation set must be non-empty");
    assert_eq!(inputs.len(), targets.len());
    let mut total = 0.0;
    for (x, t) in inputs.iter().zip(targets) {
        let y = mlp.forward(x);
        total += y.iter().zip(t).map(|(y, t)| (y - t) * (y - t)).sum::<f64>() / t.len() as f64;
    }
    total / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        (xs, ys)
    }

    #[test]
    fn learns_xor() {
        let (xs, ys) = xor_data();
        let mut mlp = Mlp::new(&[2, 8, 8, 1], 3);
        let rep = train(
            &mut mlp,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 2000,
                batch_size: 4,
                learning_rate: 1e-2,
                ..Default::default()
            },
        );
        assert!(rep.final_loss < 1e-3, "final loss {}", rep.final_loss);
        for (x, y) in xs.iter().zip(&ys) {
            let p = mlp.forward(x)[0];
            assert!((p - y[0]).abs() < 0.1, "xor({x:?}) = {p}");
        }
    }

    #[test]
    fn loss_decreases_overall() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![(3.0 * x[0]).sin()]).collect();
        let mut mlp = Mlp::new(&[1, 16, 16, 1], 1);
        let rep = train(
            &mut mlp,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 150,
                ..Default::default()
            },
        );
        let early: f64 = rep.history[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = rep.history[rep.history.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early / 5.0, "early {early}, late {late}");
    }

    #[test]
    fn early_stopping_truncates() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![vec![0.0], vec![1.0]];
        let mut mlp = Mlp::new(&[1, 4, 1], 0);
        let rep = train(
            &mut mlp,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 10_000,
                patience: 20,
                ..Default::default()
            },
        );
        assert!(rep.epochs_run < 10_000, "ran {}", rep.epochs_run);
    }

    #[test]
    fn validation_history_populated() {
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 32.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0]]).collect();
        let mut mlp = Mlp::new(&[1, 4, 1], 0);
        let rep = train_with_validation(
            &mut mlp,
            &xs,
            &ys,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert_eq!(rep.validation_history.len(), rep.epochs_run);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 0.5]).collect();
        let mut a = Mlp::new(&[1, 4, 1], 7);
        let mut b = Mlp::new(&[1, 4, 1], 7);
        let cfg = TrainConfig {
            epochs: 20,
            ..Default::default()
        };
        train(&mut a, &xs, &ys, &cfg);
        train(&mut b, &xs, &ys, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let mut mlp = Mlp::new(&[1, 1], 0);
        let _ = train(&mut mlp, &[], &[], &TrainConfig::default());
    }
}
