//! Dense feed-forward network with ReLU hidden layers and a linear output.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::simd::{self, SimdLevel};

/// Rows per [`Mlp::forward_batch`] call — count doubles as the number of
/// inference batches served, sum as the total rows inferred.
static BATCH_ROWS: sigobs::Hist = sigobs::Hist::new("nn.batch_rows");

/// One dense layer: `y = W x + b` with `W` stored row-major (`out × in`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    inputs: usize,
    outputs: usize,
    /// Row-major weights, `outputs × inputs`.
    weights: Vec<f64>,
    biases: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialization, appropriate for ReLU nets.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-1.0..1.0) * scale)
            .collect();
        Self {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut s = self.biases[o];
            for (w, xi) in row.iter().zip(x) {
                s += w * xi;
            }
            out.push(s);
        }
    }

    /// Batched forward pass over `rows` row-major samples. Per-row
    /// arithmetic is the exact accumulation order of [`Dense::forward`],
    /// so results are bit-identical to the scalar pass.
    fn forward_batch(&self, x: &[f64], rows: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(rows * self.outputs);
        for r in 0..rows {
            let xr = &x[r * self.inputs..(r + 1) * self.inputs];
            for o in 0..self.outputs {
                let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
                let mut s = self.biases[o];
                for (w, xi) in row.iter().zip(xr) {
                    s += w * xi;
                }
                out.push(s);
            }
        }
    }
}

thread_local! {
    /// Ping-pong activation buffers for the batched passes: reused
    /// across calls so steady-state inference allocates nothing
    /// (workers each keep their own pair).
    static SOA_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A multilayer perceptron: ReLU on all hidden layers, linear output layer —
/// the architecture family used for the paper's transfer functions
/// (`[3, 10, 10, 5, 1]` in Fig. 2).
///
/// # Example
///
/// ```
/// use signn::Mlp;
/// let mlp = Mlp::paper_architecture(3, 7);
/// assert_eq!(mlp.layer_sizes(), &[3, 10, 10, 5, 1]);
/// let y = mlp.forward(&[0.1, 0.2, 0.3]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    sizes: Vec<usize>,
}

/// Per-parameter gradients of an [`Mlp`], same shapes as the network.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGradients {
    pub(crate) weights: Vec<Vec<f64>>,
    pub(crate) biases: Vec<Vec<f64>>,
}

impl MlpGradients {
    fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            weights: mlp
                .layers
                .iter()
                .map(|l| vec![0.0; l.weights.len()])
                .collect(),
            biases: mlp
                .layers
                .iter()
                .map(|l| vec![0.0; l.biases.len()])
                .collect(),
        }
    }

    /// Scales all gradients by `f` (e.g. `1 / batch_size`).
    pub fn scale(&mut self, f: f64) {
        for w in &mut self.weights {
            for v in w {
                *v *= f;
            }
        }
        for b in &mut self.biases {
            for v in b {
                *v *= f;
            }
        }
    }
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (first = inputs, last =
    /// outputs) and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            layers,
            sizes: sizes.to_vec(),
        }
    }

    /// The paper's architecture (Fig. 2): `inputs → 10 → 10 → 5 → 1`.
    #[must_use]
    pub fn paper_architecture(inputs: usize, seed: u64) -> Self {
        Self::new(&[inputs, 10, 10, 5, 1], seed)
    }

    /// Layer sizes, including input and output.
    #[must_use]
    pub fn layer_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of scalar inputs.
    #[must_use]
    pub fn input_size(&self) -> usize {
        self.sizes[0]
    }

    /// Number of scalar outputs.
    #[must_use]
    pub fn output_size(&self) -> usize {
        *self.sizes.last().expect("at least two sizes")
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input size.
    #[must_use]
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_size(), "input size mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if i + 1 < n {
                for v in &mut next {
                    *v = v.max(0.0); // ReLU on hidden layers
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Batched forward pass: `x` is a row-major `n_rows × input_size`
    /// matrix; `out` is overwritten with the row-major
    /// `n_rows × output_size` result.
    ///
    /// One pass per layer over the whole batch, with two ping-pong scratch
    /// buffers for the entire call — no per-sample allocation. Each row's
    /// result is bit-identical to [`Mlp::forward`] on that row, so batched
    /// and scalar inference are interchangeable (the levelized simulator
    /// relies on this; see `docs/architecture.md` § Levelized batched engine).
    ///
    /// # Example
    ///
    /// ```
    /// use signn::Mlp;
    /// let mlp = Mlp::paper_architecture(3, 7);
    /// let rows = [[0.1, 0.2, 0.3], [-1.0, 0.5, 2.0]];
    /// let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    /// let mut out = Vec::new();
    /// mlp.forward_batch(&flat, 2, &mut out);
    /// assert_eq!(out[0], mlp.forward(&rows[0])[0]);
    /// assert_eq!(out[1], mlp.forward(&rows[1])[0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not `n_rows * input_size`.
    pub fn forward_batch(&self, x: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        BATCH_ROWS.record(n_rows as u64);
        self.forward_batch_at(simd::active_level(), x, n_rows, out);
    }

    /// [`Mlp::forward_batch`] with an explicit kernel level — the parity
    /// tests pin levels through this; production code uses the resolved
    /// global policy via [`Mlp::forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not `n_rows * input_size`.
    pub fn forward_batch_at(&self, level: SimdLevel, x: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        assert_eq!(
            x.len(),
            n_rows * self.input_size(),
            "batch size mismatch: {} values for {} rows of {}",
            x.len(),
            n_rows,
            self.input_size()
        );
        out.clear();
        if n_rows == 0 {
            return;
        }
        if level == SimdLevel::Scalar {
            self.forward_batch_rows(x, n_rows, out);
        } else {
            self.forward_batch_soa(level, x, n_rows, out);
        }
    }

    /// The row-major (AoS) reference pass: one [`Dense::forward_batch`]
    /// per layer, scratch ping-pong, no transposes.
    fn forward_batch_rows(&self, x: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        SOA_SCRATCH.with(|cell| {
            let (cur, next) = &mut *cell.borrow_mut();
            cur.clear();
            cur.extend_from_slice(x);
            let n = self.layers.len();
            for (i, layer) in self.layers.iter().enumerate() {
                layer.forward_batch(cur, n_rows, next);
                if i + 1 < n {
                    for v in next.iter_mut() {
                        *v = v.max(0.0); // ReLU on hidden layers
                    }
                }
                std::mem::swap(cur, next);
            }
            out.extend_from_slice(cur);
        });
    }

    /// The SIMD pass: the batch is transposed once into
    /// structure-of-arrays form (one buffer row per feature, one SIMD
    /// lane per sample), every layer runs through
    /// [`simd::dense_forward_soa`], and the result transposes back.
    /// Per-sample arithmetic order is exactly the scalar pass (the
    /// kernel's contract), and transposition only moves values, so the
    /// output is bit-identical to [`Mlp::forward_batch_rows`].
    fn forward_batch_soa(&self, level: SimdLevel, x: &[f64], n: usize, out: &mut Vec<f64>) {
        SOA_SCRATCH.with(|cell| {
            let (cur, next) = &mut *cell.borrow_mut();
            let d_in = self.input_size();
            // `resize` without `clear`: every element is overwritten below
            // (and by the kernel), so steady-state reuse of the scratch
            // pays no zero-fill — only growth beyond the high-water mark
            // initializes memory.
            cur.resize(d_in * n, 0.0);
            for r in 0..n {
                for i in 0..d_in {
                    cur[i * n + r] = x[r * d_in + i];
                }
            }
            let layer_count = self.layers.len();
            for (li, layer) in self.layers.iter().enumerate() {
                next.resize(layer.outputs * n, 0.0);
                simd::dense_forward_soa(
                    level,
                    layer.inputs,
                    layer.outputs,
                    &layer.weights,
                    &layer.biases,
                    cur,
                    n,
                    next,
                );
                if li + 1 < layer_count {
                    for v in next.iter_mut() {
                        *v = v.max(0.0); // ReLU on hidden layers (scalar:
                                         // `f64::max` semantics, not `maxpd`)
                    }
                }
                std::mem::swap(cur, next);
            }
            let d_out = self.output_size();
            out.resize(n * d_out, 0.0);
            for o in 0..d_out {
                for r in 0..n {
                    out[r * d_out + o] = cur[o * n + r];
                }
            }
        });
    }

    /// Forward + backward pass for one sample under MSE loss
    /// (`L = Σ (y - t)² / outputs`); accumulates gradients into `grads` and
    /// returns the sample loss.
    ///
    /// # Panics
    ///
    /// Panics on input/target size mismatches.
    pub fn backward(&self, x: &[f64], target: &[f64], grads: &mut MlpGradients) -> f64 {
        assert_eq!(x.len(), self.input_size(), "input size mismatch");
        assert_eq!(target.len(), self.output_size(), "target size mismatch");

        // Forward, remembering post-activation values of every layer.
        let n = self.layers.len();
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        activations.push(x.to_vec());
        let mut buf = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(activations.last().expect("pushed"), &mut buf);
            if i + 1 < n {
                for v in &mut buf {
                    *v = v.max(0.0);
                }
            }
            activations.push(buf.clone());
        }
        let output = activations.last().expect("pushed");
        let m = self.output_size() as f64;
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / m;

        // Backward: delta on the output (linear) layer.
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .map(|(y, t)| 2.0 * (y - t) / m)
            .collect();
        for li in (0..n).rev() {
            let layer = &self.layers[li];
            let input = &activations[li];
            // Accumulate gradients.
            for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                grads.biases[li][o] += d;
                let row = &mut grads.weights[li][o * layer.inputs..(o + 1) * layer.inputs];
                for (g, xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if li == 0 {
                break;
            }
            // Propagate delta through W and the previous ReLU.
            let mut prev = vec![0.0; layer.inputs];
            for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                for (p, w) in prev.iter_mut().zip(row) {
                    *p += w * d;
                }
            }
            // ReLU derivative: post-activation of layer li-1 is zero exactly
            // where the unit was clamped.
            for (p, a) in prev.iter_mut().zip(&activations[li]) {
                if *a <= 0.0 {
                    *p = 0.0;
                }
            }
            delta = prev;
        }
        loss
    }

    /// A fresh zero-gradient buffer matching this network.
    #[must_use]
    pub fn zero_gradients(&self) -> MlpGradients {
        MlpGradients::zeros_like(self)
    }

    /// Applies a parameter update `p -= update` elementwise, where `update`
    /// has gradient shapes (used by optimizers).
    pub(crate) fn apply_update(&mut self, update: &MlpGradients) {
        for (layer, (dw, db)) in self
            .layers
            .iter_mut()
            .zip(update.weights.iter().zip(&update.biases))
        {
            for (w, d) in layer.weights.iter_mut().zip(dw) {
                *w -= d;
            }
            for (b, d) in layer.biases.iter_mut().zip(db) {
                *b -= d;
            }
        }
    }

    /// Flat view of all parameters (weights then biases, per layer) — used
    /// by tests and optimizers.
    #[must_use]
    pub fn flat_parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for l in &self.layers {
            out.extend_from_slice(&l.weights);
            out.extend_from_slice(&l.biases);
        }
        out
    }

    /// Overwrites all parameters from a flat vector (inverse of
    /// [`Mlp::flat_parameters`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` does not equal [`Mlp::parameter_count`].
    pub fn set_flat_parameters(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.parameter_count(),
            "parameter count mismatch"
        );
        let mut i = 0;
        for l in &mut self.layers {
            let wlen = l.weights.len();
            l.weights.copy_from_slice(&flat[i..i + wlen]);
            i += wlen;
            let blen = l.biases.len();
            l.biases.copy_from_slice(&flat[i..i + blen]);
            i += blen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let mlp = Mlp::paper_architecture(3, 0);
        assert_eq!(mlp.input_size(), 3);
        assert_eq!(mlp.output_size(), 1);
        // (3*10+10) + (10*10+10) + (10*5+5) + (5*1+1) = 40+110+55+6 = 211
        assert_eq!(mlp.parameter_count(), 211);
    }

    #[test]
    fn deterministic_seeding() {
        let a = Mlp::new(&[2, 4, 1], 9);
        let b = Mlp::new(&[2, 4, 1], 9);
        let c = Mlp::new(&[2, 4, 1], 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn forward_checks_input_size() {
        let mlp = Mlp::new(&[2, 2, 1], 0);
        let _ = mlp.forward(&[1.0]);
    }

    #[test]
    fn flat_parameters_round_trip() {
        let mut a = Mlp::new(&[3, 5, 2], 1);
        let b = Mlp::new(&[3, 5, 2], 2);
        a.set_flat_parameters(&b.flat_parameters());
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut mlp = Mlp::new(&[2, 6, 4, 1], 3);
        // Nudge every parameter (including the zero-initialized biases) off
        // the ReLU kink: at a pre-activation of exactly 0 the subgradient
        // and finite differences legitimately disagree.
        let nudged: Vec<f64> = mlp
            .flat_parameters()
            .iter()
            .enumerate()
            .map(|(i, p)| p + 0.011 * ((i % 7) as f64 + 1.0))
            .collect();
        mlp.set_flat_parameters(&nudged);
        let x = [0.3, -0.7];
        let t = [0.42];

        let mut grads = mlp.zero_gradients();
        mlp.backward(&x, &t, &mut grads);

        // Flatten analytic gradients in the same order as flat_parameters.
        let mut flat_grad = Vec::new();
        for (w, b) in grads.weights.iter().zip(&grads.biases) {
            flat_grad.extend_from_slice(w);
            flat_grad.extend_from_slice(b);
        }

        let params = mlp.flat_parameters();
        let mut worst = 0.0f64;
        for i in 0..params.len() {
            let h = 1e-6;
            let mut p = params.clone();
            p[i] += h;
            let mut m = mlp.clone();
            m.set_flat_parameters(&p);
            let up = loss_of(&m, &x, &t);
            p[i] -= 2.0 * h;
            m.set_flat_parameters(&p);
            let down = loss_of(&m, &x, &t);
            let fd = (up - down) / (2.0 * h);
            worst = worst.max((fd - flat_grad[i]).abs());
        }
        assert!(worst < 1e-6, "max gradient error {worst}");
    }

    fn loss_of(m: &Mlp, x: &[f64], t: &[f64]) -> f64 {
        let y = m.forward(x);
        y.iter().zip(t).map(|(y, t)| (y - t) * (y - t)).sum::<f64>() / t.len() as f64
    }

    #[test]
    fn forward_batch_bit_identical_to_scalar() {
        let mlp = Mlp::new(&[3, 10, 10, 5, 2], 17);
        let rows: Vec<[f64; 3]> = (0..23)
            .map(|i| {
                let f = i as f64;
                [0.3 * f - 2.0, (-0.7f64).powi(i), f.sin() * 5.0]
            })
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut out = Vec::new();
        mlp.forward_batch(&flat, rows.len(), &mut out);
        assert_eq!(out.len(), rows.len() * 2);
        for (r, row) in rows.iter().enumerate() {
            let scalar = mlp.forward(row);
            // Bit-identical, not merely close: the batched pass must be a
            // drop-in replacement on the simulator hot path.
            assert_eq!(&out[r * 2..r * 2 + 2], &scalar[..], "row {r}");
        }
    }

    proptest::proptest! {
        /// The whole-network SIMD pass (SoA transpose + kernels) is
        /// bit-identical to the row-major scalar pass at every level
        /// the host supports.
        #[test]
        fn forward_batch_simd_levels_bit_identical(
            seed in 0u64..u64::MAX,
            rows in 0usize..30,
            hidden in 1usize..12,
        ) {
            use proptest::prelude::prop_assert_eq;
            let mlp = Mlp::new(&[3, hidden, hidden, 1], seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let flat: Vec<f64> = (0..rows * 3)
                .map(|_| rng.gen_range(-1.0..1.0) * 10f64.powi(rng.gen_range(-9..9)))
                .collect();
            let mut reference = Vec::new();
            mlp.forward_batch_at(SimdLevel::Scalar, &flat, rows, &mut reference);
            for level in crate::simd::SimdLevel::available() {
                let mut out = Vec::new();
                mlp.forward_batch_at(level, &flat, rows, &mut out);
                prop_assert_eq!(out.len(), reference.len());
                for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "level {} row-value {}: {} vs {}", level.as_str(), i, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn forward_batch_empty_and_single() {
        let mlp = Mlp::paper_architecture(3, 3);
        let mut out = vec![1.0; 4];
        mlp.forward_batch(&[], 0, &mut out);
        assert!(out.is_empty());
        mlp.forward_batch(&[0.5, -0.5, 1.0], 1, &mut out);
        assert_eq!(out, mlp.forward(&[0.5, -0.5, 1.0]));
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn forward_batch_checks_size() {
        let mlp = Mlp::new(&[2, 2, 1], 0);
        let mut out = Vec::new();
        mlp.forward_batch(&[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    fn serde_round_trip() {
        let mlp = Mlp::paper_architecture(3, 11);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(mlp, back);
        let x = [0.5, -0.5, 1.0];
        assert_eq!(mlp.forward(&x), back.forward(&x));
    }

    #[test]
    fn relu_clamps_hidden_only() {
        // A 1-1 "network" (no hidden layer) is purely linear: negative
        // outputs must pass through.
        let mut mlp = Mlp::new(&[1, 1], 0);
        let n = mlp.parameter_count();
        mlp.set_flat_parameters(&vec![-1.0; n]); // w=-1, b=-1
        let y = mlp.forward(&[1.0]);
        assert!((y[0] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_scale() {
        let mlp = Mlp::new(&[1, 2, 1], 0);
        let mut g = mlp.zero_gradients();
        mlp.backward(&[1.0], &[0.0], &mut g);
        let before = g.weights[0][0];
        g.scale(0.5);
        assert!((g.weights[0][0] - 0.5 * before).abs() < 1e-15);
    }
}
