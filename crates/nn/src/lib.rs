//! A minimal multilayer-perceptron library for gate transfer functions.
//!
//! The paper (Sec. IV) implements each TOM transfer function with a small
//! MLP: "two inner layers with 10 neurons each and a third layer with 5
//! neurons, with each neuron using a ReLU activation function", trained on
//! SPICE-derived data in minutes on a laptop. This crate provides exactly
//! that capability from scratch:
//!
//! * [`Mlp`] — dense feed-forward network with ReLU hidden layers and a
//!   linear output, He initialization, forward and backward passes, plus
//!   [`Mlp::forward_batch`]: row-major batched inference, one pass per
//!   layer, bit-identical per row to the scalar pass — the inference form
//!   the levelized simulator feeds whole circuit levels through (see
//!   `docs/architecture.md` § Levelized batched engine).
//! * [`AdamOptimizer`] — Adam with the usual bias correction.
//! * [`Standardizer`] — per-feature mean/std normalization of inputs and
//!   targets (essential for the picosecond-scale features involved), with
//!   batch-aware forms ([`Standardizer::transform_batch`]/
//!   [`Standardizer::inverse_batch`]) and [`ScaledModel::predict_batch`].
//! * [`train`] — a mini-batch training loop with shuffling and optional
//!   early stopping on a validation split.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 kernels (std-only, scalar
//!   fallback elsewhere) behind a process-global [`simd::SimdPolicy`];
//!   the batch entry points above route through them while staying
//!   bit-identical to the scalar loops (see `docs/architecture.md`
//!   § SIMD kernels & fleet execution).
//!
//! Models serialize with serde so trained transfer functions can be stored
//! on disk, mirroring the artifacts of the paper's prototype.
//!
//! # Example
//!
//! ```
//! use signn::{Mlp, TrainConfig, train};
//!
//! // Learn y = 2x on [0, 1].
//! let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
//! let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
//! let mut mlp = Mlp::new(&[1, 8, 1], 42);
//! let report = train(&mut mlp, &xs, &ys, &TrainConfig { epochs: 300, ..Default::default() });
//! assert!(report.final_loss < 1e-3);
//! let out = mlp.forward(&[0.25]);
//! assert!((out[0] - 0.5).abs() < 0.1);
//! ```

// `unsafe` is denied everywhere except the `simd` module, whose
// `std::arch` intrinsics need it (each call site carries its safety
// argument; the rest of the crate stays unsafe-free).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod mlp;
mod scaler;
pub mod simd;
mod train;

pub use adam::AdamOptimizer;
pub use mlp::{Mlp, MlpGradients};
pub use scaler::{ScaledModel, Standardizer};
pub use train::{train, train_with_validation, TrainConfig, TrainReport};
