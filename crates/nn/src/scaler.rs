//! Feature standardization and the scaled-model wrapper.
//!
//! The TOM features mix quantities of very different ranges (scaled times in
//! units of 100 ps, slopes in the tens); standardizing both inputs and
//! targets keeps the small ReLU networks in a well-conditioned regime.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use crate::mlp::Mlp;
use crate::simd;

/// Per-feature mean/std normalization fitted on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations per feature column.
    ///
    /// Columns with (near-)zero variance get `std = 1` so they pass through
    /// unscaled instead of dividing by zero.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    #[must_use]
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a standardizer on no data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "all rows must have the same length"
        );
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for row in data {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in data {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Identity transform of the given dimension.
    #[must_use]
    pub fn identity(dim: usize) -> Self {
        Self {
            means: vec![0.0; dim],
            stds: vec![1.0; dim],
        }
    }

    /// Number of features.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes a row: `(x - mean) / std`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Inverts the transform: `x * std + mean`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| v * s + m)
            .collect()
    }

    /// Standardizes `n_rows` row-major rows into `out` without per-row
    /// allocation. Elementwise math is identical to
    /// [`Standardizer::transform`], so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not `n_rows * dim`.
    pub fn transform_batch(&self, rows: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        assert_eq!(rows.len(), n_rows * self.dim(), "batch size mismatch");
        out.clear();
        out.extend_from_slice(rows);
        if self.dim() > 0 {
            simd::standardize_rows(simd::active_level(), &self.means, &self.stds, out);
        }
    }

    /// Inverts the transform for `n_rows` row-major rows into `out`
    /// (batch form of [`Standardizer::inverse`], bit-identical per row).
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not `n_rows * dim`.
    pub fn inverse_batch(&self, rows: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        assert_eq!(rows.len(), n_rows * self.dim(), "batch size mismatch");
        out.clear();
        out.extend_from_slice(rows);
        if self.dim() > 0 {
            simd::unstandardize_rows(simd::active_level(), &self.means, &self.stds, out);
        }
    }
}

thread_local! {
    /// Standardized-input / raw-output staging buffers for
    /// [`ScaledModel::predict_batch`], reused across calls so the
    /// simulator hot path allocates nothing per batch.
    static PREDICT_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// An [`Mlp`] bundled with input/output standardizers: callers work in
/// physical units, the network sees standardized values. This is the form a
/// trained transfer function is stored in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaledModel {
    /// The trained network (operates on standardized values).
    pub mlp: Mlp,
    /// Input standardizer.
    pub input_scaler: Standardizer,
    /// Output standardizer.
    pub output_scaler: Standardizer,
}

impl ScaledModel {
    /// Wraps a network with the scalers fitted from raw training data.
    ///
    /// # Panics
    ///
    /// Panics if scaler dimensions do not match the network.
    #[must_use]
    pub fn new(mlp: Mlp, input_scaler: Standardizer, output_scaler: Standardizer) -> Self {
        assert_eq!(mlp.input_size(), input_scaler.dim(), "input scaler dim");
        assert_eq!(mlp.output_size(), output_scaler.dim(), "output scaler dim");
        Self {
            mlp,
            input_scaler,
            output_scaler,
        }
    }

    /// Predicts in physical units.
    #[must_use]
    pub fn predict(&self, raw_input: &[f64]) -> Vec<f64> {
        let x = self.input_scaler.transform(raw_input);
        let y = self.mlp.forward(&x);
        self.output_scaler.inverse(&y)
    }

    /// Batched prediction in physical units: `raw_rows` is a row-major
    /// `n_rows × input_size` matrix; `out` is overwritten with the
    /// row-major `n_rows × output_size` predictions. Standardization,
    /// inference and inverse scaling each run as one pass over the batch
    /// (see [`Mlp::forward_batch`]); every row is bit-identical to
    /// [`ScaledModel::predict`] on that row.
    ///
    /// # Panics
    ///
    /// Panics if `raw_rows.len()` is not `n_rows * input_size`.
    pub fn predict_batch(&self, raw_rows: &[f64], n_rows: usize, out: &mut Vec<f64>) {
        PREDICT_SCRATCH.with(|cell| {
            let (x, y) = &mut *cell.borrow_mut();
            self.input_scaler.transform_batch(raw_rows, n_rows, x);
            self.mlp.forward_batch(x, n_rows, y);
            self.output_scaler.inverse_batch(y, n_rows, out);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_and_transform() {
        let data = vec![vec![1.0, 100.0], vec![3.0, 300.0]];
        let s = Standardizer::fit(&data);
        let t = s.transform(&[2.0, 200.0]);
        assert!(t[0].abs() < 1e-12 && t[1].abs() < 1e-12);
        let t = s.transform(&[3.0, 300.0]);
        assert!((t[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_passthrough() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&data);
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
        assert_eq!(s.inverse(&[0.0]), vec![5.0]);
    }

    #[test]
    fn identity_is_noop() {
        let s = Standardizer::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(s.transform(&x), x);
    }

    #[test]
    fn scaled_model_predicts_physical_units() {
        use crate::{train, TrainConfig};
        // y = 1000 * x on x in [0, 1e-3]: raw scales are hostile, the
        // standardized problem is trivial.
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 1e-3 / 64.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![1000.0 * x[0]]).collect();
        let in_s = Standardizer::fit(&xs);
        let out_s = Standardizer::fit(&ys);
        let xs_t: Vec<Vec<f64>> = xs.iter().map(|x| in_s.transform(x)).collect();
        let ys_t: Vec<Vec<f64>> = ys.iter().map(|y| out_s.transform(y)).collect();
        let mut mlp = Mlp::new(&[1, 8, 1], 2);
        train(
            &mut mlp,
            &xs_t,
            &ys_t,
            &TrainConfig {
                epochs: 200,
                ..Default::default()
            },
        );
        let model = ScaledModel::new(mlp, in_s, out_s);
        let y = model.predict(&[0.5e-3]);
        assert!((y[0] - 0.5).abs() < 0.05, "prediction {}", y[0]);
    }

    #[test]
    fn batch_scaling_bit_identical_to_scalar() {
        let data = vec![
            vec![1.0, 50.0, -3.0],
            vec![4.0, -20.0, 9.0],
            vec![2.5, 0.0, 1.0],
        ];
        let s = Standardizer::fit(&data);
        let rows: Vec<Vec<f64>> = (0..7)
            .map(|i| vec![i as f64 * 0.7, 100.0 - i as f64, (i as f64).cos()])
            .collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut fwd = Vec::new();
        s.transform_batch(&flat, rows.len(), &mut fwd);
        let mut back = Vec::new();
        s.inverse_batch(&fwd, rows.len(), &mut back);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(&fwd[r * 3..r * 3 + 3], &s.transform(row)[..], "row {r}");
            assert_eq!(
                &back[r * 3..r * 3 + 3],
                &s.inverse(&s.transform(row))[..],
                "row {r}"
            );
        }
    }

    #[test]
    fn scaled_model_predict_batch_bit_identical() {
        let mlp = Mlp::new(&[2, 6, 1], 5);
        let model = ScaledModel::new(
            mlp,
            Standardizer::fit(&[vec![0.0, -4.0], vec![2.0, 4.0]]),
            Standardizer::fit(&[vec![-10.0], vec![30.0]]),
        );
        let rows = [[0.1, -3.0], [1.9, 3.5], [-7.0, 40.0]];
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut out = Vec::new();
        model.predict_batch(&flat, rows.len(), &mut out);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(out[r], model.predict(row)[0], "row {r}");
        }
    }

    proptest! {
        #[test]
        fn transform_inverse_round_trip(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0..100.0f64, 3), 2..20),
            probe in proptest::collection::vec(-100.0..100.0f64, 3),
        ) {
            let s = Standardizer::fit(&rows);
            let back = s.inverse(&s.transform(&probe));
            for (a, b) in back.iter().zip(&probe) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
