//! The Adam optimizer (Kingma & Ba) with bias correction.

use serde::{Deserialize, Serialize};

use crate::mlp::{Mlp, MlpGradients};

/// Adam state: first/second moment estimates per parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamOptimizer {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    m_weights: Vec<Vec<f64>>,
    m_biases: Vec<Vec<f64>>,
    v_weights: Vec<Vec<f64>>,
    v_biases: Vec<Vec<f64>>,
}

impl AdamOptimizer {
    /// Creates an optimizer for `mlp` with the given learning rate and the
    /// standard moment decay rates (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive.
    #[must_use]
    pub fn new(mlp: &Mlp, learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        let g = mlp.zero_gradients();
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m_weights: g.weights.clone(),
            m_biases: g.biases.clone(),
            v_weights: g.weights,
            v_biases: g.biases,
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Changes the learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
    }

    /// Applies one Adam update to `mlp` from (mean) gradients `grads`.
    pub fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients) {
        self.step += 1;
        let t = self.step as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let mut update = mlp.zero_gradients();

        for li in 0..grads.weights.len() {
            for (slot, ((m, v), (g, u))) in self.m_weights[li]
                .iter_mut()
                .zip(&mut self.v_weights[li])
                .zip(grads.weights[li].iter().zip(&mut update.weights[li]))
                .enumerate()
            {
                let _ = slot;
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *u = self.learning_rate * mhat / (vhat.sqrt() + self.epsilon);
            }
            for ((m, v), (g, u)) in self.m_biases[li]
                .iter_mut()
                .zip(&mut self.v_biases[li])
                .zip(grads.biases[li].iter().zip(&mut update.biases[li]))
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *u = self.learning_rate * mhat / (vhat.sqrt() + self.epsilon);
            }
        }
        mlp.apply_update(&update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_on_quadratic() {
        // Fit y = 0 from a random single-layer net: loss must decrease.
        let mut mlp = Mlp::new(&[1, 1], 5);
        let mut opt = AdamOptimizer::new(&mlp, 0.05);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            let mut g = mlp.zero_gradients();
            let loss = mlp.backward(&[1.0], &[0.0], &mut g);
            opt.step(&mut mlp, &g);
            last = loss;
        }
        assert!(last < 1e-3, "loss {last}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        let mlp = Mlp::new(&[1, 1], 0);
        let _ = AdamOptimizer::new(&mlp, 0.0);
    }

    #[test]
    fn lr_mutator() {
        let mlp = Mlp::new(&[1, 1], 0);
        let mut opt = AdamOptimizer::new(&mlp, 0.1);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-15);
    }
}
