//! ISCAS-85 benchmark circuits used in the paper's evaluation (Table I).
//!
//! * [`c17`] — the exact 6-NAND netlist, embedded in `.bench` form.
//! * [`c499`] — a structurally faithful generator for the 32-bit
//!   single-error-correcting circuit: XOR syndrome trees over 41 inputs
//!   feeding a two-level decoder and 32 XOR correctors. The original
//!   netlist is reverse-engineering-encumbered; this surrogate preserves
//!   the properties the experiments depend on (scale, XOR-dominance,
//!   reconvergent fan-out, 41 in / 32 out). See `docs/architecture.md`.
//! * [`c1355`] — the same function with every XOR expanded into four NAND2
//!   gates, exactly the structural relation between the real c499/c1355
//!   pair.
//!
//! After [`crate::to_nor_only`] mapping, the surrogates land near the
//! paper's reported NOR-gate counts (860 / 2068).

use crate::bench_format::parse_bench;
use crate::mapping::{to_nor_only, NorMappingOptions};
use crate::netlist::{Circuit, CircuitBuilder, GateKind, NetId};

/// The exact ISCAS-85 c17 netlist (6 NAND2 gates, 5 inputs, 2 outputs).
const C17_BENCH: &str = "\
# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// Builds ISCAS-85 c17.
///
/// # Example
///
/// ```
/// let c17 = sigcircuit::c17();
/// assert_eq!(c17.gates().len(), 6);
/// assert_eq!(c17.inputs().len(), 5);
/// ```
#[must_use]
pub fn c17() -> Circuit {
    parse_bench(C17_BENCH).expect("embedded netlist is valid")
}

/// Which XOR realization the error-correction surrogate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XorStyle {
    /// XOR2 primitives (c499).
    Primitive,
    /// Four NAND2 per XOR (c1355).
    NandExpanded,
}

/// Emits an XOR of two nets in the requested style.
fn emit_xor(b: &mut CircuitBuilder, style: XorStyle, x: NetId, y: NetId, name: &str) -> NetId {
    match style {
        XorStyle::Primitive => b.add_gate(GateKind::Xor, &[x, y], name),
        XorStyle::NandExpanded => {
            let n1 = b.add_gate(GateKind::Nand, &[x, y], &format!("{name}_n1"));
            let n2 = b.add_gate(GateKind::Nand, &[x, n1], &format!("{name}_n2"));
            let n3 = b.add_gate(GateKind::Nand, &[y, n1], &format!("{name}_n3"));
            b.add_gate(GateKind::Nand, &[n2, n3], name)
        }
    }
}

/// XOR tree over a slice of nets.
fn xor_tree(b: &mut CircuitBuilder, style: XorStyle, nets: &[NetId], tag: &str) -> NetId {
    assert!(!nets.is_empty());
    let mut layer = nets.to_vec();
    let mut stage = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(emit_xor(
                    b,
                    style,
                    pair[0],
                    pair[1],
                    &format!("{tag}_s{stage}_{i}"),
                ));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        stage += 1;
    }
    layer[0]
}

/// Shared builder for the c499/c1355 surrogates.
fn error_corrector(style: XorStyle) -> Circuit {
    let mut b = CircuitBuilder::new();
    // 41 primary inputs: 32 data, 8 parity, 1 enable.
    let data: Vec<NetId> = (0..32).map(|i| b.add_input(&format!("d{i}"))).collect();
    let parity: Vec<NetId> = (0..8).map(|j| b.add_input(&format!("p{j}"))).collect();
    let enable = b.add_input("en");

    // Syndrome: s_j = p_j XOR (XOR of 8 data bits). The participation
    // pattern gives each data bit membership in exactly two checks, which
    // creates the reconvergent fan-out characteristic of the original.
    let mut syndrome = Vec::with_capacity(8);
    for j in 0..8 {
        let members: Vec<NetId> = (0..8).map(|k| data[(j * 4 + k * 5) % 32]).collect();
        let tree = xor_tree(&mut b, style, &members, &format!("syn{j}"));
        let s = emit_xor(&mut b, style, tree, parity[j], &format!("s{j}"));
        syndrome.push(s);
    }

    // Two 4-to-16 decoders over the syndrome halves.
    let dec = |b: &mut CircuitBuilder, s: &[NetId], tag: &str| -> Vec<NetId> {
        let inv: Vec<NetId> = s
            .iter()
            .enumerate()
            .map(|(i, &n)| b.add_gate(GateKind::Inv, &[n], &format!("{tag}_inv{i}")))
            .collect();
        (0..16)
            .map(|code: usize| {
                let lits: Vec<NetId> = (0..4)
                    .map(|bit| {
                        if code >> bit & 1 == 1 {
                            s[bit]
                        } else {
                            inv[bit]
                        }
                    })
                    .collect();
                let a01 = b.add_gate(
                    GateKind::And,
                    &[lits[0], lits[1]],
                    &format!("{tag}_a{code}_0"),
                );
                let a23 = b.add_gate(
                    GateKind::And,
                    &[lits[2], lits[3]],
                    &format!("{tag}_a{code}_1"),
                );
                b.add_gate(GateKind::And, &[a01, a23], &format!("{tag}_dec{code}"))
            })
            .collect()
    };
    let dec_lo = dec(&mut b, &syndrome[..4], "lo");
    let dec_hi = dec(&mut b, &syndrome[4..], "hi");

    // Correction: e_i = lo[i % 16] AND hi[h(i)] AND en; out_i = d_i XOR e_i.
    for i in 0..32 {
        let lo = dec_lo[i % 16];
        let hi = dec_hi[(i / 16) * 8 + i % 8];
        let pair = b.add_gate(GateKind::And, &[lo, hi], &format!("e{i}_pair"));
        let e = b.add_gate(GateKind::And, &[pair, enable], &format!("e{i}"));
        let out = emit_xor(&mut b, style, data[i], e, &format!("od{i}"));
        b.mark_output(out);
    }
    b.build().expect("generator produces valid circuits")
}

/// Builds the c499 surrogate (XOR-primitive error corrector, 41 inputs,
/// 32 outputs).
#[must_use]
pub fn c499() -> Circuit {
    error_corrector(XorStyle::Primitive)
}

/// Builds the c1355 surrogate: same function as [`c499`] with XORs expanded
/// to 4-NAND blocks.
#[must_use]
pub fn c1355() -> Circuit {
    error_corrector(XorStyle::NandExpanded)
}

/// An ISCAS-85 benchmark instance from Table I, mapped for both simulated
/// cell sets and annotated.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name, e.g. `"c17"`.
    pub name: &'static str,
    /// The original (multi-kind) circuit.
    pub original: Circuit,
    /// The NOR-only mapped circuit (the paper's prototype form).
    pub nor_mapped: Circuit,
    /// The native-cell mapped circuit ([`crate::to_native_cells`]): NAND2,
    /// AND2, OR2, INV and NOR kept as first-class cells — typically a
    /// fraction of the NOR-mapped gate count on NAND-heavy netlists.
    pub native: Circuit,
}

impl Benchmark {
    /// Builds one of the Table I benchmarks by name (`"c17"`, `"c499"`,
    /// `"c1355"`).
    ///
    /// # Errors
    ///
    /// Returns the unknown name back as `Err`.
    pub fn by_name(name: &str) -> Result<Benchmark, String> {
        let (name, original) = match name {
            "c17" => ("c17", c17()),
            "c499" => ("c499", c499()),
            "c1355" => ("c1355", c1355()),
            other => return Err(other.to_string()),
        };
        // Mapping followed by standard fan-out limiting: the characterized
        // models cover FO1/FO2 only, and synthesized netlists keep
        // fan-outs low by buffering anyway.
        let nor_mapped =
            crate::limit_fanout(&to_nor_only(&original, NorMappingOptions::default()), 4);
        let native = crate::limit_fanout(&crate::to_native_cells(&original), 4);
        Ok(Benchmark {
            name,
            original,
            nor_mapped,
            native,
        })
    }

    /// The simulated form under a mapping policy.
    #[must_use]
    pub fn circuit_for(&self, policy: crate::MappingPolicy) -> &Circuit {
        match policy {
            crate::MappingPolicy::NorOnly => &self.nor_mapped,
            crate::MappingPolicy::Native => &self.native,
        }
    }

    /// Number of NOR gates in the mapped circuit (Table I's `#NOR-gates`).
    #[must_use]
    pub fn nor_gate_count(&self) -> usize {
        self.nor_mapped.gates().len()
    }

    /// Gate count of the simulated form under a policy (the quantity the
    /// native library shrinks).
    #[must_use]
    pub fn gate_count(&self, policy: crate::MappingPolicy) -> usize {
        self.circuit_for(policy).gates().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn c17_structure_and_function() {
        let c = c17();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.gates().len(), 6);
        // Reference function: out22 = NAND(NAND(1,3), NAND(2, NAND(3,6))).
        let eval = |v: [bool; 5]| c.eval(&v);
        let reference = |i1: bool, i2: bool, i3: bool, i6: bool, i7: bool| {
            let n10 = !(i1 & i3);
            let n11 = !(i3 & i6);
            let n16 = !(i2 & n11);
            let n19 = !(n11 & i7);
            (!(n10 & n16), !(n16 & n19))
        };
        for v in 0..32u8 {
            let bits = [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0, v & 16 != 0];
            let got = eval(bits);
            let (o22, o23) = reference(bits[0], bits[1], bits[2], bits[3], bits[4]);
            assert_eq!(got, vec![o22, o23], "input {bits:?}");
        }
    }

    #[test]
    fn c17_nor_mapping_matches_paper_count() {
        let bench = Benchmark::by_name("c17").unwrap();
        assert_eq!(bench.nor_gate_count(), 24, "Table I reports 24 NOR gates");
        assert!(bench.nor_mapped.is_nor_only());
    }

    #[test]
    fn c499_shape() {
        let c = c499();
        assert_eq!(c.inputs().len(), 41);
        assert_eq!(c.outputs().len(), 32);
        // XOR-dominated like the original.
        let h = c.gate_histogram();
        let xors = h.get(&GateKind::Xor).copied().unwrap_or(0);
        assert!(xors >= 90, "expected XOR-dominance, got {xors}");
    }

    #[test]
    fn c499_transparent_when_syndrome_zero() {
        // With parity chosen so every syndrome bit is 0, the decoders
        // cannot fire e_i for a "no error" word... but more robustly:
        // enable=0 forces e_i = 0, so outputs must equal the data inputs.
        let c = c499();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut v: Vec<bool> = (0..41).map(|_| rng.gen()).collect();
            v[40] = false; // enable off
            let out = c.eval(&v);
            assert_eq!(&out[..], &v[..32], "disabled corrector must pass data");
        }
    }

    #[test]
    fn benchmark_levels_flatten_to_topological_order() {
        // The levelized schedule of every Table I benchmark (both the
        // original netlist and its NOR mapping) must visit each gate once,
        // with all of its driven inputs produced at strictly earlier
        // levels — i.e. flattening the levels is a topological order.
        for name in ["c17", "c499", "c1355"] {
            let bench = Benchmark::by_name(name).unwrap();
            for circuit in [&bench.original, &bench.nor_mapped] {
                let mut seen: std::collections::HashSet<_> =
                    circuit.inputs().iter().copied().collect();
                let mut visited = 0usize;
                for level in circuit.levels() {
                    for &gi in level {
                        let g = &circuit.gates()[gi];
                        for i in &g.inputs {
                            assert!(seen.contains(i), "{name}: gate {gi} input not ready");
                        }
                        visited += 1;
                    }
                    // Outputs of a level only become visible to later levels.
                    for &gi in level {
                        seen.insert(circuit.gates()[gi].output);
                    }
                }
                assert_eq!(visited, circuit.gates().len(), "{name}: gate missed");
                assert_eq!(circuit.levels().len(), circuit.depth(), "{name}: depth");
            }
        }
    }

    #[test]
    fn c1355_same_function_as_c499() {
        let a = c499();
        let b = c1355();
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v: Vec<bool> = (0..41).map(|_| rng.gen()).collect();
            assert_eq!(a.eval(&v), b.eval(&v));
        }
    }

    #[test]
    fn c1355_is_larger() {
        assert!(c1355().gates().len() > 2 * c499().gates().len());
    }

    #[test]
    fn nor_counts_near_paper() {
        let c499 = Benchmark::by_name("c499").unwrap();
        let c1355 = Benchmark::by_name("c1355").unwrap();
        // Paper: 860 and 2068. The surrogates (incl. fan-out buffering,
        // which the paper's flow performs implicitly via its cell library)
        // must land in the same regime.
        let n499 = c499.nor_gate_count();
        let n1355 = c1355.nor_gate_count();
        assert!((600..=1300).contains(&n499), "c499 NOR count {n499}");
        assert!((1600..=2900).contains(&n1355), "c1355 NOR count {n1355}");
    }

    #[test]
    fn mapped_benchmarks_stay_equivalent() {
        let mut rng = StdRng::seed_from_u64(3);
        for name in ["c17", "c499"] {
            let b = Benchmark::by_name(name).unwrap();
            let n = b.original.inputs().len();
            for _ in 0..10 {
                let v: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(b.original.eval(&v), b.nor_mapped.eval(&v), "{name}");
            }
        }
    }

    #[test]
    fn unknown_benchmark_rejected() {
        assert!(Benchmark::by_name("c9999").is_err());
    }
}
